"""Legacy setup shim.

The reproduction environment is offline (no ``wheel`` wheel available), so
``pip install -e .`` must use the legacy ``setup.py develop`` code path; all
real metadata lives in pyproject.toml and is read by setuptools>=61.
"""

from setuptools import setup

setup()
