#!/usr/bin/env python
"""Round-trip demo: counting house → archive → analysis, end to end.

The paper's deployment loop is bicephalous: an always-on encoder compresses
the wedge stream online (§3.2–3.3) and offline analysis decompresses the
archived payloads.  This demo runs the whole loop on synthetic wedges:

1. the **compression service** micro-batches a stream through the compiled
   fast encoder and archives the payloads as one ``io.codes`` npz;
2. the archive round-trips through disk (with its precision mode and code
   dtype recorded and validated);
3. the **decompression service** re-chunks the archive and decodes it
   through the compiled fast decoder — bit-identical to the module-graph
   ``decompress``, at a multiple of its throughput.

Both services are instantiations of the same model-pool engine
(``repro.serve.ModelPoolService``); ``--backend process`` hosts the workers
in a GIL-sidestepping process pool.

Usage::

    python examples/roundtrip_demo.py [--wedges 48] [--batch 8] [--workers 0]
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import BCAECompressor, build_model
from repro.io import concat_compressed, load_compressed, save_compressed
from repro.serve import DecompressionService, ServiceConfig, StreamingCompressionService
from repro.tpc import TINY_GEOMETRY, generate_wedge_stream


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wedges", type=int, default=48)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--backend", choices=("thread", "process"), default="thread")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    wedges = generate_wedge_stream(args.wedges, geometry=TINY_GEOMETRY, seed=args.seed)
    model = build_model("bcae_2d", wedge_spatial=TINY_GEOMETRY.wedge_shape,
                        seed=args.seed)
    print(f"stream: {wedges.shape[0]} wedges {wedges.shape[1:]}, "
          f"occupancy {(wedges > 0).mean():.3f}")

    # 1. Counting house: compress the stream and archive the payloads.
    compression = StreamingCompressionService(
        model, ServiceConfig(max_batch=args.batch, workers=args.workers,
                             backend=args.backend)
    )
    compression.run(wedges[: args.batch])  # warm the workspaces
    payloads, cstats = compression.run(wedges)
    print(f"\n1. compression service : {cstats.wedges_per_second:8.1f} w/s "
          f"(ratio {np.prod(wedges.shape[1:]) / np.prod(payloads[0].code_shape):.3f})")

    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "codes.npz"
        save_compressed(concat_compressed(payloads), archive, model_name="bcae_2d")
        raw = wedges.nbytes
        print(f"2. archive             : {archive.stat().st_size} bytes on disk "
              f"for {raw} raw bytes")
        stored, _name = load_compressed(archive)

        # 3. Analysis: serve the archive through the fast decode path.
        decompression = DecompressionService(
            model, ServiceConfig(max_batch=1, workers=args.workers,
                                 backend=args.backend)
        )
        decompression.run(next(iter(payloads)))  # warm + compile
        recons, dstats = decompression.run(stored)
        recon = np.concatenate(recons)
        print(f"3. decompression service: {dstats.wedges_per_second:8.1f} w/s")

        # Parity with the naive module-graph analysis loop.
        compressor = BCAECompressor(model)
        t0 = time.perf_counter()
        reference = compressor.decompress(stored)
        naive_s = time.perf_counter() - t0
        same = np.array_equal(reference, recon)
        print(f"   module-graph loop    : {stored.n_wedges / naive_s:8.1f} w/s  "
              f"recon {'identical' if same else 'MISMATCH'}")

    nonzero = recon > 0
    print(f"\nreconstruction: {nonzero.mean():.3f} occupancy, "
          f"log-ADC range [{recon[nonzero].min() if nonzero.any() else 0:.2f}, "
          f"{recon.max():.2f}]")
    print("(the encoder-side speedup story lives in examples/serving_demo.py)")
    # The CI smoke run gates on this: a parity break must fail the step.
    return 0 if same else 1


if __name__ == "__main__":
    sys.exit(main())
