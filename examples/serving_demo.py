#!/usr/bin/env python
"""Serving demo: the counting-house compression loop, end to end.

Builds a BCAE-2D encoder, generates a synthetic wedge stream on the tiny
geometry, and serves it three ways:

1. the naive loop — one ``BCAECompressor.compress`` call per wedge;
2. the micro-batching service, inline (no threads — best on one core);
3. the micro-batching service with a worker pool and a DAQ-timed arrival
   process under a latency budget (the real deployment shape).

Payload bytes are identical in all three — batching is free correctness-
wise (`conv` results are batch-invariant by construction) and pays only in
latency, which the ``max_delay_s`` budget caps.

Usage::

    python examples/serving_demo.py [--wedges 64] [--batch 16] [--workers 2]
"""

import argparse
import time

import numpy as np

from repro.core import BCAECompressor, build_model
from repro.daq import DAQConfig, StreamingCompressionSim
from repro.serve import ServiceConfig, StreamingCompressionService, replay_stream
from repro.tpc import TINY_GEOMETRY, generate_wedge_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wedges", type=int, default=64)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    wedges = generate_wedge_stream(args.wedges, geometry=TINY_GEOMETRY, seed=args.seed)
    model = build_model("bcae_2d", wedge_spatial=TINY_GEOMETRY.wedge_shape,
                        seed=args.seed)
    print(f"stream: {wedges.shape[0]} wedges {wedges.shape[1:]}, "
          f"occupancy {(wedges > 0).mean():.3f}")

    # 1. The naive loop.
    compressor = BCAECompressor(model)
    compressor.compress(wedges[0])  # warm
    t0 = time.perf_counter()
    serial = [compressor.compress(w) for w in wedges]
    serial_s = time.perf_counter() - t0
    serial_bytes = b"".join(c.payload for c in serial)
    print(f"\n1. serial single-wedge compress : {len(wedges) / serial_s:8.1f} w/s")

    # 2. Micro-batched, inline.
    service = StreamingCompressionService(
        model, ServiceConfig(max_batch=args.batch, workers=0)
    )
    service.run(wedges[: args.batch])  # warm the workspaces
    payloads, stats = service.run(wedges)
    same = b"".join(bytes(p.payload) for p in payloads) == serial_bytes
    print(f"2. service inline, batch {args.batch:<3d}    : "
          f"{stats.wedges_per_second:8.1f} w/s "
          f"({stats.wedges_per_second * serial_s / len(wedges):.2f}x)  "
          f"payloads {'identical' if same else 'MISMATCH'}")

    # 3. Worker pool on a DAQ-timed stream with a latency budget.
    sim = StreamingCompressionSim(
        DAQConfig(frame_rate_hz=2000.0, wedges_per_frame=4), seed=args.seed
    )
    service = StreamingCompressionService(
        model,
        ServiceConfig(max_batch=args.batch, max_delay_s=2e-3, workers=args.workers),
    )
    payloads, stats = service.run(replay_stream(sim.wedge_stream(wedges)))
    same = b"".join(bytes(p.payload) for p in payloads) == serial_bytes
    print(f"3. service pool({args.workers}), 2 ms budget: "
          f"{stats.wedges_per_second:8.1f} w/s  payloads "
          f"{'identical' if same else 'MISMATCH'}")
    print(f"   {stats.row()}")
    print(f"   batch sizes under budget: {[r.n_wedges for r in stats.records]}")
    print("\n(the batch knee and fp16 gain at GPU scale are modeled in "
          "examples/throughput_study.py — Figure 6)")


if __name__ == "__main__":
    main()
