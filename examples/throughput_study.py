#!/usr/bin/env python
"""Throughput study: Figure 6 with the A6000 roofline model + CPU timing.

Prints, for each encoder (BCAE-2D / BCAE++ / BCAE-HT at paper-exact
architecture and wedge size):

* exact per-layer FLOP/byte/Tensor-Core accounting,
* modeled A6000 throughput curves over batch size in both precisions,
* the fp16 speedup (paper: 76–79% for 2D/++, none for HT),
* measured CPU throughput of this NumPy implementation.

Usage::

    python examples/throughput_study.py [--measure] [--batches 1,16,64]
"""

import argparse

from repro.core import build_model
from repro.perf import (
    estimate_throughput,
    measure_encoder_throughput,
    speedup_half,
    throughput_curve,
    trace_encoder,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measure", action="store_true",
                        help="also measure this CPU implementation (slow at paper size)")
    parser.add_argument("--batches", default="1,4,16,64,96")
    args = parser.parse_args()
    batches = [int(b) for b in args.batches.split(",")]

    paper = {"bcae_2d": 6900, "bcae_pp": 2600, "bcae_ht": 4600}
    for name in ("bcae_2d", "bcae_pp", "bcae_ht"):
        model = build_model(name, wedge_spatial=(16, 192, 249), seed=0)
        trace = trace_encoder(model, (16, 192, 256), name=name)
        print(f"\n== {name} ==")
        print(f"   {trace.summary()}")
        print(f"   encoder parameters: {model.encoder_parameters():,}")

        half = throughput_curve(trace, batches, half=True)
        full = throughput_curve(trace, batches, half=False)
        print(f"   {'batch':>6s} {'half [w/s]':>11s} {'full [w/s]':>11s}")
        for b in batches:
            print(f"   {b:6d} {half[b]:11.0f} {full[b]:11.0f}")
        print(f"   fp16 speedup @64: {speedup_half(trace, 64):.2f}x "
              f"(paper plateau: ~{paper[name]}/s, speedup ~1.76-1.79x for 2D/++, ~1x HT)")

        if args.measure:
            r = measure_encoder_throughput(model, (16, 192, 256), 1, half=True, repeats=1)
            print(f"   measured CPU (batch 1, fp16 mode): {r.wedges_per_second:.2f} w/s")


if __name__ == "__main__":
    main()
