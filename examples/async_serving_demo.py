#!/usr/bin/env python
"""Async serving demo: the ingestion gateway, end to end.

Where ``serving_demo.py`` replays a stream through the *sync* service,
this demo runs the asyncio gateway the way a counting-house deployment
would sit behind a live feed:

1. a producer task pushes wedges into an :class:`AsyncQueueSource` on a
   (sped-up) DAQ arrival schedule — real wall-clock pacing, not labels;
2. the :class:`AsyncMicroBatcher` closes batches on ``max_batch`` or on a
   **monotonic-clock deadline** (``--budget-ms`` after a batch's first
   wedge arrives, whether or not the link keeps producing);
3. the service compresses batches through its worker backend while the
   event loop keeps ingesting — ordered, bounded in-flight emission;
4. payload bytes are verified identical to the serial path.

With ``--backend process`` the payloads cross the worker boundary through
the shared-memory slab ring (see ``ServiceConfig.transport``).

Usage::

    python examples/async_serving_demo.py [--wedges 48] [--batch 8]
        [--budget-ms 5] [--workers 0] [--backend thread|process]
"""

import argparse
import asyncio
import collections
import time

from repro.core import BCAECompressor, build_model
from repro.daq import DAQConfig, StreamingCompressionSim
from repro.serve import AsyncQueueSource, ServiceConfig, StreamingCompressionService
from repro.tpc import TINY_GEOMETRY, generate_wedge_stream


async def serve(args, model, wedges) -> None:
    service = StreamingCompressionService(model, ServiceConfig(
        max_batch=args.batch,
        max_delay_s=args.budget_ms / 1e3,
        workers=args.workers,
        backend=args.backend,
    ))
    if args.backend != "process":
        # Warm the pooled compressors (process workers die with their
        # pool, so there is nothing durable to warm there).
        service.run(wedges[: args.batch])

    sim = StreamingCompressionSim(
        DAQConfig(frame_rate_hz=2000.0, wedges_per_frame=4), seed=args.seed
    )
    source = AsyncQueueSource()

    async def produce() -> None:
        """Push wedges on the simulated arrival schedule (4x speed)."""

        start = time.monotonic()
        t0 = None
        for arrival, wedge in sim.wedge_stream(wedges):
            t0 = arrival if t0 is None else t0
            delay = (start + (arrival - t0) / 4.0) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            await source.put(wedge)
        source.close()

    producer = asyncio.ensure_future(produce())
    t0 = time.perf_counter()
    payloads, stats = await service.run_async(source)
    elapsed = time.perf_counter() - t0
    await producer

    serial = BCAECompressor(model)
    same = b"".join(bytes(p.payload) for p in payloads) == b"".join(
        serial.compress(w).payload for w in wedges
    )
    closed_by = collections.Counter(r.closed_by for r in stats.records)

    print(f"async gateway: {stats.n_wedges} wedges in {stats.n_batches} batches, "
          f"{stats.wedges_per_second:8.1f} w/s ({elapsed * 1e3:.0f} ms wall)")
    print(f"  payloads vs serial path: {'identical' if same else 'MISMATCH'}")
    print(f"  batch close reasons: {dict(closed_by)}")
    print(f"  batch latency (wait+compute): {stats.batch_latency().row()}")
    if service.last_shm:
        print(f"  process hand-off: {service.last_shm}")
    if not same:
        raise SystemExit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wedges", type=int, default=48)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--budget-ms", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--backend", choices=("thread", "process"), default="thread")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    wedges = generate_wedge_stream(args.wedges, geometry=TINY_GEOMETRY, seed=args.seed)
    model = build_model("bcae_2d", wedge_spatial=TINY_GEOMETRY.wedge_shape,
                        seed=args.seed)
    print(f"stream: {wedges.shape[0]} wedges {wedges.shape[1:]}, "
          f"budget {args.budget_ms:.1f} ms (wall clock), "
          f"workers {args.workers} [{args.backend}]")
    asyncio.run(serve(args, model, wedges))


if __name__ == "__main__":
    main()
