#!/usr/bin/env python
"""Tour of the paper's §4 future-work directions, implemented.

1. **Pruning** the BCAE-2D encoder and projecting the ideal sparse-kernel
   speedup with the A6000 roofline model.
2. **INT8 quantization** (post-training, W8A8 emulated) with the accuracy
   delta measured on synthetic wedges.
3. **Streaming-DAQ sizing**: how many GPUs each variant needs to sustain
   sPHENIX's 77 kHz × 24-wedge stream — the system-level number that
   motivates all of the paper's throughput work.

Usage::

    python examples/extensions_tour.py
"""

import dataclasses

import numpy as np

from repro import nn
from repro.core import build_model
from repro.daq import DAQConfig, StreamingCompressionSim, gpus_required
from repro.nn import Tensor
from repro.nn.pruning import prune_module, sparse_flops_factor, sparsity_report
from repro.nn.quantization import calibrate_int8, int8_forward, quantize_weights_int8
from repro.perf import RTX_A6000, estimate_throughput, trace_encoder
from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset


def pruning_demo() -> None:
    print("== 1. magnitude pruning (paper §4) ==")
    model = build_model("bcae_2d", wedge_spatial=(16, 192, 249), seed=0)
    trace = trace_encoder(model, (16, 192, 256), name="dense")
    dense_tput = estimate_throughput(trace, 64, half=True)
    print(f"   dense encoder: {trace.total_flops / 1e9:.2f} GFLOP, "
          f"modeled {dense_tput:.0f} wedges/s")
    for amount in (0.5, 0.8):
        nn.init.seed(0)
        model = build_model("bcae_2d", wedge_spatial=(16, 192, 249), seed=0)
        prune_module(model.encoder, amount)
        factor = sparse_flops_factor(model.encoder)
        sparse_trace = dataclasses.replace(
            trace,
            layers=[dataclasses.replace(l, flops=l.flops * factor) for l in trace.layers],
        )
        tput = estimate_throughput(sparse_trace, 64, half=True)
        print(f"   {amount:.0%} pruned: FLOPs x{factor:.2f} -> "
              f"{tput:.0f} wedges/s with an ideal sparse kernel")


def quantization_demo() -> None:
    print("\n== 2. INT8 post-training quantization (paper §4) ==")
    train, _ = generate_wedge_dataset(1, geometry=TINY_GEOMETRY, seed=9,
                                      test_fraction=0.0)
    model = build_model("bcae_2d", wedge_spatial=train.geometry.wedge_shape,
                        m=2, n=2, d=2, seed=0)
    x, _ = train.batch(np.arange(6))
    with nn.no_grad():
        ref = model.encode(Tensor(x)).data.copy()
    result = calibrate_int8(model.encoder, x)
    print(f"   calibrated {result.n_layers} conv layers on {x.shape[0]} wedges")
    quantize_weights_int8(model.encoder, result)
    out = int8_forward(model.encoder, x, result)
    rel = np.abs(out - ref).max() / np.abs(ref).max()
    print(f"   W8A8 emulated code error vs fp32: {rel:.4f} (relative, max)")
    print("   A6000 INT8 Tensor-Core peak is 2x fp16 -> up to "
          "2x modeled encoder throughput")


def daq_demo() -> None:
    print("\n== 3. streaming-DAQ sizing (paper §1 motivation) ==")
    print("   offered load: 77 kHz frames x 24 wedges = 1.848 M wedges/s")
    for name, rate in (("bcae_2d", 6900.0), ("bcae_ht", 4600.0), ("bcae_pp", 2600.0)):
        n = gpus_required(rate, headroom=1.2)
        cfg = DAQConfig(frame_rate_hz=77.0, server_rate_wps=rate, n_servers=1)
        stats = StreamingCompressionSim(cfg, seed=0).run(2000)
        print(f"   {name:9s} @{rate:6.0f} w/s/GPU -> ~{n:4d} GPUs "
              f"(1/1000-scale sim: util={stats.utilization:.3f}, "
              f"p99 latency={stats.p99_latency * 1e6:.0f} µs)")


if __name__ == "__main__":
    pruning_demo()
    quantization_demo()
    daq_demo()
