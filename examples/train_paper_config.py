#!/usr/bin/env python
"""The paper's exact training recipe (§2.5), at selectable scale.

At ``--scale paper`` this is the full configuration of the paper: wedges
(16, 192, 249), batch size 4, AdamW(0.9, 0.999, wd=0.01), BCAE-2D for 500
epochs (lr 1e-3 constant 50 epochs then ×0.95 every 10) or 3D variants for
1000 epochs (constant 100, ×0.95 every 20), focal γ=2, threshold 0.5,
dynamic loss balancing from c₀=2000.

On a CPU that takes days — the default scale therefore shrinks the wedge
grid and epoch count while keeping every procedural element identical.

Usage::

    python examples/train_paper_config.py --model bcae_2d --scale tiny --epochs 10
    python examples/train_paper_config.py --model bcae_pp --scale paper --events 1310
"""

import argparse

from repro import tpc
from repro.core import build_model
from repro.nn import save_checkpoint
from repro.tpc import generate_wedge_dataset
from repro.train import TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="bcae_2d",
                        choices=("bcae", "bcae_pp", "bcae_ht", "bcae_2d"))
    parser.add_argument("--scale", choices=("paper", "small", "tiny"), default="tiny")
    parser.add_argument("--events", type=int, default=2,
                        help="number of simulated events (paper: 1310)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the paper epoch count (paper: 500 / 1000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint", default="bcae_checkpoint.npz")
    args = parser.parse_args()

    geometry = {
        "paper": tpc.PAPER_GEOMETRY,
        "small": tpc.SMALL_GEOMETRY,
        "tiny": tpc.TINY_GEOMETRY,
    }[args.scale]

    print(f"== generating {args.events} events on the {args.scale} geometry ==")
    train, test = generate_wedge_dataset(args.events, geometry=geometry, seed=args.seed)
    print(f"   train wedges: {train.wedges.shape}  test wedges: {test.wedges.shape}")
    print(f"   occupancy: {train.occupancy():.4f}")

    # Paper §2.5 configuration per family.
    if args.model == "bcae_2d":
        config = TrainConfig.paper_2d(epochs=args.epochs or 500)
    else:
        config = TrainConfig.paper_3d(epochs=args.epochs or 1000)
    config.seed = args.seed

    model = build_model(args.model, wedge_spatial=geometry.wedge_shape, seed=args.seed)
    print(f"\n== training {args.model}: {config.epochs} epochs, batch {config.batch_size}, "
          f"lr {config.base_lr} (constant {config.warmup_epochs}, "
          f"x{config.decay_factor} every {config.decay_every}) ==")
    print(f"   encoder parameters: {model.encoder_parameters():,}")

    trainer = Trainer(model, config)
    trainer.fit(train, verbose=True)

    for half in (False, True):
        metrics = trainer.evaluate(test, half=half)
        print(f"   [{'half' if half else 'full'}] {metrics}")

    save_checkpoint(model, trainer.optimizer, config.epochs, args.checkpoint,
                    extra={"model": args.model, "scale": args.scale})
    print(f"\ncheckpoint -> {args.checkpoint}")


if __name__ == "__main__":
    main()
