#!/usr/bin/env python
"""Sharded gateway demo: many producers, one front door.

Where ``async_serving_demo.py`` feeds one service from one queue, this
demo runs the PR-9 scale-out front door the way a counting house with
several detector links would:

1. a :class:`ServingGateway` listens on a loopback socket and shards
   sessions across ``--shards`` supervised service instances through the
   :class:`StreamRouter` (sticky placement, per-shard backpressure,
   health-aware spill);
2. ``--producers`` concurrent clients each dial in, stream their wedges
   over the length-prefixed wire format, half-close, and read back one
   code frame per wedge;
3. every response frame is verified byte-identical to the inline
   single-call path, and the per-shard supervision stats are printed.

Usage::

    python examples/gateway_demo.py [--wedges 24] [--producers 4]
        [--shards 2] [--batch 8] [--budget-ms 5]
"""

import argparse
import asyncio
import time

import numpy as np

from repro.core import BCAECompressor, build_model
from repro.serve import (
    GatewayConfig,
    ServiceConfig,
    ServingGateway,
    StreamingCompressionService,
    read_wedge_frame,
    write_wedge_frame,
)
from repro.tpc import TINY_GEOMETRY, generate_wedge_stream


async def produce(port: int, wedges) -> list:
    """One client session: stream wedges, half-close, read code frames."""

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for wedge in wedges:
        write_wedge_frame(writer, wedge)
    await writer.drain()
    writer.write_eof()
    frames = []
    while True:
        frame = await read_wedge_frame(reader)
        if frame is None:
            break
        frames.append(frame)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return frames


async def serve(args, model, wedges) -> None:
    services = [
        StreamingCompressionService(model, ServiceConfig(
            max_batch=args.batch, max_delay_s=args.budget_ms / 1e3,
        ))
        for _ in range(args.shards)
    ]
    gateway = ServingGateway(services, GatewayConfig())
    await gateway.start()
    print(f"gateway: 127.0.0.1:{gateway.port}, {args.shards} shard(s), "
          f"{args.producers} producer(s)")

    t0 = time.perf_counter()
    sessions = await asyncio.gather(
        *[produce(gateway.port, wedges) for _ in range(args.producers)]
    )
    elapsed = time.perf_counter() - t0
    stats = gateway.stats()
    health = gateway.health()
    await gateway.drain()
    await gateway.aclose()

    serial = BCAECompressor(model)
    reference = [serial.compress(w[None]).codes()[0] for w in wedges]
    same = all(
        len(frames) == len(wedges)
        and all(np.array_equal(got, want)
                for got, want in zip(frames, reference))
        for frames in sessions
    )
    total = sum(len(frames) for frames in sessions)
    print(f"  {total} wedges answered in {elapsed:.2f} s "
          f"({total / elapsed:7.1f} w/s aggregate)")
    print(f"  frames vs inline path: {'identical' if same else 'MISMATCH'}")
    print(f"  gateway: {stats.row()}")
    for shard_health, shard_stats in zip(health.shards, stats.per_shard):
        print(f"    shard: state={shard_health.state} "
              f"level={shard_health.level or 'inline'} "
              f"units={shard_stats.n_batches} wedges={shard_stats.n_wedges}")
    if not same:
        raise SystemExit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wedges", type=int, default=24,
                        help="wedges per producer")
    parser.add_argument("--producers", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--budget-ms", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    wedges = generate_wedge_stream(args.wedges, geometry=TINY_GEOMETRY,
                                   seed=args.seed)
    model = build_model("bcae_2d", wedge_spatial=TINY_GEOMETRY.wedge_shape,
                        seed=args.seed)
    print(f"stream: {wedges.shape[0]} wedges {wedges.shape[1:]} per "
          f"producer, budget {args.budget_ms:.1f} ms (wall clock)")
    asyncio.run(serve(args, model, wedges))


if __name__ == "__main__":
    main()
