#!/usr/bin/env python
"""BCAE vs SZ/ZFP/MGARD-like codecs on sparse TPC wedges (paper §1 claim).

Trains a small BCAE-2D, then sweeps each learning-free codec family across
its quality knob on the same wedges, printing the rate–distortion frontier.
The paper's point reproduces at any scale: error-bounded predictive codecs
keep accuracy but stall at single-digit ratios on ~10% occupancy data;
fixed-rate block codecs reach high ratios only by destroying the signal.

Usage::

    python examples/compare_baselines.py [--epochs 8]
"""

import argparse

from repro.baselines import DecimationCodec, MGARDLikeCodec, SZLikeCodec, ZFPLikeCodec, evaluate_codec
from repro.core import BCAECompressor, build_model
from repro.metrics import mae
from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset, log_transform
from repro.train import TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    train, test = generate_wedge_dataset(2, geometry=TINY_GEOMETRY, seed=5)
    wedges = log_transform(test.wedges[:4])
    print(f"== {wedges.shape[0]} test wedges {wedges.shape[1:]}, "
          f"occupancy {(wedges > 0).mean():.4f} ==\n")

    print("-- learning-free codecs (vectorized NumPy implementations) --")
    print(f"{'codec':24s} {'ratio':>8s} {'MAE':>8s} {'PSNR':>8s} {'max err':>9s} {'comp s':>7s}")
    for codec in (
        SZLikeCodec(0.25), SZLikeCodec(1.0), SZLikeCodec(2.0),
        ZFPLikeCodec(1), ZFPLikeCodec(2), ZFPLikeCodec(4),
        MGARDLikeCodec(0.25), MGARDLikeCodec(1.0),
        DecimationCodec((1, 2, 2)), DecimationCodec((2, 2, 2)),
    ):
        r = evaluate_codec(codec, wedges)
        print(f"{r.name:24s} {r.ratio:8.2f} {r.mae:8.4f} {r.psnr:8.2f} "
              f"{r.max_error:9.3f} {r.compress_seconds:7.3f}")

    print(f"\n-- BCAE-2D, trained {args.epochs} epochs --")
    model = build_model(
        "bcae_2d", wedge_spatial=train.geometry.wedge_shape, m=2, n=4, d=2, seed=0
    )
    trainer = Trainer(
        model, TrainConfig(epochs=args.epochs, batch_size=4, warmup_epochs=args.epochs)
    )
    trainer.fit(train)
    comp = BCAECompressor(model, half=True)
    recon, compressed = comp.roundtrip(test.wedges[:4])
    ratio = 2.0 * wedges.size / compressed.nbytes
    print(f"{'bcae_2d (trained)':24s} {ratio:8.2f} {mae(recon, wedges):8.4f}")
    print("\npaper reference (full grid, full training): ratio 31.125 at MAE 0.112-0.152")


if __name__ == "__main__":
    main()
