#!/usr/bin/env python
"""Quickstart: generate TPC data, train a BCAE-2D, compress a wedge.

Runs in ~1 minute on a laptop CPU (tiny synthetic geometry).  The same API
scales to the paper's (16, 192, 249) wedges — swap ``TINY_GEOMETRY`` for
``PAPER_GEOMETRY`` and raise the epoch budget (see
``examples/train_paper_config.py``).

Usage::

    python examples/quickstart.py [--epochs 6]
"""

import argparse

import numpy as np

from repro.core import BCAECompressor, build_model
from repro.tpc import TINY_GEOMETRY, generate_wedge_dataset
from repro.train import TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 1. Synthetic sPHENIX-like TPC data (paper §2.1, scaled down).
    # ------------------------------------------------------------------
    print("== generating synthetic TPC wedges (tiny geometry) ==")
    train, test = generate_wedge_dataset(2, geometry=TINY_GEOMETRY, seed=args.seed)
    print(f"   train: {train.wedges.shape}, test: {test.wedges.shape}")
    print(f"   occupancy: {train.occupancy():.4f}  (paper: ~0.108)")

    # ------------------------------------------------------------------
    # 2. A BCAE-2D model (paper §2.4) and the paper's training loop (§2.5).
    # ------------------------------------------------------------------
    print("\n== training BCAE-2D(m=2, n=4, d=2) ==")
    model = build_model(
        "bcae_2d", wedge_spatial=train.geometry.wedge_shape,
        m=2, n=4, d=2, seed=args.seed,
    )
    print(f"   encoder parameters: {model.encoder_parameters():,}")
    trainer = Trainer(
        model,
        TrainConfig(epochs=args.epochs, batch_size=4, warmup_epochs=args.epochs),
    )
    trainer.fit(train, verbose=True)

    # ------------------------------------------------------------------
    # 3. Evaluate with the paper's Table-1 metrics (§3.3).
    # ------------------------------------------------------------------
    print("\n== held-out test metrics (half precision, padding clipped) ==")
    metrics = trainer.evaluate(test, half=True)
    print(f"   {metrics}")

    # ------------------------------------------------------------------
    # 4. Compress and decompress raw ADC wedges (§3.1).
    # ------------------------------------------------------------------
    print("\n== compressing two raw wedges ==")
    compressor = BCAECompressor(model, half=True)
    raw = test.wedges[:2]
    reconstruction, compressed = compressor.roundtrip(raw)
    ratio = compressor.compression_ratio(test.geometry.wedge_shape)
    print(f"   payload: {compressed.nbytes} bytes for {raw.nbytes} raw bytes")
    print(f"   fp16-vs-fp16 compression ratio: {ratio:.3f}")
    print(f"   reconstruction shape: {reconstruction.shape} (clipped to raw horizontal)")
    print("\ndone — see examples/train_paper_config.py for the paper-scale recipe")


if __name__ == "__main__":
    main()
