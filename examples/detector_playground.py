#!/usr/bin/env python
"""Explore the synthetic TPC: events, wedges, spectra (paper §2.1, Figs 2–3).

Generates one full outer-layer-group event — the paper-exact
(16, 2304, 498) grid by default — prints its statistics, renders an ASCII
view of a wedge layer (the curved track stubs of Figure 2), and prints the
Figure-3 log-ADC histogram.

Usage::

    python examples/detector_playground.py [--scale paper|small|tiny] [--seed 3]
"""

import argparse

import numpy as np

from repro import tpc
from repro.tpc import HijingLikeGenerator, log_adc_histogram, log_transform
from repro.viz import render_histogram, render_wedge_layer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("paper", "small", "tiny"), default="paper")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    geometry = {
        "paper": tpc.PAPER_GEOMETRY,
        "small": tpc.SMALL_GEOMETRY,
        "tiny": tpc.TINY_GEOMETRY,
    }[args.scale]
    if args.scale == "paper":
        generator = HijingLikeGenerator()
    else:
        generator = HijingLikeGenerator.calibrated(geometry, seed=args.seed)

    print(f"== simulating one Au+Au readout frame ({args.scale} geometry) ==")
    tracks = generator.sample_tracks(np.random.default_rng(args.seed))
    print(f"   tracks (primary + pile-up): {len(tracks)}")
    event = generator.event(args.seed)
    print(f"   event array: {event.shape} ({event.nbytes / 1e6:.1f} MB as uint16)")
    print(f"   occupancy: {generator.occupancy(event):.4f}  (paper: ~0.108)")

    wedges = geometry.split_wedges(event)
    print(f"   wedges: {wedges.shape}  — the compressor's unit of work")

    print("\n== one wedge, innermost layer (Figure 2's curved track stubs) ==")
    print(render_wedge_layer(wedges[0], layer=0, width=72, height=24))

    print("\n== Figure 3: log2(ADC + 1) histogram (log-height bars) ==")
    summary = log_adc_histogram(event)
    print(f"   zero voxels: {summary.n_total - summary.n_nonzero:,} | "
          f"nonzero: {summary.n_nonzero:,}")
    print(render_histogram(summary.counts, summary.edges))
    print("   (paper: sharp edge at log2(65)=6.02, falling tail to 10)")


if __name__ == "__main__":
    main()
