"""``repro.metrics`` — the paper's reconstruction-accuracy metrics (§3.3)."""

from .reconstruction import (
    PEAK,
    TRUTH_THRESHOLD,
    ReconstructionMetrics,
    evaluate_reconstruction,
    mae,
    mse,
    occupancy,
    precision_recall,
    psnr,
)

__all__ = [
    "ReconstructionMetrics",
    "evaluate_reconstruction",
    "mae",
    "mse",
    "psnr",
    "precision_recall",
    "occupancy",
    "PEAK",
    "TRUTH_THRESHOLD",
]
