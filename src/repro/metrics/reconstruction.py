"""Reconstruction-accuracy metrics (paper §3.3).

The paper evaluates four metrics on the log-ADC scale, always with the
horizontal zero-padding clipped away:

* **MAE** — mean absolute error of the masked reconstruction over *all*
  voxels (Eq. 2 evaluated on the test set);
* **PSNR** — peak signal-to-noise ratio; we take the peak as the full
  log-ADC range (10 = log2(1024)); the paper does not state its peak
  convention, so EXPERIMENTS.md compares orderings rather than absolutes;
* **precision / recall** of the voxel classification, with ground-truth
  positives defined as ``value > 6`` (all nonzero log-ADC values exceed
  log2(65) ≈ 6.02 after zero-suppression) and predicted positives as
  ``seg probability > h``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["ReconstructionMetrics", "evaluate_reconstruction", "mae", "mse", "psnr", "precision_recall", "occupancy"]

#: Ground-truth positive threshold (paper §3.3 uses 1[x > 6]).
TRUTH_THRESHOLD = 6.0

#: Peak value for PSNR on the log-ADC scale.
PEAK = 10.0


def mae(reconstruction: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error over all voxels."""

    return float(np.mean(np.abs(reconstruction.astype(np.float64) - truth.astype(np.float64))))


def mse(reconstruction: np.ndarray, truth: np.ndarray) -> float:
    """Mean squared error over all voxels."""

    diff = reconstruction.astype(np.float64) - truth.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(reconstruction: np.ndarray, truth: np.ndarray, peak: float = PEAK) -> float:
    """Peak signal-to-noise ratio, ``10·log10(peak² / MSE)`` [dB]."""

    err = mse(reconstruction, truth)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / err)


def precision_recall(
    seg_probs: np.ndarray,
    truth: np.ndarray,
    threshold: float = 0.5,
    truth_threshold: float = TRUTH_THRESHOLD,
) -> tuple[float, float]:
    """Voxel-classification precision and recall (paper §3.3 definitions)."""

    predicted = seg_probs > threshold
    positive = truth > truth_threshold
    tp = float(np.count_nonzero(predicted & positive))
    pred_count = float(np.count_nonzero(predicted))
    pos_count = float(np.count_nonzero(positive))
    precision = tp / pred_count if pred_count else 0.0
    recall = tp / pos_count if pos_count else 0.0
    return precision, recall


def occupancy(values: np.ndarray) -> float:
    """Fraction of nonzero entries."""

    return float(np.count_nonzero(values)) / values.size


@dataclasses.dataclass
class ReconstructionMetrics:
    """Bundle of the four paper metrics (plus MSE for reference)."""

    mae: float
    psnr: float
    precision: float
    recall: float
    mse: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (for JSON/logging)."""

        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"MAE={self.mae:.4f} PSNR={self.psnr:.3f} "
            f"precision={self.precision:.4f} recall={self.recall:.4f}"
        )


def evaluate_reconstruction(
    reconstruction: np.ndarray,
    seg_probs: np.ndarray,
    truth: np.ndarray,
    threshold: float = 0.5,
) -> ReconstructionMetrics:
    """Compute all Table-1 metrics for a reconstruction batch.

    All arrays must already be clipped to the unpadded region (§2.3).
    """

    if reconstruction.shape != truth.shape or seg_probs.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: recon {reconstruction.shape}, seg {seg_probs.shape}, truth {truth.shape}"
        )
    p, r = precision_recall(seg_probs, truth, threshold)
    return ReconstructionMetrics(
        mae=mae(reconstruction, truth),
        psnr=psnr(reconstruction, truth),
        precision=p,
        recall=r,
        mse=mse(reconstruction, truth),
    )
