"""On-disk formats for compressed codes and evaluation artifacts.

The deployment unit is the fp16 code payload produced by
:class:`repro.core.BCAECompressor`; this module adds a simple npz container
for archiving batches of compressed wedges together with the metadata needed
to decompress them later: code shape, original horizontal size, model name,
the compressor's precision mode and the code dtype.  The precision mode
matters — a payload saved by a half-precision compressor and loaded into a
full-precision one would decode silently wrong, so it is recorded on save
and validated by ``BCAECompressor.decompress``.  Archives written before
these fields existed keep loading (their mode is ``None`` = unchecked).

**Format version 2** (the adaptive rate tier, :mod:`repro.rate`) adds a
per-wedge codec record: ``codec_ids`` + ``record_sizes`` describe the
payload as a concatenation of variable-size records (id 0 = BCAE fp16
codes, classical ids per the append-only registry), and ``rate_decisions``
carries the :class:`repro.rate.RateDecision` ledger.  Version-2 archives
are validated **at load**: every codec id must be known to this build
(unknown ids are rejected loudly instead of mis-decoding) and the payload
must hold exactly the declared record bytes.  Version-1 archives —
everything written before the rate tier — keep loading unchanged.

:func:`concat_compressed` / :func:`split_compressed` rechunk payload
batches.  Legacy batches are fixed-size records (pure byte arithmetic);
mixed-codec batches re-index their per-wedge records, and concatenating a
legacy batch with a mixed one promotes the legacy side to all-BCAE records
first, so the result stays self-describing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..core.compressor import CompressedWedges

__all__ = [
    "save_compressed",
    "load_compressed",
    "concat_compressed",
    "split_compressed",
]

#: Archive format written by :func:`save_compressed` when per-wedge codec
#: records are present (1 = fixed-size BCAE-only, 2 = per-wedge codecs).
FORMAT_VERSION = 2


def save_compressed(
    compressed: CompressedWedges, path: str | Path, model_name: str = ""
) -> Path:
    """Archive a compressed batch to ``path`` (npz)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    half_flag = -1 if compressed.half is None else int(bool(compressed.half))
    arrays = dict(
        payload=np.frombuffer(compressed.payload, dtype=np.uint8),
        code_shape=np.array(compressed.code_shape, dtype=np.int64),
        n_wedges=np.array([compressed.n_wedges], dtype=np.int64),
        original_horizontal=np.array([compressed.original_horizontal], dtype=np.int64),
        model_name=np.frombuffer(model_name.encode("utf-8"), dtype=np.uint8),
        half=np.array([half_flag], dtype=np.int8),
        code_dtype=np.frombuffer(
            np.dtype(compressed.code_dtype).str.encode("ascii"), dtype=np.uint8
        ),
    )
    if compressed.codec_ids is not None:
        arrays["format_version"] = np.array([FORMAT_VERSION], dtype=np.int64)
        arrays["codec_ids"] = np.array(compressed.codec_ids, dtype=np.int64)
        arrays["record_sizes"] = np.array(compressed.record_sizes, dtype=np.int64)
        decisions = compressed.decisions or ()
        if decisions:
            arrays["rate_decisions"] = np.array(
                [d.as_row() for d in decisions], dtype=np.float64
            )
    np.savez_compressed(path, **arrays)
    return path


def _load_codec_fields(data, path, n_wedges: int, payload: bytes):
    """Validate and extract the version-2 per-wedge codec record."""

    codec_ids = tuple(int(v) for v in data["codec_ids"])
    record_sizes = tuple(int(v) for v in data["record_sizes"])
    if len(codec_ids) != n_wedges or len(record_sizes) != n_wedges:
        raise ValueError(
            f"archive {path} declares {n_wedges} wedges but carries "
            f"{len(codec_ids)} codec ids / {len(record_sizes)} record sizes"
        )
    # Reject ids this build cannot decode *here*, where the archive is
    # opened, instead of producing garbage at decompress time.
    from ..rate.registry import validate_codec_ids

    validate_codec_ids(codec_ids, context=f"archive {path}")
    need = sum(record_sizes)
    if len(payload) < need:
        raise ValueError(
            f"archive {path} is truncated: payload holds {len(payload)} "
            f"bytes but the per-wedge records declare {need}"
        )
    decisions = None
    if "rate_decisions" in data.files:
        from ..rate.policy import RateDecision

        rows = np.asarray(data["rate_decisions"], dtype=np.float64)
        if rows.shape[0] != n_wedges:
            raise ValueError(
                f"archive {path} carries {rows.shape[0]} rate decisions "
                f"for {n_wedges} wedges"
            )
        decisions = tuple(RateDecision.from_row(row) for row in rows)
    return codec_ids, record_sizes, decisions


def load_compressed(path: str | Path) -> tuple[CompressedWedges, str]:
    """Load an archived compressed batch; returns (payload, model name).

    Validates the archive's self-description: the code dtype must parse and
    the payload must hold ``n_wedges`` complete code records (a truncated
    or mislabeled archive fails here, not at decode time).  Legacy archives
    without the ``half``/``code_dtype`` fields load with ``half=None``
    (precision unchecked) and the fp16 default; version-2 archives
    additionally validate their per-wedge codec ids against the registry
    and their payload against the declared record sizes.
    """

    with np.load(Path(path)) as data:
        half: bool | None = None
        if "half" in data.files:
            flag = int(data["half"][0])
            half = None if flag < 0 else bool(flag)
        dtype_str = (
            data["code_dtype"].tobytes().decode("ascii")
            if "code_dtype" in data.files
            else "<f2"
        )
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as exc:
            raise ValueError(f"archive {path} has invalid code dtype {dtype_str!r}") from exc
        payload = data["payload"].tobytes()
        code_shape = tuple(int(v) for v in data["code_shape"])
        n_wedges = int(data["n_wedges"][0])
        codec_ids = record_sizes = decisions = None
        if "codec_ids" in data.files:
            codec_ids, record_sizes, decisions = _load_codec_fields(
                data, path, n_wedges, payload
            )
        else:
            need = n_wedges * int(np.prod(code_shape)) * dtype.itemsize
            if len(payload) < need:
                raise ValueError(
                    f"archive {path} is truncated: payload holds {len(payload)} "
                    f"bytes but {n_wedges} wedges of shape {code_shape} "
                    f"({dtype}) need {need}"
                )
        compressed = CompressedWedges(
            payload=payload,
            code_shape=code_shape,
            n_wedges=n_wedges,
            original_horizontal=int(data["original_horizontal"][0]),
            half=half,
            code_dtype=dtype.str,
            codec_ids=codec_ids,
            record_sizes=record_sizes,
            decisions=decisions,
        )
        model_name = data["model_name"].tobytes().decode("utf-8")
    return compressed, model_name


def _record_nbytes(compressed: CompressedWedges) -> int:
    return int(np.prod(compressed.code_shape)) * np.dtype(compressed.code_dtype).itemsize


def _as_records(compressed: CompressedWedges) -> CompressedWedges:
    """Promote a legacy fixed-size batch to explicit per-wedge records.

    All-BCAE by definition (codec id 0, uniform record size); payload
    bytes are reused as-is (trimmed of any ring-buffer overhang).  Mixed
    batches pass through unchanged.
    """

    if compressed.codec_ids is not None:
        return compressed
    record = _record_nbytes(compressed)
    import dataclasses

    return dataclasses.replace(
        compressed,
        payload=bytes(
            memoryview(compressed.payload)[: compressed.n_wedges * record]
        ),
        codec_ids=(0,) * compressed.n_wedges,
        record_sizes=(record,) * compressed.n_wedges,
    )


def concat_compressed(batches: Sequence[CompressedWedges]) -> CompressedWedges:
    """Concatenate payload batches into one.

    All batches must agree on code shape, horizontal size, precision mode
    and dtype — the metadata under which the payload bytes are meaningful.
    Legacy fixed-size batches concatenate by byte arithmetic as before;
    when any batch carries per-wedge codec records, every batch is
    promoted to record form and the codec ids / record sizes / decision
    ledgers concatenate alongside the payload.
    """

    if not batches:
        raise ValueError("cannot concatenate zero compressed batches")
    first = batches[0]
    for b in batches[1:]:
        meta = (b.code_shape, b.original_horizontal, b.half, b.code_dtype)
        ref = (first.code_shape, first.original_horizontal, first.half, first.code_dtype)
        if meta != ref:
            raise ValueError(f"incompatible compressed batches: {meta} != {ref}")

    if any(b.codec_ids is not None for b in batches):
        recs = [_as_records(b) for b in batches]
        codec_ids: tuple[int, ...] = ()
        record_sizes: tuple[int, ...] = ()
        decisions: list = []
        have_decisions = False
        for b in recs:
            codec_ids += b.codec_ids
            record_sizes += b.record_sizes
            if b.decisions is not None:
                have_decisions = True
                decisions.extend(b.decisions)
            else:
                decisions.extend([None] * b.n_wedges)
        return CompressedWedges(
            payload=b"".join(bytes(memoryview(b.payload)[: sum(b.record_sizes)])
                             for b in recs),
            code_shape=first.code_shape,
            n_wedges=sum(b.n_wedges for b in recs),
            original_horizontal=first.original_horizontal,
            half=first.half,
            code_dtype=first.code_dtype,
            codec_ids=codec_ids,
            record_sizes=record_sizes,
            decisions=tuple(decisions) if have_decisions else None,
        )

    record = _record_nbytes(first)
    payload = b"".join(
        bytes(memoryview(b.payload)[: b.n_wedges * record]) for b in batches
    )
    return CompressedWedges(
        payload=payload,
        code_shape=first.code_shape,
        n_wedges=sum(b.n_wedges for b in batches),
        original_horizontal=first.original_horizontal,
        half=first.half,
        code_dtype=first.code_dtype,
    )


def split_compressed(
    compressed: CompressedWedges, batch_size: int
) -> Iterator[CompressedWedges]:
    """Split a payload batch into chunks of ≤ ``batch_size`` wedges.

    Zero-copy: each chunk's payload is a memoryview into the original
    buffer.  The inverse of :func:`concat_compressed`; the decompression
    service uses it to feed archived payloads to the worker pool in
    micro-batches.  Mixed-codec batches slice their per-wedge codec ids,
    record sizes and decision ledger alongside the payload (offsets come
    from the cumulative record sizes, still zero-copy).
    """

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    view = memoryview(compressed.payload)

    if compressed.codec_ids is not None:
        offsets = [0]
        for size in compressed.record_sizes:
            offsets.append(offsets[-1] + int(size))
        for start in range(0, compressed.n_wedges, batch_size):
            n = min(batch_size, compressed.n_wedges - start)
            yield CompressedWedges(
                payload=view[offsets[start]:offsets[start + n]],
                code_shape=compressed.code_shape,
                n_wedges=n,
                original_horizontal=compressed.original_horizontal,
                half=compressed.half,
                code_dtype=compressed.code_dtype,
                codec_ids=compressed.codec_ids[start:start + n],
                record_sizes=compressed.record_sizes[start:start + n],
                decisions=(compressed.decisions[start:start + n]
                           if compressed.decisions is not None else None),
            )
        return

    record = _record_nbytes(compressed)
    for start in range(0, compressed.n_wedges, batch_size):
        n = min(batch_size, compressed.n_wedges - start)
        yield CompressedWedges(
            payload=view[start * record:(start + n) * record],
            code_shape=compressed.code_shape,
            n_wedges=n,
            original_horizontal=compressed.original_horizontal,
            half=compressed.half,
            code_dtype=compressed.code_dtype,
        )
