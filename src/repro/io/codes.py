"""On-disk formats for compressed codes and evaluation artifacts.

The deployment unit is the fp16 code payload produced by
:class:`repro.core.BCAECompressor`; this module adds a simple npz container
for archiving batches of compressed wedges together with the metadata needed
to decompress them later: code shape, original horizontal size, model name,
the compressor's precision mode and the code dtype.  The precision mode
matters — a payload saved by a half-precision compressor and loaded into a
full-precision one would decode silently wrong, so it is recorded on save
and validated by ``BCAECompressor.decompress``.  Archives written before
these fields existed keep loading (their mode is ``None`` = unchecked).

:func:`concat_compressed` / :func:`split_compressed` rechunk payload batches
(codes are fixed-size records, so this is pure byte arithmetic) — the
decompression service uses them to re-batch archived payloads for the
compiled decode path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..core.compressor import CompressedWedges

__all__ = [
    "save_compressed",
    "load_compressed",
    "concat_compressed",
    "split_compressed",
]


def save_compressed(
    compressed: CompressedWedges, path: str | Path, model_name: str = ""
) -> Path:
    """Archive a compressed batch to ``path`` (npz)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    half_flag = -1 if compressed.half is None else int(bool(compressed.half))
    np.savez_compressed(
        path,
        payload=np.frombuffer(compressed.payload, dtype=np.uint8),
        code_shape=np.array(compressed.code_shape, dtype=np.int64),
        n_wedges=np.array([compressed.n_wedges], dtype=np.int64),
        original_horizontal=np.array([compressed.original_horizontal], dtype=np.int64),
        model_name=np.frombuffer(model_name.encode("utf-8"), dtype=np.uint8),
        half=np.array([half_flag], dtype=np.int8),
        code_dtype=np.frombuffer(
            np.dtype(compressed.code_dtype).str.encode("ascii"), dtype=np.uint8
        ),
    )
    return path


def load_compressed(path: str | Path) -> tuple[CompressedWedges, str]:
    """Load an archived compressed batch; returns (payload, model name).

    Validates the archive's self-description: the code dtype must parse and
    the payload must hold ``n_wedges`` complete code records (a truncated
    or mislabeled archive fails here, not at decode time).  Legacy archives
    without the ``half``/``code_dtype`` fields load with ``half=None``
    (precision unchecked) and the fp16 default.
    """

    with np.load(Path(path)) as data:
        half: bool | None = None
        if "half" in data.files:
            flag = int(data["half"][0])
            half = None if flag < 0 else bool(flag)
        dtype_str = (
            data["code_dtype"].tobytes().decode("ascii")
            if "code_dtype" in data.files
            else "<f2"
        )
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as exc:
            raise ValueError(f"archive {path} has invalid code dtype {dtype_str!r}") from exc
        payload = data["payload"].tobytes()
        code_shape = tuple(int(v) for v in data["code_shape"])
        n_wedges = int(data["n_wedges"][0])
        need = n_wedges * int(np.prod(code_shape)) * dtype.itemsize
        if len(payload) < need:
            raise ValueError(
                f"archive {path} is truncated: payload holds {len(payload)} "
                f"bytes but {n_wedges} wedges of shape {code_shape} "
                f"({dtype}) need {need}"
            )
        compressed = CompressedWedges(
            payload=payload,
            code_shape=code_shape,
            n_wedges=n_wedges,
            original_horizontal=int(data["original_horizontal"][0]),
            half=half,
            code_dtype=dtype.str,
        )
        model_name = data["model_name"].tobytes().decode("utf-8")
    return compressed, model_name


def _record_nbytes(compressed: CompressedWedges) -> int:
    return int(np.prod(compressed.code_shape)) * np.dtype(compressed.code_dtype).itemsize


def concat_compressed(batches: Sequence[CompressedWedges]) -> CompressedWedges:
    """Concatenate payload batches into one (codes are fixed-size records).

    All batches must agree on code shape, horizontal size, precision mode
    and dtype — the metadata under which the payload bytes are meaningful.
    """

    if not batches:
        raise ValueError("cannot concatenate zero compressed batches")
    first = batches[0]
    for b in batches[1:]:
        meta = (b.code_shape, b.original_horizontal, b.half, b.code_dtype)
        ref = (first.code_shape, first.original_horizontal, first.half, first.code_dtype)
        if meta != ref:
            raise ValueError(f"incompatible compressed batches: {meta} != {ref}")
    record = _record_nbytes(first)
    payload = b"".join(
        bytes(memoryview(b.payload)[: b.n_wedges * record]) for b in batches
    )
    return CompressedWedges(
        payload=payload,
        code_shape=first.code_shape,
        n_wedges=sum(b.n_wedges for b in batches),
        original_horizontal=first.original_horizontal,
        half=first.half,
        code_dtype=first.code_dtype,
    )


def split_compressed(
    compressed: CompressedWedges, batch_size: int
) -> Iterator[CompressedWedges]:
    """Split a payload batch into chunks of ≤ ``batch_size`` wedges.

    Zero-copy: each chunk's payload is a memoryview into the original
    buffer.  The inverse of :func:`concat_compressed`; the decompression
    service uses it to feed archived payloads to the worker pool in
    micro-batches.
    """

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    record = _record_nbytes(compressed)
    view = memoryview(compressed.payload)
    for start in range(0, compressed.n_wedges, batch_size):
        n = min(batch_size, compressed.n_wedges - start)
        yield CompressedWedges(
            payload=view[start * record:(start + n) * record],
            code_shape=compressed.code_shape,
            n_wedges=n,
            original_horizontal=compressed.original_horizontal,
            half=compressed.half,
            code_dtype=compressed.code_dtype,
        )
