"""On-disk formats for compressed codes and evaluation artifacts.

The deployment unit is the fp16 code payload produced by
:class:`repro.core.BCAECompressor`; this module adds a simple npz container
for archiving batches of compressed wedges together with the metadata needed
to decompress them later (code shape, original horizontal size, model name).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.compressor import CompressedWedges

__all__ = ["save_compressed", "load_compressed"]


def save_compressed(
    compressed: CompressedWedges, path: str | Path, model_name: str = ""
) -> Path:
    """Archive a compressed batch to ``path`` (npz)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        payload=np.frombuffer(compressed.payload, dtype=np.uint8),
        code_shape=np.array(compressed.code_shape, dtype=np.int64),
        n_wedges=np.array([compressed.n_wedges], dtype=np.int64),
        original_horizontal=np.array([compressed.original_horizontal], dtype=np.int64),
        model_name=np.frombuffer(model_name.encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_compressed(path: str | Path) -> tuple[CompressedWedges, str]:
    """Load an archived compressed batch; returns (payload, model name)."""

    with np.load(Path(path)) as data:
        compressed = CompressedWedges(
            payload=data["payload"].tobytes(),
            code_shape=tuple(int(v) for v in data["code_shape"]),
            n_wedges=int(data["n_wedges"][0]),
            original_horizontal=int(data["original_horizontal"][0]),
        )
        model_name = data["model_name"].tobytes().decode("utf-8")
    return compressed, model_name
