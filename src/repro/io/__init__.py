"""``repro.io`` — persistence for codes and artifacts."""

from .codes import load_compressed, save_compressed

__all__ = ["save_compressed", "load_compressed"]
