"""``repro.io`` — persistence for codes and artifacts."""

from .codes import concat_compressed, load_compressed, save_compressed, split_compressed

__all__ = [
    "save_compressed",
    "load_compressed",
    "concat_compressed",
    "split_compressed",
]
