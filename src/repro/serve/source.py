"""Wedge stream sources for the compression service.

A stream is an iterable of :class:`StreamItem`: a sequence number, an
arrival timestamp (in stream time — simulated seconds for DAQ replays) and
the raw ADC wedge.  Sources are plain generators so the service composes
with anything: in-memory arrays, the DAQ arrival process, or a custom
iterator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

import numpy as np

__all__ = ["StreamItem", "iter_wedges", "replay_stream"]


@dataclasses.dataclass
class StreamItem:
    """One wedge in flight.

    Attributes
    ----------
    seq:
        Position in the stream (0-based); the service preserves this order
        on emission.
    arrival_s:
        Arrival timestamp in stream time.  In-memory sources use 0.0 for
        everything; DAQ replays carry the simulated arrival clock, which
        drives the batcher's latency budget.
    wedge:
        Raw ADC wedge ``(R, A, H)``.
    """

    seq: int
    arrival_s: float
    wedge: np.ndarray


def iter_wedges(wedges: Iterable[np.ndarray]) -> Iterator[StreamItem]:
    """Wrap an in-memory wedge collection as an untimed stream."""

    for seq, wedge in enumerate(wedges):
        yield StreamItem(seq=seq, arrival_s=0.0, wedge=np.asarray(wedge))


def replay_stream(
    timed_wedges: Iterable[tuple[float, np.ndarray]],
) -> Iterator[StreamItem]:
    """Wrap ``(arrival_s, wedge)`` pairs — e.g. from
    :meth:`repro.daq.StreamingCompressionSim.wedge_stream` — as a stream."""

    for seq, (arrival, wedge) in enumerate(timed_wedges):
        yield StreamItem(seq=seq, arrival_s=float(arrival), wedge=np.asarray(wedge))
