"""Wedge stream sources for the compression service — sync and async.

A stream is an iterable of :class:`StreamItem`: a sequence number, an
arrival timestamp and the raw ADC wedge.  Sync sources are plain generators
(in-memory arrays, DAQ stream-time replays); async sources subclass
:class:`AsyncWedgeSource` and stamp arrivals with the **monotonic wall
clock** at receipt — the timestamp the async gateway's latency budget is
enforced against (a live DAQ feed has no replayed stream time to lean on).

Adapters:

* :func:`iter_wedges` / :func:`replay_stream` — sync, as before;
* :func:`aiter_wedges` — lift *anything* (stacked array, sync iterable,
  async iterable, already-wrapped items) into an async stream;
* :class:`AsyncQueueSource` — an :class:`asyncio.Queue`-fed live source
  (the in-process stand-in for a DAQ push feed);
* :class:`AsyncSocketSource` — length-prefixed wedge frames from an
  :class:`asyncio.StreamReader` (see :func:`write_wedge_frame`);
* :func:`async_replay_stream` — replay ``(arrival_s, wedge)`` pairs *on
  the wall clock* (sleeps out the inter-arrival gaps instead of merely
  labelling items with simulated time).
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import struct
import time
from typing import AsyncIterator, Iterable, Iterator

import numpy as np

__all__ = [
    "StreamItem",
    "FrameProtocolError",
    "MAX_FRAME_BYTES",
    "iter_wedges",
    "replay_stream",
    "AsyncWedgeSource",
    "AsyncQueueSource",
    "AsyncSocketSource",
    "aiter_wedges",
    "async_replay_stream",
    "write_wedge_frame",
    "read_wedge_frame",
]


class FrameProtocolError(ValueError):
    """A wedge frame stream violated the wire protocol.

    The single exception :func:`read_wedge_frame` (and therefore
    :class:`AsyncSocketSource`) raises for every malformed-input
    condition: a connection dying mid-frame, a truncated header or body,
    a bad magic, or an undecodable dtype/shape header.  Callers handle
    one documented type instead of the raw :class:`asyncio.
    IncompleteReadError`/:class:`struct.error`/:class:`ConnectionError`
    zoo (the original cause rides along as ``__cause__``).  Clean EOF at
    a frame boundary is not an error — it ends the stream normally.
    """


@dataclasses.dataclass
class StreamItem:
    """One wedge in flight.

    Attributes
    ----------
    seq:
        Position in the stream (0-based); the service preserves this order
        on emission.
    arrival_s:
        Arrival timestamp in stream time.  In-memory sources use 0.0 for
        everything; DAQ replays carry the simulated arrival clock, which
        drives the batcher's latency budget.
    wedge:
        Raw ADC wedge ``(R, A, H)``.
    """

    seq: int
    arrival_s: float
    wedge: np.ndarray


def iter_wedges(wedges: Iterable[np.ndarray]) -> Iterator[StreamItem]:
    """Wrap an in-memory wedge collection as an untimed stream."""

    for seq, wedge in enumerate(wedges):
        yield StreamItem(seq=seq, arrival_s=0.0, wedge=np.asarray(wedge))


def replay_stream(
    timed_wedges: Iterable[tuple[float, np.ndarray]],
) -> Iterator[StreamItem]:
    """Wrap ``(arrival_s, wedge)`` pairs — e.g. from
    :meth:`repro.daq.StreamingCompressionSim.wedge_stream` — as a stream."""

    for seq, (arrival, wedge) in enumerate(timed_wedges):
        yield StreamItem(seq=seq, arrival_s=float(arrival), wedge=np.asarray(wedge))


# ----------------------------------------------------------------------
# async sources
# ----------------------------------------------------------------------


class AsyncWedgeSource:
    """Base class of asyncio wedge sources.

    Subclasses implement :meth:`frames` — an async iterator of raw wedges
    (or ready-made :class:`StreamItem`) — and inherit the stamping loop:
    ``async for item in source`` yields :class:`StreamItem` with dense
    sequence numbers and monotonic-clock arrival timestamps.
    """

    def frames(self) -> AsyncIterator[np.ndarray]:
        """Async iterator of raw wedges / items (subclass hook)."""

        raise NotImplementedError

    async def __aiter__(self) -> AsyncIterator[StreamItem]:
        seq = 0
        async for frame in self.frames():
            if isinstance(frame, StreamItem):
                yield dataclasses.replace(frame, seq=seq)
            else:
                yield StreamItem(
                    seq=seq, arrival_s=time.monotonic(), wedge=np.asarray(frame)
                )
            seq += 1


class AsyncQueueSource(AsyncWedgeSource):
    """A live push-fed source: producers ``put`` wedges, the gateway pulls.

    The in-process stand-in for a DAQ feed — arrival timing is whatever the
    producer does, which is exactly what the wall-clock batcher budget is
    about.  ``close()`` ends the stream once the queue drains.
    """

    _DONE = object()

    def __init__(self, maxsize: int = 0) -> None:
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._closed = False
        self._pending_puts = 0

    async def put(self, wedge: np.ndarray) -> None:
        """Feed one wedge; awaits while a bounded queue is full."""

        if self._closed:
            raise RuntimeError("source is closed")
        # Counted so a put() blocked on a full queue when close() lands is
        # still delivered before the consumer declares EOF.
        self._pending_puts += 1
        try:
            await self._queue.put(wedge)
        finally:
            self._pending_puts -= 1

    def put_nowait(self, wedge: np.ndarray) -> None:
        """Feed one wedge without awaiting; raises when the queue is full."""

        if self._closed:
            raise RuntimeError("source is closed")
        self._queue.put_nowait(wedge)

    def close(self) -> None:
        """No more wedges; the stream ends after the queue drains."""

        if not self._closed:
            self._closed = True
            try:
                # Wakes a consumer blocked on an empty queue.  On a *full*
                # bounded queue the sentinel doesn't fit — but then the
                # consumer isn't blocked: it drains the backlog and sees
                # the closed-and-empty condition below.
                self._queue.put_nowait(self._DONE)
            except asyncio.QueueFull:
                pass

    async def frames(self):
        """Yield queued wedges until ``close()`` and the backlog drain."""

        while True:
            if self._closed and self._pending_puts == 0 and self._queue.empty():
                return
            frame = await self._queue.get()
            if frame is self._DONE:
                # The sentinel can land *ahead* of a put() that was
                # blocked on a full queue when close() ran; keep draining
                # until every counted put has been delivered.
                if self._pending_puts or not self._queue.empty():
                    continue
                return
            yield frame


# Wedge frame wire format: magic, dtype tag, shape, then raw bytes.
_FRAME_MAGIC = b"WDG1"
#: Default cap on one frame's body, in bytes (64 MiB).  A corrupt or
#: hostile header can claim up to 255 dims of 2³²-1 each; without a cap
#: the reader would try to buffer that.  Generous: the largest real unit
#: (a paper-scale 3D wedge batch) is well under 64 MiB.
MAX_FRAME_BYTES = 64 << 20


def write_wedge_frame(writer: asyncio.StreamWriter, wedge: np.ndarray) -> None:
    """Serialize one wedge onto a stream (pair with :func:`read_wedge_frame`).

    Frame layout: ``b"WDG1"``, u8 dtype-string length, the numpy dtype
    string, u8 ndim, ndim × u32 dims, then the C-order array bytes.
    Arrays the header cannot represent — more than 255 dims, or any dim
    ≥ 2³² — raise :class:`FrameProtocolError` rather than an opaque
    :class:`struct.error`.

    This only queues bytes on the transport; producers streaming many
    frames must ``await writer.drain()`` periodically (per frame or per
    batch) or the write buffer grows without bound when the consumer is
    slower.
    """

    wedge = np.ascontiguousarray(wedge)
    if wedge.ndim > 255:
        raise FrameProtocolError(
            f"wedge frame header holds at most 255 dims, got {wedge.ndim}"
        )
    if any(dim >= 1 << 32 for dim in wedge.shape):
        raise FrameProtocolError(
            f"wedge frame dims must fit u32 (< 2**32), got shape {wedge.shape}"
        )
    dtype = wedge.dtype.str.encode("ascii")
    header = _FRAME_MAGIC + struct.pack("<B", len(dtype)) + dtype
    header += struct.pack("<B", wedge.ndim)
    header += struct.pack(f"<{wedge.ndim}I", *wedge.shape)
    writer.write(header + wedge.tobytes())


async def read_wedge_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int | None = MAX_FRAME_BYTES,
) -> np.ndarray | None:
    """Read one wedge frame; ``None`` on clean EOF at a frame boundary.

    Every malformed-input condition — mid-frame disconnect, truncated
    header or body, bad magic, undecodable dtype/shape — raises
    :class:`FrameProtocolError` with the original cause chained, so the
    ingest loop has exactly one exception to contain.

    The header is untrusted input: a frame whose declared body exceeds
    ``max_frame_bytes`` (default :data:`MAX_FRAME_BYTES`; ``None``
    disables the cap) raises :class:`FrameProtocolError` *before* any
    body byte is read or buffered, so a corrupt or hostile length field
    cannot drive an unbounded allocation.

    The returned array is **writable** (the frame bytes are copied into
    an owned buffer): socket-ingested wedges must behave like every other
    source under downstream in-place ops.
    """

    try:
        magic = await reader.readexactly(len(_FRAME_MAGIC))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameProtocolError("truncated wedge frame header") from exc
    except (ConnectionError, OSError) as exc:
        raise FrameProtocolError("connection lost between wedge frames") from exc
    if magic != _FRAME_MAGIC:
        raise FrameProtocolError(f"bad wedge frame magic {magic!r}")
    try:
        (dtype_len,) = struct.unpack("<B", await reader.readexactly(1))
        dtype = np.dtype((await reader.readexactly(dtype_len)).decode("ascii"))
        (ndim,) = struct.unpack("<B", await reader.readexactly(1))
        shape = struct.unpack(f"<{ndim}I", await reader.readexactly(4 * ndim))
        # Python-int math: 255 dims of 2**32-1 each overflows int64.
        nbytes = math.prod(shape) * dtype.itemsize
        if max_frame_bytes is not None and nbytes > max_frame_bytes:
            raise FrameProtocolError(
                f"wedge frame claims {nbytes} body bytes, over the "
                f"{max_frame_bytes}-byte cap — corrupt header or hostile "
                "peer"
            )
        data = await reader.readexactly(nbytes)
    except asyncio.IncompleteReadError as exc:
        # A link that dies anywhere inside a frame is one condition to the
        # caller, wherever the bytes stopped.
        raise FrameProtocolError("truncated wedge frame") from exc
    except (ConnectionError, OSError) as exc:
        raise FrameProtocolError("connection lost mid wedge frame") from exc
    except (struct.error, TypeError, UnicodeDecodeError) as exc:
        raise FrameProtocolError("undecodable wedge frame header") from exc
    # One copy into an owned, writable buffer: np.frombuffer over received
    # `bytes` would hand every socket consumer a read-only array.
    return np.frombuffer(bytearray(data), dtype=dtype).reshape(shape)


class AsyncSocketSource(AsyncWedgeSource):
    """Wedge frames from an :class:`asyncio.StreamReader` (socket ingest).

    The other end writes frames with :func:`write_wedge_frame`; the stream
    ends on clean EOF.  A peer that dies mid-frame (or sends garbage)
    surfaces as one :class:`FrameProtocolError` and the socket is closed
    either way — an abrupt disconnect never leaks the transport.  Use
    :meth:`connect` for a TCP client, or wrap the reader an
    ``asyncio.start_server`` callback hands you.

    ``max_frame_bytes`` bounds how large a body any one frame may claim
    (see :func:`read_wedge_frame`); the gateway sets it from its config
    so untrusted producers cannot drive unbounded buffering.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter | None = None,
        max_frame_bytes: int | None = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        # The writer must stay referenced for the connection's lifetime —
        # dropping it garbage-collects the transport and closes the socket.
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes

    @classmethod
    async def connect(cls, host: str, port: int,
                      max_frame_bytes: int | None = MAX_FRAME_BYTES,
                      ) -> "AsyncSocketSource":
        """Open a TCP connection and wrap it as a wedge source."""

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def aclose(self) -> None:
        """Close the transport (idempotent; also runs on stream end)."""

        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def frames(self):
        """Yield length-prefixed frames until EOF; always closes the socket."""

        # finally (not just the EOF return) so a malformed frame or an
        # abandoned iteration doesn't pin the TCP transport open.
        try:
            while True:
                wedge = await read_wedge_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                if wedge is None:
                    return
                yield wedge
        finally:
            await self.aclose()


def aiter_wedges(source) -> AsyncIterator[StreamItem]:
    """Lift any wedge source into an async :class:`StreamItem` stream.

    Accepts an :class:`AsyncWedgeSource`, any async iterable (of wedges or
    items), a stacked ``(N, R, A, H)`` array, or any sync iterable the sync
    service accepts.  Sync sources yield without blocking the loop; wedges
    without timestamps are stamped with the monotonic receipt clock.
    """

    class _Lifted(AsyncWedgeSource):
        async def frames(self):
            if hasattr(source, "__aiter__"):
                async for frame in source:
                    yield frame
                return
            wedges = source
            if isinstance(wedges, np.ndarray):
                if wedges.ndim != 4:
                    raise ValueError(
                        f"stacked source must be (N, R, A, H), got {wedges.shape}"
                    )
            for frame in wedges:
                yield frame

    return _Lifted().__aiter__()


async def async_replay_stream(
    timed_wedges: Iterable[tuple[float, np.ndarray]], speed: float = 1.0
) -> AsyncIterator[StreamItem]:
    """Replay ``(arrival_s, wedge)`` pairs **on the wall clock**.

    Unlike :func:`replay_stream` (which only labels items with simulated
    time), this sleeps out the inter-arrival gaps, so downstream wall-clock
    machinery — the async batcher's monotonic deadline above all — sees the
    arrival process for real.  ``speed > 1`` replays faster than recorded.
    """

    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    start = time.monotonic()
    t0 = None
    seq = 0
    for arrival, wedge in timed_wedges:
        arrival = float(arrival)
        if t0 is None:
            t0 = arrival
        due = start + (arrival - t0) / speed
        delay = due - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        yield StreamItem(seq=seq, arrival_s=time.monotonic(), wedge=np.asarray(wedge))
        seq += 1
