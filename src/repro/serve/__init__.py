"""``repro.serve`` — streaming compression service (the deployment loop).

The paper's deployment story (§1, §3.2–3.3) is an always-on encoder keeping
up with sPHENIX streaming readout; :mod:`repro.daq` sizes that system as a
queueing problem, and this package is the first executable piece of it: a
micro-batching service that pulls wedges from a stream, accumulates them
under a latency budget, fans batches out to a pool of compressor workers,
and emits payloads in arrival order with per-batch latency statistics.

* :class:`~repro.serve.batcher.MicroBatcher` — latency-budgeted batching;
* :class:`~repro.serve.service.StreamingCompressionService` — worker pool +
  ordered emission + :class:`~repro.serve.service.ServiceStats`;
* :mod:`repro.serve.source` — stream adapters (in-memory arrays, DAQ-timed
  replay via :meth:`repro.daq.StreamingCompressionSim.wedge_stream`).
"""

from .batcher import MicroBatch, MicroBatcher
from .service import ServiceConfig, ServiceStats, StreamingCompressionService
from .source import StreamItem, iter_wedges, replay_stream

__all__ = [
    "MicroBatch",
    "MicroBatcher",
    "ServiceConfig",
    "ServiceStats",
    "StreamingCompressionService",
    "StreamItem",
    "iter_wedges",
    "replay_stream",
]
