"""``repro.serve`` — the round-trip serving layer (both ends of the loop).

The paper's deployment story (§1, §3.2–3.3) is bicephalous end to end: an
always-on *encoder* keeps up with sPHENIX streaming readout in the counting
house, and offline analysis *decodes* the archived payloads at comparable
throughput.  Both directions share one serving engine,
:class:`~repro.serve.service.ModelPoolService` — a pool of workers that
each own a resident :class:`~repro.core.BCAECompressor` (compiled fast-path
workspaces, never shared, no hot-path locks), fed work units in stream
order through a bounded in-flight window, with per-batch latency statistics
— hosted inline, on a thread pool, or on a GIL-sidestepping process pool
(``ServiceConfig.backend``).

The two instantiations:

* :class:`~repro.serve.service.StreamingCompressionService` — wedge stream
  → :class:`~repro.serve.batcher.MicroBatcher` (latency-budgeted
  accumulation) → ``compress_into`` → payloads in arrival order;
* :class:`~repro.serve.service.DecompressionService` — archived payload
  batches → :func:`repro.io.split_compressed` re-chunking →
  ``decompress_into`` → reconstructions in arrival order.

Stream adapters live in :mod:`repro.serve.source` (in-memory arrays,
DAQ-timed replay via :meth:`repro.daq.StreamingCompressionSim.wedge_stream`).
Output bytes are identical to serial single-call compress/decompress in
every configuration — batching and pooling are free correctness-wise.
"""

from .batcher import MicroBatch, MicroBatcher
from .service import (
    BatchRecord,
    DecompressionService,
    ModelPoolService,
    ServiceConfig,
    ServiceStats,
    StreamingCompressionService,
)
from .source import StreamItem, iter_wedges, replay_stream

__all__ = [
    "BatchRecord",
    "MicroBatch",
    "MicroBatcher",
    "ModelPoolService",
    "ServiceConfig",
    "ServiceStats",
    "StreamingCompressionService",
    "DecompressionService",
    "StreamItem",
    "iter_wedges",
    "replay_stream",
]
