"""``repro.serve`` — the round-trip serving layer (both ends of the loop).

The paper's deployment story (§1, §3.2–3.3) is bicephalous end to end: an
always-on *encoder* keeps up with sPHENIX streaming readout in the counting
house, and offline analysis *decodes* the archived payloads at comparable
throughput.  Both directions share one serving engine,
:class:`~repro.serve.service.ModelPoolService` — a pool of workers that
each own a resident :class:`~repro.core.BCAECompressor` (compiled fast-path
workspaces, never shared, no hot-path locks), fed work units in stream
order through a bounded in-flight window, with per-batch latency statistics
— hosted inline, on a thread pool, or on a GIL-sidestepping process pool
(``ServiceConfig.backend``).

The two instantiations:

* :class:`~repro.serve.service.StreamingCompressionService` — wedge stream
  → :class:`~repro.serve.batcher.MicroBatcher` (latency-budgeted
  accumulation) → ``compress_into`` → payloads in arrival order;
* :class:`~repro.serve.service.DecompressionService` — archived payload
  batches → :func:`repro.io.split_compressed` re-chunking →
  ``decompress_into`` → reconstructions in arrival order.

**Async ingestion gateway.**  Every service also has an asyncio face:
``compress_stream_async``/``run_async`` pull an async source
(:class:`~repro.serve.source.AsyncQueueSource`,
:class:`~repro.serve.source.AsyncSocketSource`, or anything
:func:`~repro.serve.source.aiter_wedges` can lift) through
:class:`~repro.serve.batcher.AsyncMicroBatcher`, whose latency budget is a
**monotonic wall-clock deadline** — a batch flushes ``max_delay_s`` after
its first wedge arrives even if the link stalls, which replayed stream
time cannot promise.  ``max_delay_s = 0`` means "never wait".  Beneath
them, :class:`~repro.serve.service.AsyncServingSession` is the raw façade:
``await submit(unit)`` returns the unit's future (worker faults surface
there and nowhere else), results emit in submission order through the same
bounded in-flight window, and early close drains in-flight work cleanly.

**Shared-memory hand-off.**  With ``ServiceConfig.backend="process"``, the
default ``transport="shm"`` moves payloads through a ring of pre-sized
:mod:`multiprocessing.shared_memory` slabs (:mod:`repro.serve.shm`): the
parent leases a slab and memcpys the unit in, the worker reads it in place
and writes its result back into the *same* slab, and only tiny descriptors
(slab index + dtype/shape headers) are ever pickled.  Slab size is
**adaptive by default** (``shm_slab_mb=None``): the ring is created lazily
from the first work unit, sized from the service's own arithmetic (input
*and* result at ``max_batch``, via ``code_shape_for``), so real units fit.
Units larger than a slab still degrade per-unit to the ``"pickle"``
transport, but no longer silently: the degradations are counted as
``FaultCounters.shm_fallbacks`` on the stream's stats and health totals.
Slabs are released on emission, on worker exception, and at stream close
(the segment is unlinked; ``service.last_shm`` records the counters).

**Gateway & sharding.**  :class:`~repro.serve.gateway.ServingGateway` is
the multi-producer front door: ``asyncio.start_server`` accepts N
concurrent clients speaking the length-prefixed wedge-frame format
(bounded per frame by :data:`~repro.serve.source.MAX_FRAME_BYTES`), each
session is micro-batched under the wall-clock budget, and a
:class:`~repro.serve.gateway.StreamRouter` shards sessions across multiple
``ModelPoolService`` instances — health-aware placement, per-shard
backpressure with spill to the least-loaded shard, shard eviction with
per-session (never global) failure, and one slab ring per shard leased
across sessions.  :class:`~repro.serve.gateway.GatewayStats` /
:class:`~repro.serve.gateway.GatewayHealth` aggregate the per-service
supervision currencies across shards; ``repro-tpc serve --shards N
--gateway-port P`` runs it from the CLI.

**Supervision and fault tolerance.**  Serving is supervised: a worker
process death (SIGKILL/OOM) is detected, the pool is rebuilt and the slab
ring quarantined, and the failure surfaces only on the owning unit — or
the unit succeeds transparently via the bounded retry/backoff policy
(``ServiceConfig.unit_timeout_s`` / ``max_retries`` / ``backoff_base_s``).
After ``degrade_after`` consecutive crashes a circuit breaker steps the
effective backend down process → thread → inline instead of dying
(:exc:`~repro.serve.service.WorkerCrashError` /
:exc:`~repro.serve.service.UnitTimeoutError` once budgets are spent).
:meth:`~repro.serve.service.ModelPoolService.health` reports the
supervision state machine (healthy → retrying → rebuilding → degraded →
drained) plus slab-ring occupancy and fault totals —
:func:`~repro.serve.service.start_health_server` serves it as JSON for
``repro-tpc serve --health-port`` — and
:meth:`~repro.serve.service.ModelPoolService.drain` stops intake, flushes
in-flight units and releases every slab.

Output bytes are identical to serial single-call compress/decompress in
every configuration — batching, pooling, async ingestion, the slab
transport and crash recovery are all free correctness-wise.
"""

from .batcher import AsyncMicroBatcher, MicroBatch, MicroBatcher
from .gateway import (
    GatewayConfig,
    GatewayHealth,
    GatewayStats,
    ServingGateway,
    ShardLostError,
    StreamRouter,
)
from .service import (
    AsyncServingSession,
    BatchRecord,
    DecompressionService,
    HandoffProbeService,
    ModelPoolService,
    ProbeItem,
    ServiceConfig,
    ServiceHealth,
    ServiceStats,
    ServingFaultError,
    StreamingCompressionService,
    UnitTimeoutError,
    WorkerCrashError,
    start_health_server,
)
from .shm import SlabRing, SlabSpec, shm_available
from .source import (
    MAX_FRAME_BYTES,
    AsyncQueueSource,
    AsyncSocketSource,
    AsyncWedgeSource,
    FrameProtocolError,
    StreamItem,
    aiter_wedges,
    async_replay_stream,
    iter_wedges,
    read_wedge_frame,
    replay_stream,
    write_wedge_frame,
)

__all__ = [
    "BatchRecord",
    "MicroBatch",
    "MicroBatcher",
    "AsyncMicroBatcher",
    "ModelPoolService",
    "ServiceConfig",
    "ServiceStats",
    "ServiceHealth",
    "ServingFaultError",
    "WorkerCrashError",
    "UnitTimeoutError",
    "StreamingCompressionService",
    "DecompressionService",
    "HandoffProbeService",
    "ProbeItem",
    "AsyncServingSession",
    "start_health_server",
    "ServingGateway",
    "StreamRouter",
    "GatewayConfig",
    "GatewayStats",
    "GatewayHealth",
    "ShardLostError",
    "SlabRing",
    "SlabSpec",
    "shm_available",
    "StreamItem",
    "FrameProtocolError",
    "MAX_FRAME_BYTES",
    "iter_wedges",
    "replay_stream",
    "AsyncWedgeSource",
    "AsyncQueueSource",
    "AsyncSocketSource",
    "aiter_wedges",
    "async_replay_stream",
    "write_wedge_frame",
    "read_wedge_frame",
]
