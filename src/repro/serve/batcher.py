"""Latency-budgeted micro-batching (the "accumulate" half of serving).

Batching is what makes the encoder fast (Figure 6: throughput rises with
batch size), but an always-on service cannot wait forever for a batch to
fill — the counting house has a latency budget.  :class:`MicroBatcher`
closes a batch when either

* it holds ``max_batch`` wedges, or
* the next wedge's arrival timestamp is more than ``max_delay_s`` after the
  oldest waiting wedge's (stream-time latency budget exceeded).

For untimed sources (all arrivals at 0.0) the second rule never fires and
the batcher degenerates to plain chunking, which is exactly right for
offline replays.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

import numpy as np

from .source import StreamItem

__all__ = ["MicroBatch", "MicroBatcher"]


@dataclasses.dataclass
class MicroBatch:
    """A batch of wedges ready for one compressor call.

    Attributes
    ----------
    seq:
        Batch sequence number (0-based, dense).
    first_seq:
        Stream sequence number of the first wedge in the batch.
    wedges:
        Stacked raw wedges ``(B, R, A, H)`` — a fresh array, safe to hand
        to a worker thread.
    oldest_arrival_s / newest_arrival_s:
        Stream-time arrival span covered by the batch.
    """

    seq: int
    first_seq: int
    wedges: np.ndarray
    oldest_arrival_s: float
    newest_arrival_s: float

    @property
    def n_wedges(self) -> int:
        return self.wedges.shape[0]

    @property
    def accumulation_s(self) -> float:
        """Stream time spent waiting for the batch to fill."""

        return self.newest_arrival_s - self.oldest_arrival_s


class MicroBatcher:
    """Accumulate a wedge stream into micro-batches under a latency budget.

    Parameters
    ----------
    max_batch:
        Upper bound on wedges per batch (the knee of the Figure-6 curve is
        the right setting; defaults to 8).
    max_delay_s:
        Stream-time accumulation budget.  ``0`` means "never wait": only
        ``max_batch`` closes batches (untimed sources behave this way
        regardless).
    """

    def __init__(self, max_batch: int = 8, max_delay_s: float = 0.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)

    def batches(self, source: Iterable[StreamItem]) -> Iterator[MicroBatch]:
        """Yield :class:`MicroBatch` chunks in stream order."""

        pending: list[StreamItem] = []
        batch_seq = 0

        def flush() -> MicroBatch:
            nonlocal batch_seq, pending
            batch = MicroBatch(
                seq=batch_seq,
                first_seq=pending[0].seq,
                wedges=np.stack([item.wedge for item in pending]),
                oldest_arrival_s=pending[0].arrival_s,
                newest_arrival_s=pending[-1].arrival_s,
            )
            batch_seq += 1
            pending = []
            return batch

        for item in source:
            if pending and (
                self.max_delay_s > 0
                and item.arrival_s - pending[0].arrival_s > self.max_delay_s
            ):
                yield flush()
            pending.append(item)
            if len(pending) >= self.max_batch:
                yield flush()
        if pending:
            yield flush()
