"""Latency-budgeted micro-batching (the "accumulate" half of serving).

Batching is what makes the encoder fast (Figure 6: throughput rises with
batch size), but an always-on service cannot wait forever for a batch to
fill — the counting house has a latency budget.  :class:`MicroBatcher`
closes a batch when either

* it holds ``max_batch`` wedges, or
* the next wedge's arrival timestamp is more than ``max_delay_s`` after the
  oldest waiting wedge's (stream-time latency budget exceeded).

For untimed sources (all arrivals at 0.0) the second rule never fires and
the batcher degenerates to plain chunking, which is exactly right for
offline replays.

:class:`AsyncMicroBatcher` is the online twin: it consumes an *async*
stream and enforces the budget against the **monotonic wall clock** — a
batch is flushed at ``first-wedge receipt + max_delay_s`` whether or not
another wedge ever arrives, which replayed stream time cannot promise.
``max_delay_s = 0`` means "never wait": a batch closes as soon as the
source would block.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import AsyncIterable, AsyncIterator, Iterable, Iterator

import numpy as np

from .source import StreamItem

__all__ = ["MicroBatch", "MicroBatcher", "AsyncMicroBatcher"]


@dataclasses.dataclass
class MicroBatch:
    """A batch of wedges ready for one compressor call.

    Attributes
    ----------
    seq:
        Batch sequence number (0-based, dense).
    first_seq:
        Stream sequence number of the first wedge in the batch.
    wedges:
        Stacked raw wedges ``(B, R, A, H)`` — a fresh array, safe to hand
        to a worker thread.
    oldest_arrival_s / newest_arrival_s:
        Stream-time arrival span covered by the batch.
    closed_by:
        Why the batch closed: ``"full"`` (hit ``max_batch``), ``"budget"``
        (latency budget expired), ``"eof"`` (stream ended) or ``"drain"``
        (the service stopped intake — a graceful drain flushes whatever
        had accumulated).
    wait_s:
        Wall-clock time the batch accumulated before closing (async
        batcher only; the sync batcher has no wall clock and leaves 0).
    """

    seq: int
    first_seq: int
    wedges: np.ndarray
    oldest_arrival_s: float
    newest_arrival_s: float
    closed_by: str = ""
    wait_s: float = 0.0

    @property
    def n_wedges(self) -> int:
        return self.wedges.shape[0]

    @property
    def accumulation_s(self) -> float:
        """Stream time spent waiting for the batch to fill."""

        return self.newest_arrival_s - self.oldest_arrival_s


class MicroBatcher:
    """Accumulate a wedge stream into micro-batches under a latency budget.

    Parameters
    ----------
    max_batch:
        Upper bound on wedges per batch (the knee of the Figure-6 curve is
        the right setting; defaults to 8).
    max_delay_s:
        Stream-time accumulation budget.  ``0`` means "never wait": only
        ``max_batch`` closes batches (untimed sources behave this way
        regardless).
    """

    def __init__(self, max_batch: int = 8, max_delay_s: float = 0.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)

    def batches(
        self, source: Iterable[StreamItem], stop=None
    ) -> Iterator[MicroBatch]:
        """Yield :class:`MicroBatch` chunks in stream order.

        ``stop`` is an optional zero-arg callable polled once per wedge —
        the serving layer's drain latch.  When it turns true, whatever has
        accumulated is flushed as a final ``closed_by="drain"`` batch and
        the source is not pulled again.
        """

        pending: list[StreamItem] = []
        batch_seq = 0

        def flush(closed_by: str) -> MicroBatch:
            nonlocal batch_seq, pending
            batch = _make_batch(batch_seq, pending, closed_by)
            batch_seq += 1
            pending = []
            return batch

        for item in source:
            if pending and (
                self.max_delay_s > 0
                and item.arrival_s - pending[0].arrival_s > self.max_delay_s
            ):
                yield flush("budget")
            pending.append(item)
            if stop is not None and stop():
                yield flush("drain")
                return
            if len(pending) >= self.max_batch:
                yield flush("full")
        if pending:
            yield flush("eof")


def _make_batch(
    batch_seq: int, pending: list[StreamItem], closed_by: str, wait_s: float = 0.0
) -> MicroBatch:
    return MicroBatch(
        seq=batch_seq,
        first_seq=pending[0].seq,
        wedges=np.stack([item.wedge for item in pending]),
        oldest_arrival_s=pending[0].arrival_s,
        newest_arrival_s=pending[-1].arrival_s,
        closed_by=closed_by,
        wait_s=wait_s,
    )


class AsyncMicroBatcher:
    """Wall-clock micro-batching of an async wedge stream.

    Parameters mirror :class:`MicroBatcher`, but ``max_delay_s`` is a
    **wall-clock** budget against :func:`time.monotonic`: the moment a
    batch's first wedge is received, a deadline is armed, and the batch is
    flushed when the deadline passes even if the source never produces
    another wedge (the case replayed stream time cannot handle — a stalled
    DAQ link must not stall the wedges already waiting).  ``max_delay_s =
    0`` means "never wait": the batch closes as soon as the source would
    block, so a wedge is never held hostage to timing.

    The source is pulled through a single persistent task, so a flush on
    timeout never cancels (or loses) an in-progress pull.
    """

    def __init__(self, max_batch: int = 8, max_delay_s: float = 0.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)

    async def batches(
        self, source: AsyncIterable[StreamItem], stop=None
    ) -> AsyncIterator[MicroBatch]:
        """Yield :class:`MicroBatch` chunks in stream order, on deadline.

        ``stop`` mirrors :meth:`MicroBatcher.batches`: a zero-arg drain
        latch polled per wedge; once true, the accumulated batch flushes
        as ``closed_by="drain"`` and the source is not pulled again.
        """

        iterator = source.__aiter__()
        pending: list[StreamItem] = []
        batch_seq = 0
        deadline = 0.0
        first_receipt = 0.0
        pull: asyncio.Future | None = None
        exhausted = False

        def flush(closed_by: str) -> MicroBatch:
            nonlocal batch_seq, pending
            batch = _make_batch(
                batch_seq, pending, closed_by, time.monotonic() - first_receipt
            )
            batch_seq += 1
            pending = []
            return batch

        try:
            while not exhausted:
                if pull is None:
                    pull = asyncio.ensure_future(iterator.__anext__())
                if not pending:
                    # Nothing waiting: block indefinitely for the next wedge.
                    try:
                        item = await pull
                    except StopAsyncIteration:
                        break
                    finally:
                        pull = None
                else:
                    # A batch is accumulating: wait at most until its
                    # monotonic deadline, without cancelling the pull.
                    timeout = (
                        max(0.0, deadline - time.monotonic())
                        if self.max_delay_s > 0
                        else 0.0
                    )
                    done, _ = await asyncio.wait((pull,), timeout=timeout)
                    if pull not in done:
                        yield flush("budget")
                        continue
                    try:
                        item = pull.result()
                    except StopAsyncIteration:
                        exhausted = True
                        pull = None
                        continue
                    pull = None
                if not pending:
                    first_receipt = time.monotonic()
                    deadline = first_receipt + self.max_delay_s
                pending.append(item)
                if stop is not None and stop():
                    yield flush("drain")
                    return
                if len(pending) >= self.max_batch:
                    yield flush("full")
            if pending:
                yield flush("eof")
        finally:
            if pull is not None:
                pull.cancel()
                try:
                    await pull
                except (StopAsyncIteration, asyncio.CancelledError):
                    pass
