"""The model-pool serving core and its two instantiations.

The ROADMAP's "heavy traffic" loop is bicephalous end to end: the counting
house compresses the wedge stream online, and offline analysis decompresses
it at comparable throughput.  Both directions have the same serving shape —
work units fan out to a pool of workers that each own a resident
:class:`BCAECompressor` (compiled fast-path workspaces are deliberately not
shared: no locks on the hot path), and results are emitted in stream order
through a bounded in-flight window that doubles as backpressure.  That
shared machinery is :class:`ModelPoolService`; the two deployments are

* :class:`StreamingCompressionService` — micro-batches a wedge stream
  (:class:`~repro.serve.batcher.MicroBatcher` under a latency budget) into
  ``BCAECompressor.compress_into`` calls;
* :class:`DecompressionService` — re-chunks archived payload batches
  (:func:`repro.io.codes.split_compressed`) into
  ``BCAECompressor.decompress_into`` calls.

Execution backends, per :class:`ServiceConfig`:

* ``workers=0`` — inline on the caller's thread: no hand-off overhead, the
  right default for CPU-bound NumPy on one core;
* ``backend="thread"`` — a thread pool with per-stream compressor checkout
  (the hand-off machinery a multi-GPU deployment would use; BLAS releases
  the GIL during GEMMs);
* ``backend="process"`` — a process pool that sidesteps the GIL entirely on
  multi-core boxes: each worker process builds its own compressor from the
  (pickled/forked) model, work units and results cross the process boundary
  by value.

Payload/reconstruction bytes are identical to serial single-call
``compress``/``decompress`` in every configuration.  Every model with a
compiled stage plan — the 2D family *and* the 3D BCAE++/HT variants —
serves through the fast ``compress_into``/``decompress_into`` paths and is
eligible for the ≥2× serving gates of ``bench_serving.py`` /
``bench_decode.py``; only unknown stage stacks (the original BCAE's
BatchNorm blocks) degrade to the module graph inside the same services.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import itertools
import os
import threading
import time
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.compressor import BCAECompressor, CompressedWedges
from ..io.codes import split_compressed
from ..perf.timing import ThroughputResult, throughput_from_batches
from .batcher import MicroBatch, MicroBatcher
from .source import StreamItem, iter_wedges

__all__ = [
    "ServiceConfig",
    "BatchRecord",
    "ServiceStats",
    "ModelPoolService",
    "StreamingCompressionService",
    "DecompressionService",
]

_BACKENDS = ("thread", "process")


@dataclasses.dataclass
class ServiceConfig:
    """Tunables of one service instance.

    Attributes
    ----------
    max_batch:
        Work-unit size cap in wedges (the knee of the Figure-6 batch curve
    	for compression; payload batches are split to this for decode).
    max_delay_s:
        Stream-time accumulation budget (see :class:`MicroBatcher`);
        compression only.
    workers:
        Pool size.  ``0`` runs inline on the caller's thread — the fastest
        configuration for single-core NumPy; ``>= 1`` exercises the real
        hand-off machinery.
    backend:
        ``"thread"`` (default) or ``"process"`` — how ``workers >= 1`` are
        hosted.  The process pool sidesteps the GIL on multi-core boxes at
        the cost of pickling work units and results across the boundary.
    half:
        fp16 inference mode (paper §3.3 deployment default).
    inflight:
        Bound on units submitted but not yet emitted (backpressure).
    """

    max_batch: int = 8
    max_delay_s: float = 0.0
    workers: int = 0
    backend: str = "thread"
    half: bool = True
    inflight: int = 8

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.inflight < 1:
            raise ValueError(f"inflight must be >= 1, got {self.inflight}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )


@dataclasses.dataclass
class BatchRecord:
    """Timing record of one served work unit (a compressed/decoded batch)."""

    seq: int
    first_seq: int
    n_wedges: int
    compress_s: float  # time inside the worker's compressor call
    worker: str


@dataclasses.dataclass
class ServiceStats:
    """Aggregate outcome of one served stream."""

    n_wedges: int
    n_batches: int
    elapsed_s: float
    half: bool
    max_batch: int
    workers: int
    records: list[BatchRecord] = dataclasses.field(default_factory=list)

    @property
    def wedges_per_second(self) -> float:
        """End-to-end service throughput (includes batching + hand-off)."""

        return self.n_wedges / max(self.elapsed_s, 1e-12)

    @property
    def mean_batch_s(self) -> float:
        return float(np.mean([r.compress_s for r in self.records])) if self.records else 0.0

    @property
    def p99_batch_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.quantile([r.compress_s for r in self.records], 0.99))

    @property
    def mean_batch_size(self) -> float:
        return self.n_wedges / max(self.n_batches, 1)

    def to_throughput_result(self) -> ThroughputResult:
        """This run in the currency of :mod:`repro.perf` microbenchmarks."""

        return throughput_from_batches(
            [r.n_wedges for r in self.records],
            [r.compress_s for r in self.records],
            self.elapsed_s,
            half=self.half,
        )

    def row(self) -> str:
        """One-line summary for logs and benches."""

        return (
            f"wedges={self.n_wedges} batches={self.n_batches} "
            f"(mean size {self.mean_batch_size:.1f}) "
            f"throughput={self.wedges_per_second:8.1f} w/s "
            f"batch(mean/p99)={self.mean_batch_s * 1e3:6.2f}/{self.p99_batch_s * 1e3:6.2f} ms "
            f"workers={self.workers}"
        )


@dataclasses.dataclass
class PayloadItem:
    """One decompression work unit: a payload batch with stream bookkeeping."""

    seq: int
    first_seq: int
    compressed: CompressedWedges

    @property
    def n_wedges(self) -> int:
        return self.compressed.n_wedges


class ModelPoolService:
    """Shared serving core: compressor pool → ordered fan-out → stats.

    Subclasses define one unit of work (:meth:`_work`, and its module-level
    twin for the process backend via :attr:`_kind`); everything else —
    compressor pooling/checkout, inline / thread / process execution, the
    bounded in-flight ordered emission, and stats assembly — lives here, so
    compression and decompression are two instantiations of one engine.
    """

    #: Work dispatch tag for the process backend ("compress"/"decompress").
    _kind = ""

    def __init__(self, model, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.model = model
        # Warm compressors are pooled on the instance so back-to-back
        # streams reuse their compiled workspaces; checkouts are per-stream
        # (see _Checkout), so concurrent streams on one service never share
        # a compressor's non-thread-safe scratch.  Process-backend workers
        # own compressors in their own processes instead.
        self._pool_lock = threading.Lock()
        prewarm = 1 if self.config.backend == "process" else max(1, self.config.workers)
        self._idle: list[BCAECompressor] = [
            BCAECompressor(model, half=self.config.half) for _ in range(prewarm)
        ]

    # ------------------------------------------------------------------
    def _acquire(self) -> BCAECompressor:
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
        return BCAECompressor(self.model, half=self.config.half)

    def _release(self, compressors: list[BCAECompressor]) -> None:
        with self._pool_lock:
            self._idle.extend(compressors)

    # ------------------------------------------------------------------
    def _work(self, compressor: BCAECompressor, item):
        """One unit of work on a checked-out compressor (subclass hook)."""

        raise NotImplementedError

    def _execute(self, checkout: "_Checkout", item):
        name, compressor = checkout.get()
        t0 = time.perf_counter()
        result = self._work(compressor, item)
        dt = time.perf_counter() - t0
        record = BatchRecord(
            seq=item.seq,
            first_seq=item.first_seq,
            n_wedges=item.n_wedges,
            compress_s=dt,
            worker=name,
        )
        return record, result

    # ------------------------------------------------------------------
    def _serve(self, items) -> Iterator[tuple[BatchRecord, object]]:
        """Run work units through the configured backend, in stream order."""

        cfg = self.config
        if cfg.workers == 0:
            checkout = _Checkout(self)
            try:
                for item in items:
                    yield self._execute(checkout, item)
            finally:
                checkout.release()
            return

        if cfg.backend == "process":
            with concurrent.futures.ProcessPoolExecutor(
                cfg.workers,
                initializer=_process_init,
                initargs=(self.model, cfg.half),
            ) as pool:
                yield from self._drain_ordered(
                    pool, items, lambda p, it: p.submit(_process_work, self._kind, it)
                )
            return

        checkout = _Checkout(self)
        try:
            with concurrent.futures.ThreadPoolExecutor(cfg.workers) as pool:
                yield from self._drain_ordered(
                    pool, items, lambda p, it: p.submit(self._execute, checkout, it)
                )
        finally:
            checkout.release()

    def _drain_ordered(self, pool, items, submit):
        """Bounded in-flight window: emission order == submission order ==
        stream order, and the bound is backpressure."""

        window: collections.deque = collections.deque()
        for item in items:
            window.append(submit(pool, item))
            while len(window) >= self.config.inflight:
                yield window.popleft().result()
        while window:
            yield window.popleft().result()

    # ------------------------------------------------------------------
    def _collect(self, stream, keep: bool) -> tuple[list, ServiceStats]:
        """Drain a served stream into (results, stats)."""

        cfg = self.config
        results: list = []
        records: list[BatchRecord] = []
        n_wedges = 0
        t0 = time.perf_counter()
        for record, result in stream:
            records.append(record)
            n_wedges += record.n_wedges
            if keep:
                results.append(result)
        elapsed = time.perf_counter() - t0
        stats = ServiceStats(
            n_wedges=n_wedges,
            n_batches=len(records),
            elapsed_s=elapsed,
            half=cfg.half,
            max_batch=cfg.max_batch,
            workers=cfg.workers,
            records=records,
        )
        return results, stats


class StreamingCompressionService(ModelPoolService):
    """Micro-batching, multi-worker wedge compression.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder`; each worker compiles its own
        compressor (and fast-path workspaces) against it.
    config:
        :class:`ServiceConfig`; defaults are single-core friendly.
    """

    _kind = "compress"

    def _work(self, compressor: BCAECompressor, batch: MicroBatch) -> CompressedWedges:
        # compress_into without `out` returns owned payload bytes — safe to
        # hand across threads while the worker reuses its workspaces.
        return compressor.compress_into(batch.wedges)

    # ------------------------------------------------------------------
    def compress_stream(
        self, source: Iterable[StreamItem] | Sequence[np.ndarray] | np.ndarray
    ) -> Iterator[tuple[BatchRecord, CompressedWedges]]:
        """Compress a stream; yields ``(record, payload)`` in stream order.

        ``source`` may be an iterable of :class:`StreamItem` (timed), a
        sequence of single wedges, or a stacked ``(N, R, A, H)`` array.
        """

        items = _as_stream(source)
        batches = MicroBatcher(self.config.max_batch, self.config.max_delay_s).batches(items)
        yield from self._serve(batches)

    # ------------------------------------------------------------------
    def run(
        self, source, keep_payloads: bool = True
    ) -> tuple[list[CompressedWedges], ServiceStats]:
        """Serve a whole stream; returns payloads (in order) and stats."""

        return self._collect(self.compress_stream(source), keep_payloads)


class DecompressionService(ModelPoolService):
    """Multi-worker payload decompression — the analysis side of the loop.

    Consumes :class:`CompressedWedges` batches (e.g. loaded from
    :mod:`repro.io` archives), re-chunks them to ``max_batch`` wedges, and
    fans them out to workers calling ``BCAECompressor.decompress_into``
    (the compiled :class:`~repro.core.fast_decode.FastDecoder2D` path where
    the model supports it).  Reconstructions are owned float32 arrays
    ``(B, R, A, H)``, emitted in stream order, bit-identical to serial
    ``decompress`` calls.
    """

    _kind = "decompress"

    def _work(self, compressor: BCAECompressor, item: PayloadItem) -> np.ndarray:
        # Copy out of the worker's reused workspace before hand-off.
        return np.array(compressor.decompress_into(item.compressed))

    # ------------------------------------------------------------------
    def _as_items(
        self, source: Iterable[CompressedWedges] | CompressedWedges
    ) -> Iterator[PayloadItem]:
        if isinstance(source, CompressedWedges):
            source = [source]
        pickled = self.config.backend == "process" and self.config.workers > 0
        seq = 0
        first = 0
        for compressed in source:
            for chunk in split_compressed(compressed, self.config.max_batch):
                if pickled and not isinstance(chunk.payload, bytes):
                    chunk = dataclasses.replace(
                        chunk, payload=bytes(chunk.payload)
                    )
                yield PayloadItem(seq=seq, first_seq=first, compressed=chunk)
                seq += 1
                first += chunk.n_wedges

    def decompress_stream(
        self, source: Iterable[CompressedWedges] | CompressedWedges
    ) -> Iterator[tuple[BatchRecord, np.ndarray]]:
        """Decompress payload batches; yields ``(record, recon)`` in order."""

        yield from self._serve(self._as_items(source))

    # ------------------------------------------------------------------
    def run(
        self, source, keep_recons: bool = True
    ) -> tuple[list[np.ndarray], ServiceStats]:
        """Serve a payload stream; returns reconstructions and stats."""

        return self._collect(self.decompress_stream(source), keep_recons)


# ----------------------------------------------------------------------
# Process-backend plumbing: workers own a resident compressor built once in
# the child (model crosses by fork/pickle at pool start, never per unit).
# ----------------------------------------------------------------------

_PROCESS_COMPRESSOR: BCAECompressor | None = None


def _process_init(model, half: bool) -> None:
    global _PROCESS_COMPRESSOR
    _PROCESS_COMPRESSOR = BCAECompressor(model, half=half)


def _process_work(kind: str, item) -> tuple[BatchRecord, object]:
    compressor = _PROCESS_COMPRESSOR
    assert compressor is not None, "process pool initializer did not run"
    t0 = time.perf_counter()
    if kind == "compress":
        result: object = compressor.compress_into(item.wedges)
    else:
        result = np.array(compressor.decompress_into(item.compressed))
    dt = time.perf_counter() - t0
    record = BatchRecord(
        seq=item.seq,
        first_seq=item.first_seq,
        n_wedges=item.n_wedges,
        compress_s=dt,
        worker=f"p{os.getpid()}",
    )
    return record, result


class _Checkout:
    """Per-stream, per-thread compressor checkout.

    Scoped to one stream: each worker thread gets its own compressor from
    the service's idle pool (or a fresh one if the pool is drained by a
    concurrent stream), and everything returns to the pool when the stream
    finishes.  This keeps the non-thread-safe compressor workspaces
    exclusive without any lock on the hot path.
    """

    def __init__(self, service: ModelPoolService) -> None:
        self._service = service
        self._local = threading.local()
        self._lock = threading.Lock()
        self._taken: list[BCAECompressor] = []

    def get(self) -> tuple[str, BCAECompressor]:
        got = getattr(self._local, "checkout", None)
        if got is None:
            compressor = self._service._acquire()
            with self._lock:
                name = f"w{len(self._taken)}"
                self._taken.append(compressor)
            got = (name, compressor)
            self._local.checkout = got
        return got

    def release(self) -> None:
        with self._lock:
            taken, self._taken = self._taken, []
        self._service._release(taken)


def _as_stream(source) -> Iterator[StreamItem]:
    if isinstance(source, np.ndarray):
        if source.ndim != 4:
            raise ValueError(f"stacked source must be (N, R, A, H), got {source.shape}")
        return iter_wedges(source)
    iterator = iter(source)
    first = next(iterator, None)
    if first is None:
        return iter(())
    chained = itertools.chain([first], iterator)
    if isinstance(first, StreamItem):
        return chained
    return iter_wedges(chained)
