"""The model-pool serving core and its two instantiations.

The ROADMAP's "heavy traffic" loop is bicephalous end to end: the counting
house compresses the wedge stream online, and offline analysis decompresses
it at comparable throughput.  Both directions have the same serving shape —
work units fan out to a pool of workers that each own a resident
:class:`BCAECompressor` (compiled fast-path workspaces are deliberately not
shared: no locks on the hot path), and results are emitted in stream order
through a bounded in-flight window that doubles as backpressure.  That
shared machinery is :class:`ModelPoolService`; the two deployments are

* :class:`StreamingCompressionService` — micro-batches a wedge stream
  (:class:`~repro.serve.batcher.MicroBatcher` under a latency budget) into
  ``BCAECompressor.compress_into`` calls;
* :class:`DecompressionService` — re-chunks archived payload batches
  (:func:`repro.io.codes.split_compressed`) into
  ``BCAECompressor.decompress_into`` calls.

Execution backends, per :class:`ServiceConfig`:

* ``workers=0`` — inline on the caller's thread: no hand-off overhead, the
  right default for CPU-bound NumPy on one core;
* ``backend="thread"`` — a thread pool with per-stream compressor checkout
  (the hand-off machinery a multi-GPU deployment would use; BLAS releases
  the GIL during GEMMs);
* ``backend="process"`` — a process pool that sidesteps the GIL entirely on
  multi-core boxes: each worker process builds its own compressor from the
  (pickled/forked) model.  Per ``ServiceConfig.transport``, payloads cross
  the boundary through a shared-memory slab ring (``"shm"``, the default —
  lease a slab, memcpy in, worker writes the result back into the same
  slab; only descriptors are pickled) or by per-unit pickling
  (``"pickle"``), with graceful per-unit fallback when a payload exceeds
  the slab size.

Every backend also has an asyncio face: :class:`AsyncServingSession`
(``await submit`` / ordered ``async for`` results) under the
``serve_async``/``run_async``/``compress_stream_async`` entry points, fed
by the wall-clock :class:`~repro.serve.batcher.AsyncMicroBatcher`.

Payload/reconstruction bytes are identical to serial single-call
``compress``/``decompress`` in every configuration.  Every model with a
compiled stage plan — the 2D family *and* the 3D BCAE++/HT variants —
serves through the fast ``compress_into``/``decompress_into`` paths and is
eligible for the ≥2× serving gates of ``bench_serving.py`` /
``bench_decode.py``; only unknown stage stacks (the original BCAE's
BatchNorm blocks) degrade to the module graph inside the same services.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import dataclasses
import itertools
import os
import threading
import time
from typing import AsyncIterator, Iterable, Iterator, Sequence

import numpy as np

from ..core.compressor import BCAECompressor, CompressedWedges
from ..core.fast_plan import PRECISIONS
from ..io.codes import split_compressed
from ..perf.timing import LatencySummary, ThroughputResult, summarize_latencies, throughput_from_batches
from .batcher import AsyncMicroBatcher, MicroBatch, MicroBatcher
from .shm import SlabArray, SlabRing, shm_available
from .source import StreamItem, aiter_wedges, iter_wedges

__all__ = [
    "ServiceConfig",
    "BatchRecord",
    "ServiceStats",
    "ModelPoolService",
    "StreamingCompressionService",
    "DecompressionService",
    "ProbeItem",
    "HandoffProbeService",
    "AsyncServingSession",
]

_BACKENDS = ("thread", "process")
_TRANSPORTS = ("shm", "pickle")


@dataclasses.dataclass
class ServiceConfig:
    """Tunables of one service instance.

    Attributes
    ----------
    max_batch:
        Work-unit size cap in wedges (the knee of the Figure-6 batch curve
    	for compression; payload batches are split to this for decode).
    max_delay_s:
        Stream-time accumulation budget (see :class:`MicroBatcher`);
        compression only.
    workers:
        Pool size.  ``0`` runs inline on the caller's thread — the fastest
        configuration for single-core NumPy; ``>= 1`` exercises the real
        hand-off machinery.
    backend:
        ``"thread"`` (default) or ``"process"`` — how ``workers >= 1`` are
        hosted.  The process pool sidesteps the GIL on multi-core boxes at
        the cost of pickling work units and results across the boundary.
    half:
        fp16 inference mode (paper §3.3 deployment default).
    inflight:
        Bound on units submitted but not yet emitted (backpressure).
    transport:
        How process-backend payloads cross the boundary: ``"shm"``
        (default) leases pre-sized shared-memory slabs — work units and
        results move by memcpy, only tiny descriptors are pickled — while
        ``"pickle"`` serializes every unit through the executor pipe.
        Units larger than a slab fall back to pickle per unit.  Ignored by
        the inline/thread backends (no process boundary to cross).
    shm_slab_mb:
        Slab size in MiB for ``transport="shm"``.  One slab serves both
        directions of a unit, so it should fit ``max(input, result)``
        bytes; the ring holds ``inflight`` slabs.
    precision:
        Compilation tier of every pooled compressor: ``"bit"`` (default —
        payload bytes proven identical to the module path) or the opt-in
        ``"ulp"`` serving tier with its recorded stored-grid error bounds
        (see :data:`repro.core.fast_plan.ULP_TIER_MAX_ULP`).
    panel_threads:
        Intra-plan panel executor width for every pooled compressor
        (``None`` → the ``REPRO_PANEL_THREADS`` environment knob).  Output
        bytes are identical at any value; this composes with ``workers``
        (inter-batch) as the intra-batch parallelism axis.

    Example
    -------
    >>> from repro.serve import ServiceConfig
    >>> ServiceConfig(max_batch=16, workers=4, backend="process").transport
    'shm'
    >>> ServiceConfig(max_delay_s=0.002)          # 2 ms latency budget
    ServiceConfig(max_batch=8, max_delay_s=0.002, workers=0, backend='thread', half=True, inflight=8, transport='shm', shm_slab_mb=16.0, precision='bit', panel_threads=None)
    """

    max_batch: int = 8
    max_delay_s: float = 0.0
    workers: int = 0
    backend: str = "thread"
    half: bool = True
    inflight: int = 8
    transport: str = "shm"
    shm_slab_mb: float = 16.0
    precision: str = "bit"
    panel_threads: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if self.inflight < 1:
            raise ValueError(f"inflight must be >= 1, got {self.inflight}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {self.transport!r}"
            )
        if self.shm_slab_mb <= 0:
            raise ValueError(f"shm_slab_mb must be > 0, got {self.shm_slab_mb}")

    @property
    def slab_nbytes(self) -> int:
        return int(self.shm_slab_mb * (1 << 20))


@dataclasses.dataclass
class BatchRecord:
    """Timing record of one served work unit (a compressed/decoded batch)."""

    seq: int
    first_seq: int
    n_wedges: int
    compress_s: float  # time inside the worker's compressor call
    worker: str
    #: How the unit crossed to its worker: "local" (inline/thread), "shm"
    #: (slab lease) or "pickle" (serialized — the pickle transport, or a
    #: unit too large for its slab).
    transport: str = ""
    #: Wall-clock accumulation time of the batch (async ingestion only).
    wait_s: float = 0.0
    #: Why the micro-batch closed ("full"/"budget"/"eof"; empty for units
    #: that never passed through a batcher, e.g. decode chunks).
    closed_by: str = ""


@dataclasses.dataclass
class ServiceStats:
    """Aggregate outcome of one served stream."""

    n_wedges: int
    n_batches: int
    elapsed_s: float
    half: bool
    max_batch: int
    workers: int
    records: list[BatchRecord] = dataclasses.field(default_factory=list)

    @property
    def wedges_per_second(self) -> float:
        """End-to-end service throughput (includes batching + hand-off)."""

        return self.n_wedges / max(self.elapsed_s, 1e-12)

    @property
    def mean_batch_s(self) -> float:
        return float(np.mean([r.compress_s for r in self.records])) if self.records else 0.0

    @property
    def p99_batch_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.quantile([r.compress_s for r in self.records], 0.99))

    @property
    def mean_batch_size(self) -> float:
        return self.n_wedges / max(self.n_batches, 1)

    def batch_latency(self) -> LatencySummary:
        """Percentile summary of per-**batch** service time: wall-clock
        accumulation wait plus the worker's compute, one sample per served
        micro-batch (not per wedge)."""

        return summarize_latencies(
            [r.compress_s + r.wait_s for r in self.records]
        )

    def to_throughput_result(self) -> ThroughputResult:
        """This run in the currency of :mod:`repro.perf` microbenchmarks."""

        return throughput_from_batches(
            [r.n_wedges for r in self.records],
            [r.compress_s for r in self.records],
            self.elapsed_s,
            half=self.half,
        )

    def row(self) -> str:
        """One-line summary for logs and benches."""

        return (
            f"wedges={self.n_wedges} batches={self.n_batches} "
            f"(mean size {self.mean_batch_size:.1f}) "
            f"throughput={self.wedges_per_second:8.1f} w/s "
            f"batch(mean/p99)={self.mean_batch_s * 1e3:6.2f}/{self.p99_batch_s * 1e3:6.2f} ms "
            f"workers={self.workers}"
        )


@dataclasses.dataclass
class PayloadItem:
    """One decompression work unit: a payload batch with stream bookkeeping."""

    seq: int
    first_seq: int
    compressed: CompressedWedges

    @property
    def n_wedges(self) -> int:
        return self.compressed.n_wedges


class ModelPoolService:
    """Shared serving core: compressor pool → ordered fan-out → stats.

    Subclasses define one unit of work (:meth:`_work`, and its module-level
    twin for the process backend via :attr:`_kind`); everything else —
    compressor pooling/checkout, inline / thread / process execution, the
    bounded in-flight ordered emission, and stats assembly — lives here, so
    compression and decompression are two instantiations of one engine.

    Constructing a service calls ``model.eval()`` — a deliberate, *lasting*
    side effect on the caller's model: serving is inference, and BatchNorm
    must run from running statistics both for batch-composition-free bytes
    and to compile onto the stage-plan fast path.  A caller that resumes
    training the same object afterwards must call ``model.train()`` again.
    """

    #: Work dispatch tag for the process backend ("compress"/"decompress").
    _kind = ""

    def __init__(self, model, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        # Serving is inference by definition: normalization layers must run
        # from their running statistics, both for batch-composition-free
        # payload bytes and so BatchNorm models (the original BCAE) compile
        # onto the stage-plan fast path instead of the module graph.
        if hasattr(model, "eval"):
            model.eval()
        self.model = model
        # Warm compressors are pooled on the instance so back-to-back
        # streams reuse their compiled workspaces; checkouts are per-stream
        # (see _Checkout), so concurrent streams on one service never share
        # a compressor's non-thread-safe scratch.  Process-backend workers
        # own compressors in their own processes instead.
        self._pool_lock = threading.Lock()
        prewarm = 1 if self.config.backend == "process" else max(1, self.config.workers)
        self._idle: list[BCAECompressor] = [
            self._build_compressor() for _ in range(prewarm)
        ]
        #: Debug counters of the last process-backend stream's transport
        #: (shm ring name, slab stats, fallback counts) — see
        #: :meth:`_ProcessTransport.close`.  Tests use this to assert the
        #: lease/release protocol leaks nothing.
        self.last_shm: dict = {}

    # ------------------------------------------------------------------
    def _build_compressor(self) -> BCAECompressor:
        cfg = self.config
        return BCAECompressor(self.model, half=cfg.half,
                              precision=cfg.precision,
                              panel_threads=cfg.panel_threads)

    def _acquire(self) -> BCAECompressor:
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
        return self._build_compressor()

    def _release(self, compressors: list[BCAECompressor]) -> None:
        with self._pool_lock:
            self._idle.extend(compressors)

    # ------------------------------------------------------------------
    def _work(self, compressor: BCAECompressor, item):
        """One unit of work on a checked-out compressor (subclass hook)."""

        raise NotImplementedError

    def _execute(self, checkout: "_Checkout", item):
        name, compressor = checkout.get()
        t0 = time.perf_counter()
        result = self._work(compressor, item)
        dt = time.perf_counter() - t0
        record = BatchRecord(
            seq=item.seq,
            first_seq=item.first_seq,
            n_wedges=item.n_wedges,
            compress_s=dt,
            worker=name,
            transport="local",
            wait_s=getattr(item, "wait_s", 0.0),
            closed_by=getattr(item, "closed_by", ""),
        )
        return record, result

    # ------------------------------------------------------------------
    def _serve(self, items) -> Iterator[tuple[BatchRecord, object]]:
        """Run work units through the configured backend, in stream order."""

        cfg = self.config
        if cfg.workers == 0:
            checkout = _Checkout(self)
            try:
                for item in items:
                    yield self._execute(checkout, item)
            finally:
                checkout.release()
            return

        if cfg.backend == "process":
            transport = _ProcessTransport(self)
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    cfg.workers,
                    initializer=_process_init,
                    initargs=transport.initargs(),
                ) as pool:
                    yield from self._drain_ordered(
                        pool, items, transport.submit,
                        finalize=transport.finalize, fail=transport.fail,
                    )
            finally:
                transport.close()
            return

        checkout = _Checkout(self)
        try:
            with concurrent.futures.ThreadPoolExecutor(cfg.workers) as pool:
                yield from self._drain_ordered(
                    pool, items, lambda p, it: p.submit(self._execute, checkout, it)
                )
        finally:
            checkout.release()

    def _drain_ordered(self, pool, items, submit, finalize=None, fail=None):
        """Bounded in-flight window: emission order == submission order ==
        stream order, and the bound is backpressure.

        ``finalize``/``fail`` are the transport's result hooks: materialize
        a descriptor into an owned object and release the unit's slab (also
        on worker exception, so a failed unit never strands its slab).
        """

        window: collections.deque = collections.deque()
        for item in items:
            window.append(submit(pool, item))
            while len(window) >= self.config.inflight:
                yield self._pop(window, finalize, fail)
        while window:
            yield self._pop(window, finalize, fail)

    def _pop(self, window, finalize, fail):
        future = window.popleft()
        try:
            record, result = future.result()
        except BaseException:
            if fail is not None:
                fail(future)
            raise
        if finalize is not None:
            record, result = finalize(future, record, result)
        return record, result

    # ------------------------------------------------------------------
    def _collect(self, stream, keep: bool) -> tuple[list, ServiceStats]:
        """Drain a served stream into (results, stats)."""

        results: list = []
        records: list[BatchRecord] = []
        n_wedges = 0
        t0 = time.perf_counter()
        for record, result in stream:
            records.append(record)
            n_wedges += record.n_wedges
            if keep:
                results.append(result)
        return results, self._stats(records, n_wedges, time.perf_counter() - t0)

    def _stats(self, records, n_wedges: int, elapsed_s: float) -> ServiceStats:
        """One ServiceStats assembly shared by the sync and async drains."""

        cfg = self.config
        return ServiceStats(
            n_wedges=n_wedges,
            n_batches=len(records),
            elapsed_s=elapsed_s,
            half=cfg.half,
            max_batch=cfg.max_batch,
            workers=cfg.workers,
            records=records,
        )

    # ------------------------------------------------------------------
    # async façade
    # ------------------------------------------------------------------
    def session(self) -> "AsyncServingSession":
        """Open an async session on this service (must run inside a loop).

        The session is the raw façade — ``await session.submit(unit)``
        returns the unit's future, ``async for`` over
        :meth:`AsyncServingSession.results` emits in order.  Most callers
        want :meth:`serve_async` / ``run_async`` instead.
        """

        return AsyncServingSession(self)

    async def serve_async(self, items) -> AsyncIterator[tuple[BatchRecord, object]]:
        """Serve an async iterable of work units; ordered async emission.

        The asyncio twin of :meth:`_serve`: same backends, same bounded
        in-flight window, same stream-order emission — but submission and
        emission interleave on the event loop, so an async source keeps
        producing while workers compute.  Closing the generator early
        drains in-flight units cleanly (no orphaned work, no leaked slabs).
        """

        session = self.session()
        try:
            async for item in _ensure_async(items):
                while session.pending >= self.config.inflight:
                    yield await session.next_result()
                await session.submit(item)
            while session.pending:
                yield await session.next_result()
        finally:
            await session.aclose()

    async def _collect_async(self, stream, keep: bool) -> tuple[list, ServiceStats]:
        """Drain an async served stream into (results, stats)."""

        results: list = []
        records: list[BatchRecord] = []
        n_wedges = 0
        t0 = time.perf_counter()
        async for record, result in stream:
            records.append(record)
            n_wedges += record.n_wedges
            if keep:
                results.append(result)
        return results, self._stats(records, n_wedges, time.perf_counter() - t0)


class StreamingCompressionService(ModelPoolService):
    """Micro-batching, multi-worker wedge compression.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder`; each worker compiles its own
        compressor (and fast-path workspaces) against it.  The service
        puts the model in eval mode — serving is inference.
    config:
        :class:`ServiceConfig`; defaults are single-core friendly.

    Example
    -------
    >>> from repro.core import build_model
    >>> from repro.serve import ServiceConfig, StreamingCompressionService
    >>> model = build_model("bcae_2d", wedge_spatial=(16, 24, 32), seed=0)
    >>> service = StreamingCompressionService(model, ServiceConfig(max_batch=8))
    >>> payloads, stats = service.run(wedges)      # wedges: iterable of (R, A, H)
    >>> stats.wedges_per_second                    # doctest: +SKIP
    812.4
    """

    _kind = "compress"

    def _work(self, compressor: BCAECompressor, batch: MicroBatch) -> CompressedWedges:
        # compress_into without `out` returns owned payload bytes — safe to
        # hand across threads while the worker reuses its workspaces.
        return compressor.compress_into(batch.wedges)

    # ------------------------------------------------------------------
    def compress_stream(
        self, source: Iterable[StreamItem] | Sequence[np.ndarray] | np.ndarray
    ) -> Iterator[tuple[BatchRecord, CompressedWedges]]:
        """Compress a stream; yields ``(record, payload)`` in stream order.

        ``source`` may be an iterable of :class:`StreamItem` (timed), a
        sequence of single wedges, or a stacked ``(N, R, A, H)`` array.
        """

        items = _as_stream(source)
        batches = MicroBatcher(self.config.max_batch, self.config.max_delay_s).batches(items)
        yield from self._serve(batches)

    # ------------------------------------------------------------------
    def run(
        self, source, keep_payloads: bool = True
    ) -> tuple[list[CompressedWedges], ServiceStats]:
        """Serve a whole stream; returns payloads (in order) and stats."""

        return self._collect(self.compress_stream(source), keep_payloads)

    # ------------------------------------------------------------------
    def compress_stream_async(
        self, source
    ) -> AsyncIterator[tuple[BatchRecord, CompressedWedges]]:
        """Async ingestion: wedges → wall-clock micro-batches → payloads.

        ``source`` may be any async iterable of wedges/:class:`StreamItem`
        (e.g. an :class:`~repro.serve.source.AsyncQueueSource` or
        :class:`~repro.serve.source.AsyncSocketSource`) or any source
        :meth:`compress_stream` accepts.  Batches close on ``max_batch`` or
        when ``config.max_delay_s`` of *wall-clock* time (monotonic, not
        replayed stream time) elapses since the batch's first wedge
        arrived; ``(record, payload)`` pairs emit in arrival order through
        the bounded in-flight window.

        Example
        -------
        >>> async def pump(service, source):
        ...     async for record, payload in service.compress_stream_async(source):
        ...         archive.append(payload)            # doctest: +SKIP
        """

        batcher = AsyncMicroBatcher(self.config.max_batch, self.config.max_delay_s)
        return self.serve_async(batcher.batches(aiter_wedges(source)))

    async def run_async(
        self, source, keep_payloads: bool = True
    ) -> tuple[list[CompressedWedges], ServiceStats]:
        """Serve a whole async stream; returns payloads (in order) and stats."""

        return await self._collect_async(
            self.compress_stream_async(source), keep_payloads
        )


class DecompressionService(ModelPoolService):
    """Multi-worker payload decompression — the analysis side of the loop.

    Consumes :class:`CompressedWedges` batches (e.g. loaded from
    :mod:`repro.io` archives), re-chunks them to ``max_batch`` wedges, and
    fans them out to workers calling ``BCAECompressor.decompress_into``
    (the compiled :class:`~repro.core.fast_decode.FastDecoder2D` path where
    the model supports it).  Reconstructions are owned float32 arrays
    ``(B, R, A, H)``, emitted in stream order, bit-identical to serial
    ``decompress`` calls.

    Example
    -------
    >>> from repro.io import load_compressed
    >>> from repro.serve import DecompressionService, ServiceConfig
    >>> compressed, name = load_compressed("codes.npz")   # doctest: +SKIP
    >>> service = DecompressionService(model, ServiceConfig(max_batch=8))
    >>> recons, stats = service.run([compressed])         # doctest: +SKIP
    """

    _kind = "decompress"

    def _work(self, compressor: BCAECompressor, item: PayloadItem) -> np.ndarray:
        # Copy out of the worker's reused workspace before hand-off.
        return np.array(compressor.decompress_into(item.compressed))

    # ------------------------------------------------------------------
    def _as_items(
        self, source: Iterable[CompressedWedges] | CompressedWedges
    ) -> Iterator[PayloadItem]:
        if isinstance(source, CompressedWedges):
            source = [source]
        # Only the pickle transport needs owned bytes up front; the shm
        # path memcpys straight from the memoryview (its oversize fallback
        # converts per unit via _picklable).
        pickled = (
            self.config.backend == "process"
            and self.config.workers > 0
            and self.config.transport == "pickle"
        )
        seq = 0
        first = 0
        for compressed in source:
            for chunk in split_compressed(compressed, self.config.max_batch):
                if pickled and not isinstance(chunk.payload, bytes):
                    chunk = dataclasses.replace(
                        chunk, payload=bytes(chunk.payload)
                    )
                yield PayloadItem(seq=seq, first_seq=first, compressed=chunk)
                seq += 1
                first += chunk.n_wedges

    def decompress_stream(
        self, source: Iterable[CompressedWedges] | CompressedWedges
    ) -> Iterator[tuple[BatchRecord, np.ndarray]]:
        """Decompress payload batches; yields ``(record, recon)`` in order."""

        yield from self._serve(self._as_items(source))

    # ------------------------------------------------------------------
    def run(
        self, source, keep_recons: bool = True
    ) -> tuple[list[np.ndarray], ServiceStats]:
        """Serve a payload stream; returns reconstructions and stats."""

        return self._collect(self.decompress_stream(source), keep_recons)

    # ------------------------------------------------------------------
    def decompress_stream_async(
        self, source
    ) -> AsyncIterator[tuple[BatchRecord, np.ndarray]]:
        """Async twin of :meth:`decompress_stream` (same re-chunking)."""

        return self.serve_async(self._as_items(source))

    async def run_async(
        self, source, keep_recons: bool = True
    ) -> tuple[list[np.ndarray], ServiceStats]:
        """Serve a payload stream asynchronously; recons and stats."""

        return await self._collect_async(
            self.decompress_stream_async(source), keep_recons
        )


# ----------------------------------------------------------------------
# Probe workload: the hand-off measured in isolation.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ProbeItem:
    """One transport-probe work unit: an array to ship, touch, and ack.

    ``poison=True`` makes the worker raise instead — the fault-injection
    hook the serving tests use to exercise error containment without
    corrupting real model state.
    """

    seq: int
    first_seq: int
    payload: np.ndarray
    poison: bool = False

    @property
    def n_wedges(self) -> int:
        return int(self.payload.shape[0]) if self.payload.ndim else 1


def _probe_work(payload: np.ndarray, poison: bool):
    if poison:
        raise RuntimeError("injected worker fault (poisoned probe unit)")
    # Touch every input byte — a real worker reads its whole unit — and
    # return a checksum small enough that the ack cost is the floor.
    return float(np.asarray(payload).sum(dtype=np.float64))


class HandoffProbeService(ModelPoolService):
    """The serving engine with the model call replaced by a checksum.

    Same batching, pooling, ordering, and transport machinery as the real
    services — but each unit's "work" is reading the payload and returning
    a float.  This isolates the process-boundary hand-off, which is what
    ``bench_serving.py`` gates shm against pickle on, and gives the fault
    tests a worker that fails on command (``ProbeItem.poison``).
    """

    _kind = "probe"

    def __init__(self, config: ServiceConfig | None = None) -> None:
        super().__init__(model=None, config=config)

    def _work(self, compressor: BCAECompressor, item: ProbeItem):
        return _probe_work(item.payload, item.poison)

    @staticmethod
    def items(arrays: Sequence[np.ndarray], poison_seqs: Sequence[int] = ()) -> list[ProbeItem]:
        """Wrap arrays as probe units (optionally poisoning some seqs)."""

        items, first = [], 0
        for seq, a in enumerate(arrays):
            a = np.asarray(a)
            items.append(ProbeItem(seq=seq, first_seq=first, payload=a,
                                   poison=seq in set(poison_seqs)))
            first += int(a.shape[0]) if a.ndim else 1
        return items

    def run(self, arrays, keep_results: bool = False):
        """Serve arrays (or prebuilt :class:`ProbeItem` units)."""

        items = [a for a in arrays]
        if items and not isinstance(items[0], ProbeItem):
            items = self.items(items)
        return self._collect(self._serve(iter(items)), keep_results)


# ----------------------------------------------------------------------
# Process-backend plumbing: workers own a resident compressor built once in
# the child (model crosses by fork/pickle at pool start, never per unit) and,
# under transport="shm", a mapped view of the parent's slab ring.
# ----------------------------------------------------------------------

_PROCESS_COMPRESSOR: BCAECompressor | None = None
_PROCESS_RING: SlabRing | None = None


def _process_init(model, half: bool, ring_spec=None, precision: str = "bit",
                  panel_threads: int | None = None) -> None:
    global _PROCESS_COMPRESSOR, _PROCESS_RING
    _PROCESS_COMPRESSOR = BCAECompressor(model, half=half, precision=precision,
                                         panel_threads=panel_threads)
    _PROCESS_RING = SlabRing.attach(ring_spec) if ring_spec is not None else None


def _record(item_or_work, dt: float) -> BatchRecord:
    return BatchRecord(
        seq=item_or_work.seq,
        first_seq=item_or_work.first_seq,
        n_wedges=item_or_work.n_wedges,
        compress_s=dt,
        worker=f"p{os.getpid()}",
        wait_s=getattr(item_or_work, "wait_s", 0.0),
        closed_by=getattr(item_or_work, "closed_by", ""),
    )


def _process_work(kind: str, item) -> tuple[BatchRecord, object]:
    """Pickle-transport worker: the whole unit crossed by value."""

    compressor = _PROCESS_COMPRESSOR
    assert compressor is not None, "process pool initializer did not run"
    t0 = time.perf_counter()
    if kind == "compress":
        result: object = compressor.compress_into(item.wedges)
    elif kind == "decompress":
        result = np.array(compressor.decompress_into(item.compressed))
    else:
        result = _probe_work(item.payload, item.poison)
    return _record(item, time.perf_counter() - t0), result


@dataclasses.dataclass
class _ShmWork:
    """Slab-transport work descriptor — the only thing pickled per unit."""

    kind: str
    seq: int
    first_seq: int
    n_wedges: int
    array: SlabArray          # the unit's input payload, in its slab
    meta: tuple = ()          # kind-specific extras (see _ProcessTransport)
    wait_s: float = 0.0
    closed_by: str = ""


@dataclasses.dataclass(frozen=True)
class _SlabPayload:
    """Result descriptor: a CompressedWedges whose bytes live in the slab."""

    slab: int
    nbytes: int
    code_shape: tuple[int, ...]
    n_wedges: int
    original_horizontal: int
    half: bool | None
    code_dtype: str


@dataclasses.dataclass(frozen=True)
class _SlabFallback:
    """A result that did not fit its slab and crossed by value instead."""

    value: object


def _process_work_shm(work: _ShmWork) -> tuple[BatchRecord, object]:
    """Slab-transport worker: payloads move by memcpy, never by pickle.

    The input is read in place from the unit's slab; the result is written
    back into the *same* slab (the input has been consumed by then), so one
    lease covers the unit's whole round trip.  Results larger than the slab
    cross by value, wrapped in :class:`_SlabFallback`.
    """

    compressor = _PROCESS_COMPRESSOR
    ring = _PROCESS_RING
    assert compressor is not None and ring is not None, "shm pool init did not run"
    t0 = time.perf_counter()
    result: object
    if work.kind == "compress":
        wedges = ring.read_array(work.array, copy=False)
        code_shape = compressor.code_shape_for(wedges.shape[1:])
        code_nbytes = wedges.shape[0] * int(np.prod(code_shape)) * 2
        if code_nbytes <= ring.slab_nbytes:
            # Zero-copy result: compress_into writes the fp16 codes
            # straight into the slab (over the consumed input).
            out = ring.view(work.array.slab)
            compressed = compressor.compress_into(wedges, out=out)
            result = _SlabPayload(
                slab=work.array.slab,
                nbytes=compressed.nbytes,
                code_shape=tuple(compressed.code_shape),
                n_wedges=compressed.n_wedges,
                original_horizontal=compressed.original_horizontal,
                half=compressed.half,
                code_dtype=compressed.code_dtype,
            )
        else:
            compressed = compressor.compress_into(wedges)
            result = _SlabFallback(dataclasses.replace(
                compressed, payload=bytes(compressed.payload)
            ))
    elif work.kind == "decompress":
        code_shape, n_payload, horizontal, half, code_dtype = work.meta
        compressed = CompressedWedges(
            payload=ring.view(work.array.slab, work.array.nbytes),
            code_shape=code_shape,
            n_wedges=n_payload,
            original_horizontal=horizontal,
            half=half,
            code_dtype=code_dtype,
        )
        recon = compressor.decompress_into(compressed)
        if recon.nbytes <= ring.slab_nbytes:
            result = ring.write_array(work.array.slab, recon)
        else:
            result = _SlabFallback(np.array(recon))
    else:
        (poison,) = work.meta
        result = _probe_work(ring.read_array(work.array, copy=False), poison)
    return _record(work, time.perf_counter() - t0), result


class _ProcessTransport:
    """Per-stream hand-off policy for the process backend.

    Owns the slab ring (``transport="shm"``), decides shm-vs-pickle per
    unit (graceful fallback when a payload exceeds the slab), materializes
    result descriptors, and guarantees every leased slab is released — on
    success, on worker exception, and (via :meth:`close`) when the stream
    is abandoned.  One instance per served stream; :meth:`close` publishes
    debug counters to ``service.last_shm`` and unlinks the segment.
    """

    def __init__(self, service: ModelPoolService) -> None:
        cfg = service.config
        self._service = service
        self._kind = service._kind
        self.ring: SlabRing | None = None
        self.input_fallbacks = 0
        self.result_fallbacks = 0
        if cfg.transport == "shm" and cfg.workers > 0 and shm_available():
            self.ring = SlabRing.create(cfg.inflight, cfg.slab_nbytes)

    def initargs(self) -> tuple:
        cfg = self._service.config
        spec = self.ring.spec() if self.ring is not None else None
        return (self._service.model, cfg.half, spec, cfg.precision,
                cfg.panel_threads)

    # -- per-kind payload plumbing --------------------------------------
    def _unit_array(self, item) -> np.ndarray:
        if self._kind == "compress":
            return item.wedges
        if self._kind == "decompress":
            return np.frombuffer(item.compressed.payload, dtype=np.uint8)
        return np.asarray(item.payload)

    def _unit_meta(self, item) -> tuple:
        if self._kind == "decompress":
            c = item.compressed
            return (tuple(c.code_shape), c.n_wedges, c.original_horizontal,
                    c.half, c.code_dtype)
        if self._kind == "probe":
            return (item.poison,)
        return ()

    # -- submit/finalize hooks ------------------------------------------
    def submit(self, pool, item):
        ring = self.ring
        if ring is not None:
            array = self._unit_array(item)
            slab = ring.try_lease() if array.nbytes <= ring.slab_nbytes else None
            if slab is not None:
                work = _ShmWork(
                    kind=self._kind,
                    seq=item.seq,
                    first_seq=item.first_seq,
                    n_wedges=item.n_wedges,
                    array=ring.write_array(slab, array),
                    meta=self._unit_meta(item),
                    wait_s=getattr(item, "wait_s", 0.0),
                    closed_by=getattr(item, "closed_by", ""),
                )
                future = pool.submit(_process_work_shm, work)
                future._slab = slab
                return future
            self.input_fallbacks += 1
        future = pool.submit(_process_work, self._kind, _picklable(item))
        future._slab = None
        return future

    def finalize(self, future, record: BatchRecord, result):
        slab = getattr(future, "_slab", None)
        try:
            if isinstance(result, _SlabPayload):
                result = CompressedWedges(
                    payload=self.ring.read_bytes(result.slab, result.nbytes),
                    code_shape=result.code_shape,
                    n_wedges=result.n_wedges,
                    original_horizontal=result.original_horizontal,
                    half=result.half,
                    code_dtype=result.code_dtype,
                )
            elif isinstance(result, SlabArray):
                result = self.ring.read_array(result, copy=True)
            elif isinstance(result, _SlabFallback):
                self.result_fallbacks += 1
                result = result.value
            record.transport = "shm" if slab is not None else "pickle"
        finally:
            if slab is not None:
                self.ring.release(slab)
        return record, result

    def fail(self, future) -> None:
        """Release a failed unit's slab (the worker raised)."""

        slab = getattr(future, "_slab", None)
        if slab is not None and self.ring is not None:
            self.ring.release(slab)

    def close(self) -> None:
        """Publish debug stats and destroy the segment (idempotent)."""

        stats = {
            "transport": "shm" if self.ring is not None else "pickle",
            "input_fallbacks": self.input_fallbacks,
            "result_fallbacks": self.result_fallbacks,
        }
        if self.ring is not None:
            stats.update(
                name=self.ring.spec().name,
                n_slabs=self.ring.n_slabs,
                slab_nbytes=self.ring.slab_nbytes,
                leased_at_close=self.ring.leased,
            )
            self.ring.destroy()
        self._service.last_shm = stats


def _picklable(item):
    """Ensure a fallback unit survives pickling (memoryview payloads)."""

    compressed = getattr(item, "compressed", None)
    if compressed is not None and not isinstance(compressed.payload, bytes):
        return dataclasses.replace(
            item, compressed=dataclasses.replace(
                compressed, payload=bytes(compressed.payload)
            )
        )
    return item


class _Checkout:
    """Per-stream, per-thread compressor checkout.

    Scoped to one stream: each worker thread gets its own compressor from
    the service's idle pool (or a fresh one if the pool is drained by a
    concurrent stream), and everything returns to the pool when the stream
    finishes.  This keeps the non-thread-safe compressor workspaces
    exclusive without any lock on the hot path.
    """

    def __init__(self, service: ModelPoolService) -> None:
        self._service = service
        self._local = threading.local()
        self._lock = threading.Lock()
        self._taken: list[BCAECompressor] = []

    def get(self) -> tuple[str, BCAECompressor]:
        got = getattr(self._local, "checkout", None)
        if got is None:
            compressor = self._service._acquire()
            with self._lock:
                name = f"w{len(self._taken)}"
                self._taken.append(compressor)
            got = (name, compressor)
            self._local.checkout = got
        return got

    def release(self) -> None:
        with self._lock:
            taken, self._taken = self._taken, []
        self._service._release(taken)


class AsyncServingSession:
    """Async façade over one :class:`ModelPoolService` stream.

    Opens the configured backend once (private single-thread executor for
    ``workers=0`` so inline work never blocks the event loop, thread pool,
    or process pool with the shm/pickle transport), then:

    * ``await submit(unit)`` — hands one work unit to the backend and
      returns its :class:`asyncio.Future`.  Backpressure: when
      ``config.inflight`` units are submitted but not yet emitted, submit
      awaits until the consumer pops a result.
    * ``await next_result()`` / ``async for ... in results()`` — ordered
      emission: units come back in submission order regardless of which
      worker finished first.
    * ``await aclose()`` — drains every in-flight unit (nothing is
      orphaned; failed units release their slabs), shuts the backend down,
      and destroys the slab ring.  Also an async context manager.

    A worker exception surfaces on the owning unit's future (and from
    ``next_result`` at that unit's position); other units and later
    streams are unaffected.

    Example
    -------
    >>> async with service.session() as session:         # doctest: +SKIP
    ...     fut = await session.submit(unit)
    ...     async for result in session.results():
    ...         consume(result)
    """

    def __init__(self, service: ModelPoolService) -> None:
        cfg = service.config
        self._service = service
        self._loop = asyncio.get_running_loop()
        self._window: collections.deque = collections.deque()
        self._emitted = asyncio.Event()
        self._closed = False
        self._transport: _ProcessTransport | None = None
        self._checkout: _Checkout | None = None
        if cfg.workers > 0 and cfg.backend == "process":
            self._transport = _ProcessTransport(service)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                cfg.workers,
                initializer=_process_init,
                initargs=self._transport.initargs(),
            )
        else:
            self._checkout = _Checkout(service)
            self._pool = concurrent.futures.ThreadPoolExecutor(max(1, cfg.workers))

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Units submitted but not yet emitted."""

        return len(self._window)

    @property
    def closed(self) -> bool:
        return self._closed

    async def submit(self, item) -> asyncio.Future:
        """Submit one work unit; returns the unit's future.

        The future completes when the unit's worker finishes, and a worker
        exception surfaces as the future's exception — that is its primary
        contract.  Its *value* is the materialized result only for the
        inline/thread backends; under the process backend it may be an
        internal transport descriptor (the slab is materialized and
        released by the ordered emission path), so consume results through
        :meth:`next_result`/:meth:`results`, not from this future.
        """

        if self._closed:
            raise RuntimeError("session is closed")
        while len(self._window) >= self._service.config.inflight:
            self._emitted.clear()
            await self._emitted.wait()
        if self._transport is not None:
            cf = self._transport.submit(self._pool, item)
        else:
            cf = self._pool.submit(self._service._execute, self._checkout, item)
        future = asyncio.wrap_future(cf, loop=self._loop)
        future._cf = cf
        self._window.append(future)
        return future

    async def next_result(self) -> tuple[BatchRecord, object]:
        """Await and emit the oldest in-flight unit (submission order)."""

        if not self._window:
            raise RuntimeError("no in-flight units")
        future = self._window.popleft()
        try:
            return await self._finish(future)
        finally:
            self._emitted.set()

    async def results(self) -> AsyncIterator[tuple[BatchRecord, object]]:
        """Ordered async iteration over everything currently in flight."""

        while self._window:
            yield await self.next_result()

    async def _finish(self, future) -> tuple[BatchRecord, object]:
        cf = getattr(future, "_cf", future)
        try:
            record, result = await future
        except BaseException:
            # Release the slab only when the worker is actually done with
            # it (worker exception).  If *this await* was cancelled while
            # the worker still runs, the slab stays leased — it is
            # reclaimed when the ring is destroyed at close, and must not
            # be handed to another unit mid-write.
            if self._transport is not None and cf.done():
                self._transport.fail(cf)
            raise
        if self._transport is not None:
            record, result = self._transport.finalize(cf, record, result)
        return record, result

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Drain in-flight units, release all slabs, shut the backend down.

        Robust to being called from a *cancelled* task (the common early-
        close path): draining may be cut short by the pending
        ``CancelledError``, but the backend shutdown below is synchronous —
        it waits out whatever is still executing — so no unit is ever
        orphaned and the slab ring is always destroyed.  The cancellation
        is re-raised after cleanup.
        """

        if self._closed:
            return
        self._closed = True
        cancelled: BaseException | None = None
        try:
            while self._window:
                try:
                    await self.next_result()
                except asyncio.CancelledError:
                    raise
                except Exception:
                    pass  # drained; the error already surfaced on its future
        except asyncio.CancelledError as exc:
            cancelled = exc
        finally:
            try:
                # Wait out in-flight workers off the event loop so
                # co-scheduled tasks keep running during long compute; if
                # even that wait is cancelled, fall back to blocking —
                # the no-orphaned-work guarantee outranks loop liveness.
                try:
                    await asyncio.get_running_loop().run_in_executor(
                        None, lambda: self._pool.shutdown(wait=True)
                    )
                except asyncio.CancelledError as exc:
                    cancelled = exc
                    self._pool.shutdown(wait=True)
            finally:
                if self._transport is not None:
                    self._transport.close()
                if self._checkout is not None:
                    self._checkout.release()
        if cancelled is not None:
            raise cancelled

    async def __aenter__(self) -> "AsyncServingSession":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()


async def _ensure_async(items):
    """Lift a sync iterable of work units into an async one."""

    if hasattr(items, "__aiter__"):
        async for item in items:
            yield item
        return
    for item in items:
        yield item


def _as_stream(source) -> Iterator[StreamItem]:
    if isinstance(source, np.ndarray):
        if source.ndim != 4:
            raise ValueError(f"stacked source must be (N, R, A, H), got {source.shape}")
        return iter_wedges(source)
    iterator = iter(source)
    first = next(iterator, None)
    if first is None:
        return iter(())
    chained = itertools.chain([first], iterator)
    if isinstance(first, StreamItem):
        return chained
    return iter_wedges(chained)
