"""The model-pool serving core and its two instantiations.

The ROADMAP's "heavy traffic" loop is bicephalous end to end: the counting
house compresses the wedge stream online, and offline analysis decompresses
it at comparable throughput.  Both directions have the same serving shape —
work units fan out to a pool of workers that each own a resident
:class:`BCAECompressor` (compiled fast-path workspaces are deliberately not
shared: no locks on the hot path), and results are emitted in stream order
through a bounded in-flight window that doubles as backpressure.  That
shared machinery is :class:`ModelPoolService`; the two deployments are

* :class:`StreamingCompressionService` — micro-batches a wedge stream
  (:class:`~repro.serve.batcher.MicroBatcher` under a latency budget) into
  ``BCAECompressor.compress_into`` calls;
* :class:`DecompressionService` — re-chunks archived payload batches
  (:func:`repro.io.codes.split_compressed`) into
  ``BCAECompressor.decompress_into`` calls.

Execution backends, per :class:`ServiceConfig`:

* ``workers=0`` — inline on the caller's thread: no hand-off overhead, the
  right default for CPU-bound NumPy on one core;
* ``backend="thread"`` — a thread pool with per-stream compressor checkout
  (the hand-off machinery a multi-GPU deployment would use; BLAS releases
  the GIL during GEMMs);
* ``backend="process"`` — a process pool that sidesteps the GIL entirely on
  multi-core boxes: each worker process builds its own compressor from the
  (pickled/forked) model.  Per ``ServiceConfig.transport``, payloads cross
  the boundary through a shared-memory slab ring (``"shm"``, the default —
  lease a slab, memcpy in, worker writes the result back into the same
  slab; only descriptors are pickled) or by per-unit pickling
  (``"pickle"``), with graceful per-unit fallback when a payload exceeds
  the slab size.

Every backend also has an asyncio face: :class:`AsyncServingSession`
(``await submit`` / ordered ``async for`` results) under the
``serve_async``/``run_async``/``compress_stream_async`` entry points, fed
by the wall-clock :class:`~repro.serve.batcher.AsyncMicroBatcher`.

Payload/reconstruction bytes are identical to serial single-call
``compress``/``decompress`` in every configuration.  Every model with a
compiled stage plan — the 2D family *and* the 3D BCAE++/HT variants —
serves through the fast ``compress_into``/``decompress_into`` paths and is
eligible for the ≥2× serving gates of ``bench_serving.py`` /
``bench_decode.py``; only unknown stage stacks (the original BCAE's
BatchNorm blocks) degrade to the module graph inside the same services.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import dataclasses
import itertools
import logging
import os
import random
import signal
import threading
import time
from typing import AsyncIterator, Iterable, Iterator, Sequence

import numpy as np

from ..core.compressor import BCAECompressor, CompressedWedges
from ..core.fast_plan import PRECISIONS
from ..io.codes import split_compressed
from ..perf.timing import FaultCounters, LatencySummary, ThroughputResult, summarize_latencies, throughput_from_batches
from .batcher import AsyncMicroBatcher, MicroBatch, MicroBatcher
from .shm import SlabArray, SlabRing, shm_available
from .source import StreamItem, aiter_wedges, iter_wedges

__all__ = [
    "ServiceConfig",
    "BatchRecord",
    "ServiceStats",
    "ServiceHealth",
    "ServingFaultError",
    "WorkerCrashError",
    "UnitTimeoutError",
    "ModelPoolService",
    "StreamingCompressionService",
    "DecompressionService",
    "ProbeItem",
    "HandoffProbeService",
    "AsyncServingSession",
    "start_health_server",
]

_LOG = logging.getLogger("repro.serve")

_BACKENDS = ("thread", "process")
_TRANSPORTS = ("shm", "pickle")
#: Ladder levels a supervised stream may execute at, best first.
_LEVELS = ("process", "thread", "inline")
#: Fault kinds the probe service can inject (see :class:`ProbeItem`).
_FAULT_KINDS = ("poison", "kill", "hang", "corrupt-slab")


class ServingFaultError(RuntimeError):
    """Base of the supervision layer's fault exceptions.

    Raised (at the owning unit's stream position) when a unit could not
    be served within its retry budget; see :class:`WorkerCrashError` and
    :class:`UnitTimeoutError` for the two concrete causes the supervisor
    distinguishes from plain worker exceptions.
    """


class WorkerCrashError(ServingFaultError):
    """A worker died mid-unit.

    On the process level this wraps a broken pool (SIGKILL/OOM of a
    worker process kills every in-flight future at once — the supervisor
    re-drives the window serially so only the unit that actually crashes
    alone is charged).  On the inline/thread levels it is raised directly
    by the injected ``kill``/``corrupt-slab`` probe faults, since threads
    cannot be killed from outside.
    """


class UnitTimeoutError(ServingFaultError):
    """A unit exceeded ``ServiceConfig.unit_timeout_s``.

    The deadline is measured while the stream waits on the unit's
    emission; a timed-out unit's pool is force-killed (a hung worker also
    wedges its executor slot) and the unit is charged one attempt.
    """


@dataclasses.dataclass
class ServiceConfig:
    """Tunables of one service instance.

    Attributes
    ----------
    max_batch:
        Work-unit size cap in wedges (the knee of the Figure-6 batch curve
    	for compression; payload batches are split to this for decode).
    max_delay_s:
        Stream-time accumulation budget (see :class:`MicroBatcher`);
        compression only.
    workers:
        Pool size.  ``0`` runs inline on the caller's thread — the fastest
        configuration for single-core NumPy; ``>= 1`` exercises the real
        hand-off machinery.
    backend:
        ``"thread"`` (default) or ``"process"`` — how ``workers >= 1`` are
        hosted.  The process pool sidesteps the GIL on multi-core boxes at
        the cost of pickling work units and results across the boundary.
    half:
        fp16 inference mode (paper §3.3 deployment default).
    inflight:
        Bound on units submitted but not yet emitted (backpressure).
    transport:
        How process-backend payloads cross the boundary: ``"shm"``
        (default) leases pre-sized shared-memory slabs — work units and
        results move by memcpy, only tiny descriptors are pickled — while
        ``"pickle"`` serializes every unit through the executor pipe.
        Units larger than a slab fall back to pickle per unit.  Ignored by
        the inline/thread backends (no process boundary to cross).
    shm_slab_mb:
        Slab size in MiB for ``transport="shm"``.  One slab serves both
        directions of a unit, so it must fit ``max(input, result)``
        bytes; the ring holds ``inflight`` slabs.  ``None`` (default) is
        **adaptive**: the ring is sized from the first work unit using
        the service's own arithmetic — ``max_batch`` wedges of input
        versus ``code_shape_for``-sized fp16 codes for compression, the
        payload versus the reconstruction geometry for decompression —
        so payloads neither silently degrade to pickle (too small) nor
        waste address space (too large).  Units that still exceed their
        slab fall back to pickle per unit, now *counted* on
        ``ServiceStats.faults.shm_fallbacks``.
    precision:
        Compilation tier of every pooled compressor: ``"bit"`` (default —
        payload bytes proven identical to the module path) or the opt-in
        ``"ulp"`` serving tier with its recorded stored-grid error bounds
        (see :data:`repro.core.fast_plan.ULP_TIER_MAX_ULP`).
    panel_threads:
        Intra-plan panel executor width for every pooled compressor
        (``None`` → the ``REPRO_PANEL_THREADS`` environment knob).  Output
        bytes are identical at any value; this composes with ``workers``
        (inter-batch) as the intra-batch parallelism axis.
    unit_timeout_s:
        Per-unit deadline in seconds, measured while the stream waits on
        the unit's emission.  A unit that exceeds it has its worker pool
        force-killed and rebuilt and is charged one attempt
        (:class:`UnitTimeoutError` once the retry budget is spent).
        ``None`` (default) disables deadlines.  The inline level executes
        at submit time on the caller's thread, so deadlines cannot be
        enforced there.
    max_retries:
        Extra attempts a faulted unit may be charged (worker crash,
        deadline, or plain worker exception) before its error surfaces at
        its stream position.  ``0`` (default) preserves fail-fast
        behaviour.  Retries are legal because compress/decompress/probe
        units are pure functions of their inputs (see
        ``ModelPoolService._idempotent``).
    backoff_base_s:
        First-retry backoff; retry ``n`` sleeps
        ``backoff_base_s * 2**(n-1)`` scaled by 0.5–1.5× jitter.  ``0``
        disables the sleep (deterministic tests).
    degrade_after:
        Circuit breaker: after this many *consecutive* worker crashes the
        effective backend steps down one ladder level (process → thread →
        inline) instead of rebuilding the same dying pool forever.  Unit
        successes reset the counter; a step-down is sticky for the
        service's lifetime and visible in :meth:`ModelPoolService.health`
        and in stream stats.
    rate_policy:
        Optional adaptive codec-selection policy name (see
        :data:`repro.rate.POLICY_NAMES`).  ``None`` (default) serves the
        plain fixed-rate BCAE; a policy name wraps every pooled
        compressor in :class:`repro.rate.AdaptiveCompressor`, so served
        payloads carry per-wedge codec records and
        :class:`~repro.rate.RateDecision` ledgers.  Selection is a pure
        per-wedge function, so every backend/transport produces identical
        decisions for identical streams.
    rate_budget_mbps:
        Optional stream-level bandwidth budget in Mbps, resolved to a
        stateless per-wedge byte allowance (see
        :class:`repro.rate.RateBudget`).  Requires ``rate_policy``.

    Example
    -------
    >>> from repro.serve import ServiceConfig
    >>> ServiceConfig(max_batch=16, workers=4, backend="process").transport
    'shm'
    >>> ServiceConfig(max_delay_s=0.002)          # 2 ms latency budget
    ServiceConfig(max_batch=8, max_delay_s=0.002, workers=0, backend='thread', half=True, inflight=8, transport='shm', shm_slab_mb=None, precision='bit', panel_threads=None, unit_timeout_s=None, max_retries=0, backoff_base_s=0.05, degrade_after=3, rate_policy=None, rate_budget_mbps=None)
    """

    max_batch: int = 8
    max_delay_s: float = 0.0
    workers: int = 0
    backend: str = "thread"
    half: bool = True
    inflight: int = 8
    transport: str = "shm"
    shm_slab_mb: float | None = None
    precision: str = "bit"
    panel_threads: int | None = None
    unit_timeout_s: float | None = None
    max_retries: int = 0
    backoff_base_s: float = 0.05
    degrade_after: int = 3
    rate_policy: str | None = None
    rate_budget_mbps: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ValueError(
                f"unit_timeout_s must be > 0 or None, got {self.unit_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1, got {self.degrade_after}"
            )
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if self.inflight < 1:
            raise ValueError(f"inflight must be >= 1, got {self.inflight}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {self.transport!r}"
            )
        if self.shm_slab_mb is not None and self.shm_slab_mb <= 0:
            raise ValueError(f"shm_slab_mb must be > 0, got {self.shm_slab_mb}")
        if self.rate_policy is not None:
            from ..rate import POLICY_NAMES

            if self.rate_policy not in POLICY_NAMES:
                raise ValueError(
                    f"rate_policy must be one of {POLICY_NAMES} or None, "
                    f"got {self.rate_policy!r}"
                )
        if self.rate_budget_mbps is not None:
            if self.rate_policy is None:
                raise ValueError(
                    "rate_budget_mbps requires a rate_policy — the budget "
                    "is an input to codec selection, not a standalone knob"
                )
            if self.rate_budget_mbps <= 0:
                raise ValueError(
                    f"rate_budget_mbps must be > 0, got {self.rate_budget_mbps}"
                )

    @property
    def slab_nbytes(self) -> int:
        if self.shm_slab_mb is None:
            raise ValueError(
                "shm_slab_mb is adaptive (None) — the slab size comes from "
                "the first work unit, not from the config"
            )
        return int(self.shm_slab_mb * (1 << 20))


@dataclasses.dataclass
class BatchRecord:
    """Timing record of one served work unit (a compressed/decoded batch)."""

    seq: int
    first_seq: int
    n_wedges: int
    compress_s: float  # time inside the worker's compressor call
    worker: str
    #: How the unit crossed to its worker: "local" (inline/thread), "shm"
    #: (slab lease) or "pickle" (serialized — the pickle transport, or a
    #: unit too large for its slab).
    transport: str = ""
    #: Wall-clock accumulation time of the batch (async ingestion only).
    wait_s: float = 0.0
    #: Why the micro-batch closed ("full"/"budget"/"eof"/"drain"; empty
    #: for units that never passed through a batcher, e.g. decode chunks).
    closed_by: str = ""
    #: Executions charged to this unit (1 = served first try; >1 means
    #: the supervisor retried it after a crash/timeout/exception).
    attempts: int = 1


@dataclasses.dataclass
class ServiceStats:
    """Aggregate outcome of one served stream."""

    n_wedges: int
    n_batches: int
    elapsed_s: float
    half: bool
    max_batch: int
    workers: int
    records: list[BatchRecord] = dataclasses.field(default_factory=list)
    #: Faults observed while serving this stream (all-zero when clean).
    faults: FaultCounters = dataclasses.field(default_factory=FaultCounters)
    #: Effective execution level at stream end ("inline"/"thread"/
    #: "process"); differs from the configured backend after a
    #: circuit-breaker step-down.
    level: str = ""

    @property
    def wedges_per_second(self) -> float:
        """End-to-end service throughput (includes batching + hand-off)."""

        return self.n_wedges / max(self.elapsed_s, 1e-12)

    @property
    def mean_batch_s(self) -> float:
        return float(np.mean([r.compress_s for r in self.records])) if self.records else 0.0

    @property
    def p99_batch_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.quantile([r.compress_s for r in self.records], 0.99))

    @property
    def mean_batch_size(self) -> float:
        return self.n_wedges / max(self.n_batches, 1)

    def batch_latency(self) -> LatencySummary:
        """Percentile summary of per-**batch** service time: wall-clock
        accumulation wait plus the worker's compute, one sample per served
        micro-batch (not per wedge)."""

        return summarize_latencies(
            [r.compress_s + r.wait_s for r in self.records]
        )

    def to_throughput_result(self) -> ThroughputResult:
        """This run in the currency of :mod:`repro.perf` microbenchmarks."""

        return throughput_from_batches(
            [r.n_wedges for r in self.records],
            [r.compress_s for r in self.records],
            self.elapsed_s,
            half=self.half,
        )

    def row(self) -> str:
        """One-line summary for logs and benches."""

        line = (
            f"wedges={self.n_wedges} batches={self.n_batches} "
            f"(mean size {self.mean_batch_size:.1f}) "
            f"throughput={self.wedges_per_second:8.1f} w/s "
            f"batch(mean/p99)={self.mean_batch_s * 1e3:6.2f}/{self.p99_batch_s * 1e3:6.2f} ms "
            f"workers={self.workers}"
        )
        if self.faults.total or self.faults.retries or self.faults.degraded:
            line += f" faults[{self.faults.row()}]"
        return line


@dataclasses.dataclass
class ServiceHealth:
    """Point-in-time supervision probe of one service.

    Returned by :meth:`ModelPoolService.health` and served as JSON by
    :func:`start_health_server` (``repro-tpc serve --health-port``).

    Attributes
    ----------
    state:
        The supervision state machine's current node: ``"healthy"`` →
        ``"retrying"`` (a fault is being retried) → ``"rebuilding"`` (a
        worker pool is being replaced) → ``"degraded"`` (circuit breaker
        stepped the backend down) → ``"draining"``/``"drained"``.
    backend / level / workers:
        Configured backend, the current effective ladder level (differs
        from ``backend`` after a step-down), and the configured pool size.
    active_streams:
        Streams currently being served.
    ring_slabs / ring_leased:
        Slab-ring occupancy summed over active streams (0/0 when no shm
        transport is in use); ``ring_leased`` equals in-flight shm units.
    consecutive_crashes:
        The circuit breaker's counter (reset by any unit success).
    last_unit_latency_s:
        Worker compute time of the most recently emitted unit.
    faults:
        Lifetime :class:`~repro.perf.timing.FaultCounters` totals across
        all streams of this service.
    """

    state: str
    backend: str
    level: str
    workers: int
    active_streams: int
    ring_slabs: int
    ring_leased: int
    consecutive_crashes: int
    last_unit_latency_s: float
    faults: FaultCounters

    @property
    def ok(self) -> bool:
        """Liveness verdict: still accepting work (possibly degraded)."""

        return self.state not in ("draining", "drained")

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (what the health endpoint serves)."""

        return dataclasses.asdict(self)


@dataclasses.dataclass
class PayloadItem:
    """One decompression work unit: a payload batch with stream bookkeeping."""

    seq: int
    first_seq: int
    compressed: CompressedWedges

    @property
    def n_wedges(self) -> int:
        return self.compressed.n_wedges


class ModelPoolService:
    """Shared serving core: compressor pool → ordered fan-out → stats.

    Subclasses define one unit of work (:meth:`_work`, and its module-level
    twin for the process backend via :attr:`_kind`); everything else —
    compressor pooling/checkout, inline / thread / process execution, the
    bounded in-flight ordered emission, and stats assembly — lives here, so
    compression and decompression are two instantiations of one engine.

    Constructing a service calls ``model.eval()`` — a deliberate, *lasting*
    side effect on the caller's model: serving is inference, and BatchNorm
    must run from running statistics both for batch-composition-free bytes
    and to compile onto the stage-plan fast path.  A caller that resumes
    training the same object afterwards must call ``model.train()`` again.
    """

    #: Work dispatch tag for the process backend ("compress"/"decompress").
    _kind = ""

    #: Sentinel item: a supervised stream that pulls this from its source
    #: drains the whole in-flight window (emitting every pending result in
    #: order) instead of treating it as work.  Long-lived pull sources —
    #: the gateway's shard pumps above all — inject it when their queue
    #: runs dry, so results reach waiting sessions instead of sitting in a
    #: half-full window until the next unit arrives.
    _FLUSH = object()

    #: Whether this service's units may legally be re-executed after a
    #: fault.  Compression, decompression and the probe checksum are pure
    #: functions of their inputs, so retry and uncharged re-drive are
    #: safe; a subclass serving units with side effects must set this
    #: False, which makes every fault terminal at the owning unit.
    _idempotent = True

    def __init__(self, model, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        # Serving is inference by definition: normalization layers must run
        # from their running statistics, both for batch-composition-free
        # payload bytes and so BatchNorm models (the original BCAE) compile
        # onto the stage-plan fast path instead of the module graph.
        if hasattr(model, "eval"):
            model.eval()
        self.model = model
        # Warm compressors are pooled on the instance so back-to-back
        # streams reuse their compiled workspaces; checkouts are per-stream
        # (see _Checkout), so concurrent streams on one service never share
        # a compressor's non-thread-safe scratch.  Process-backend workers
        # own compressors in their own processes instead.
        self._pool_lock = threading.Lock()
        prewarm = 1 if self.config.backend == "process" else max(1, self.config.workers)
        self._idle: list[BCAECompressor] = [
            self._build_compressor() for _ in range(prewarm)
        ]
        #: Debug counters of the last process-backend stream's transport
        #: (shm ring name, slab stats, fallback counts) — see
        #: :meth:`_ProcessTransport.close`.  Tests use this to assert the
        #: lease/release protocol leaks nothing.
        self.last_shm: dict = {}
        # Supervision state shared by every stream of this service: the
        # backend ladder, circuit breaker, drain latch and fault totals.
        self._supervisor = _Supervisor(self.config)
        self._streams: set[_SupervisedStream] = set()
        # Fault counters / effective level of the most recently finished
        # stream, copied into that stream's ServiceStats by _stats().
        self._last_faults = FaultCounters()
        self._last_level = self._supervisor.level

    # ------------------------------------------------------------------
    def _build_compressor(self) -> BCAECompressor:
        cfg = self.config
        return _make_compressor(self.model, cfg.half, cfg.precision,
                                cfg.panel_threads, cfg.rate_policy,
                                cfg.rate_budget_mbps)

    def _acquire(self) -> BCAECompressor:
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
        return self._build_compressor()

    def _release(self, compressors: list[BCAECompressor]) -> None:
        with self._pool_lock:
            self._idle.extend(compressors)

    # ------------------------------------------------------------------
    def _work(self, compressor: BCAECompressor, item):
        """One unit of work on a checked-out compressor (subclass hook)."""

        raise NotImplementedError

    def _execute(self, checkout: "_Checkout", item):
        name, compressor = checkout.get()
        t0 = time.perf_counter()
        result = self._work(compressor, item)
        dt = time.perf_counter() - t0
        record = BatchRecord(
            seq=item.seq,
            first_seq=item.first_seq,
            n_wedges=item.n_wedges,
            compress_s=dt,
            worker=name,
            transport="local",
            wait_s=getattr(item, "wait_s", 0.0),
            closed_by=getattr(item, "closed_by", ""),
        )
        return record, result

    # ------------------------------------------------------------------
    def _serve(self, items,
               transport: "_ProcessTransport | None" = None,
               ) -> Iterator[tuple[BatchRecord, object]]:
        """Run work units through the configured backend, in stream order.

        Execution is supervised (see :class:`_SupervisedStream`): worker
        crashes rebuild the backend and quarantine the slab ring, the
        deadline/retry policy follows :class:`ServiceConfig`, and the
        circuit breaker may step the effective backend down
        process → thread → inline.  Raises ``RuntimeError`` once the
        service is draining/drained.

        ``transport`` lends the stream an externally owned
        :class:`_ProcessTransport` (see :meth:`_make_transport`): its slab
        ring is *reused* across consecutive streams instead of rebuilt
        per stream, and the caller — not the stream — closes it.
        """

        stream = _SupervisedStream(self, items, transport=transport)
        try:
            yield from stream.run()
        finally:
            stream.close()

    def _make_transport(self) -> "_ProcessTransport | None":
        """A process-backend transport whose ring outlives single streams.

        Returns ``None`` unless the config runs a process pool.  Pass the
        result to :meth:`_serve` so back-to-back streams (the gateway's
        shard pumps) lease from one long-lived slab ring instead of
        creating and destroying a ring per stream; the caller must call
        ``transport.close()`` when the shard is torn down.
        """

        cfg = self.config
        if cfg.workers > 0 and cfg.backend == "process":
            return _ProcessTransport(self)
        return None

    def _adaptive_slab_nbytes(self, item) -> int:
        """Slab bytes that fit this unit's input *and* result at
        ``max_batch`` (subclass hook for adaptive ``shm_slab_mb``)."""

        raise NotImplementedError(
            f"{type(self).__name__} must implement _adaptive_slab_nbytes "
            "to use adaptive shm_slab_mb (shm_slab_mb=None)"
        )

    # ------------------------------------------------------------------
    def health(self) -> ServiceHealth:
        """Point-in-time supervision probe of this service.

        Reports pool liveness/state, slab-ring occupancy over active
        streams, the circuit breaker's consecutive-crash counter,
        last-unit latency and lifetime fault totals.  Cheap and
        lock-light — safe to call from another thread while streams are
        being served, which is exactly what the ``--health-port``
        endpoint (:func:`start_health_server`) does.
        """

        sup = self._supervisor
        ring_slabs = 0
        ring_leased = 0
        for stream in list(self._streams):
            ring = stream.ring
            if ring is not None:
                occupancy = ring.stats()
                ring_slabs += occupancy["n_slabs"]
                ring_leased += occupancy["leased"]
        return ServiceHealth(
            state=sup.state(),
            backend="inline" if self.config.workers == 0 else self.config.backend,
            level=sup.level,
            workers=self.config.workers,
            active_streams=sup.active_streams,
            ring_slabs=ring_slabs,
            ring_leased=ring_leased,
            consecutive_crashes=sup.consecutive_crashes,
            last_unit_latency_s=sup.last_unit_latency_s,
            faults=dataclasses.replace(sup.totals),
        )

    def drain(self, wait: bool = True, timeout: float | None = None) -> bool:
        """Stop intake, flush in-flight units, release every slab.

        The sync generalization of :meth:`AsyncServingSession.aclose`:
        after ``drain()`` no stream pulls further items from its source —
        a partially accumulated micro-batch flushes with
        ``closed_by="drain"``, every unit already submitted is emitted
        (or surfaces its error), and each stream's backend and slab ring
        are torn down on its normal close path, so nothing is orphaned
        and no slab stays leased.  Draining is terminal for the service:
        starting a new stream or session afterwards raises
        ``RuntimeError``.  With ``wait=True`` (default) blocks until all
        active streams have finished, up to ``timeout`` seconds (``None``
        = forever); returns True when the service is fully drained.
        """

        return self._supervisor.drain(wait=wait, timeout=timeout)

    # ------------------------------------------------------------------
    def _collect(self, stream, keep: bool) -> tuple[list, ServiceStats]:
        """Drain a served stream into (results, stats)."""

        results: list = []
        records: list[BatchRecord] = []
        n_wedges = 0
        t0 = time.perf_counter()
        for record, result in stream:
            records.append(record)
            n_wedges += record.n_wedges
            if keep:
                results.append(result)
        return results, self._stats(records, n_wedges, time.perf_counter() - t0)

    def _stats(self, records, n_wedges: int, elapsed_s: float) -> ServiceStats:
        """One ServiceStats assembly shared by the sync and async drains."""

        cfg = self.config
        return ServiceStats(
            n_wedges=n_wedges,
            n_batches=len(records),
            elapsed_s=elapsed_s,
            half=cfg.half,
            max_batch=cfg.max_batch,
            workers=cfg.workers,
            records=records,
            faults=self._last_faults,
            level=self._last_level,
        )

    # ------------------------------------------------------------------
    # async façade
    # ------------------------------------------------------------------
    def session(self) -> "AsyncServingSession":
        """Open an async session on this service (must run inside a loop).

        The session is the raw façade — ``await session.submit(unit)``
        returns the unit's future, ``async for`` over
        :meth:`AsyncServingSession.results` emits in order.  Most callers
        want :meth:`serve_async` / ``run_async`` instead.
        """

        return AsyncServingSession(self)

    async def serve_async(self, items) -> AsyncIterator[tuple[BatchRecord, object]]:
        """Serve an async iterable of work units; ordered async emission.

        The asyncio twin of :meth:`_serve`: same backends, same bounded
        in-flight window, same stream-order emission — but submission and
        emission interleave on the event loop, so an async source keeps
        producing while workers compute.  Closing the generator early
        drains in-flight units cleanly (no orphaned work, no leaked slabs).
        """

        session = self.session()
        try:
            async for item in _ensure_async(items):
                while session.pending >= self.config.inflight:
                    yield await session.next_result()
                await session.submit(item)
            while session.pending:
                yield await session.next_result()
        finally:
            await session.aclose()

    async def _collect_async(self, stream, keep: bool) -> tuple[list, ServiceStats]:
        """Drain an async served stream into (results, stats)."""

        results: list = []
        records: list[BatchRecord] = []
        n_wedges = 0
        t0 = time.perf_counter()
        async for record, result in stream:
            records.append(record)
            n_wedges += record.n_wedges
            if keep:
                results.append(result)
        return results, self._stats(records, n_wedges, time.perf_counter() - t0)


# ----------------------------------------------------------------------
# Supervision: the fault-tolerance layer under _serve.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class _Unit:
    """One in-flight work unit under supervision."""

    item: object
    future: object = None
    attempt: int = 0                    # 0-based; BatchRecord.attempts = attempt + 1
    done: tuple | None = None           # (record, result) once resolved
    error: BaseException | None = None  # terminal failure at this position


class _Supervisor:
    """Service-level supervision state shared by every stream.

    Holds the backend ladder and circuit breaker (a step-down is sticky
    for the service's lifetime), lifetime fault totals, the last-unit
    latency sample, and the drain latch.  Mutations are guarded by one
    lock; nothing here sits on the per-unit hot path except
    :meth:`note_success`, which is three attribute writes.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        if config.workers == 0:
            self.ladder: tuple[str, ...] = ("inline",)
        elif config.backend == "process":
            self.ladder = _LEVELS
        else:
            self.ladder = ("thread", "inline")
        self.level_index = 0
        self.transient = "healthy"      # healthy | retrying | rebuilding
        self.consecutive_crashes = 0
        self.degrade_after = config.degrade_after
        self.totals = FaultCounters()
        self.last_unit_latency_s = 0.0
        self.draining = False
        self.active_streams = 0

    @property
    def level(self) -> str:
        """Current effective execution level (post step-downs)."""

        return self.ladder[self.level_index]

    def state(self) -> str:
        """Current node of the supervision state machine."""

        with self._lock:
            if self.draining:
                return "drained" if self.active_streams == 0 else "draining"
            if self.transient != "healthy":
                return self.transient
            return "degraded" if self.level_index > 0 else "healthy"

    def drain_requested(self) -> bool:
        """The intake latch the batcher/stream loops poll."""

        return self.draining

    # -- stream lifecycle ----------------------------------------------
    def stream_started(self) -> None:
        with self._lock:
            if self.draining:
                raise RuntimeError(
                    "service is draining/drained — no new streams"
                )
            self.active_streams += 1

    def stream_done(self) -> None:
        with self._idle:
            self.active_streams -= 1
            self._idle.notify_all()

    def drain(self, wait: bool = True, timeout: float | None = None) -> bool:
        self.draining = True
        if not wait:
            return self.active_streams == 0
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self.active_streams > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- fault accounting ----------------------------------------------
    def note_success(self, latency_s: float) -> None:
        self.consecutive_crashes = 0
        self.transient = "healthy"
        self.last_unit_latency_s = latency_s

    def note_crash(self) -> bool:
        """Record one worker crash; True when the breaker trips (the
        caller must then rebuild at the new, lower ladder level)."""

        with self._lock:
            self.consecutive_crashes += 1
            if (self.consecutive_crashes >= self.degrade_after
                    and self.level_index + 1 < len(self.ladder)):
                was = self.level
                self.level_index += 1
                self.consecutive_crashes = 0
                _LOG.warning(
                    "serving degraded: backend %s -> %s after %d "
                    "consecutive worker crashes", was, self.level,
                    self.degrade_after,
                )
                return True
        return False


class _Engine:
    """One live execution backend at a given ladder level (rebuildable).

    The supervised stream treats the engine as disposable: on a crash or
    a hung worker it is shut down (``force=True`` SIGKILLs worker
    processes outright, or abandons hung threads) and a fresh instance is
    built at the supervisor's current level.  All three levels expose the
    same submit/result/fail surface, so the fault policy above is
    level-agnostic.  The inline level executes at submit time on the
    caller's thread and hands back an already-resolved future — the
    degenerate engine every fault path can fall back to.
    """

    def __init__(self, service: ModelPoolService, level: str,
                 transport: "_ProcessTransport | None" = None) -> None:
        cfg = service.config
        self._service = service
        self.level = level
        self._transport = transport
        self._checkout: _Checkout | None = None
        self._pool = None
        if level == "process":
            self._pool = concurrent.futures.ProcessPoolExecutor(
                cfg.workers,
                initializer=_process_init,
                initargs=transport.initargs(),
            )
        elif level == "thread":
            self._checkout = _Checkout(service)
            self._pool = concurrent.futures.ThreadPoolExecutor(max(1, cfg.workers))
        else:
            self._checkout = _Checkout(service)

    def submit(self, item):
        if self.level == "process":
            return self._transport.submit(self._pool, item)
        if self.level == "thread":
            return self._pool.submit(self._service._execute, self._checkout, item)
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(self._service._execute(self._checkout, item))
        except BaseException as exc:
            # Inline twin of a worker failure: surfaces at result(), so
            # the three levels share one fault path.
            future.set_exception(exc)
        return future

    def result(self, future, timeout: float | None):
        record, result = future.result(timeout=timeout)
        if self.level == "process":
            record, result = self._transport.finalize(future, record, result)
        return record, result

    def fail(self, future) -> None:
        if self.level == "process":
            self._transport.fail(future)

    def shutdown(self, force: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            if force and self.level == "process":
                # Hung or dead pool: SIGKILL the workers (interrupting any
                # hung unit) and do not wait for the management thread.
                for proc in list((getattr(pool, "_processes", None) or {}).values()):
                    try:
                        proc.kill()
                    except Exception:
                        pass
                pool.shutdown(wait=False, cancel_futures=True)
            elif force:
                # Threads cannot be killed: abandon the pool and leak its
                # checkouts — a hung thread may still be touching its
                # compressor, so returning it to the idle pool would hand
                # a racing workspace to the next stream.
                pool.shutdown(wait=False, cancel_futures=True)
                self._checkout = None
            else:
                pool.shutdown(wait=True)
        checkout, self._checkout = self._checkout, None
        if checkout is not None:
            checkout.release()


class _SupervisedStream:
    """One supervised served stream: the engine loop under :meth:`_serve`.

    Owns a rebuildable :class:`_Engine` (plus, at the process level, a
    :class:`_ProcessTransport` whose slab ring it can quarantine), drives
    the bounded in-flight window in stream order, and implements the
    fault policy:

    * per-unit deadlines (``unit_timeout_s``) with force-kill + rebuild
      of a hung pool;
    * bounded retry with exponential backoff + jitter (``max_retries`` /
      ``backoff_base_s``), legality gated on ``service._idempotent``;
    * crash recovery with *serial re-probing*: a broken pool fails every
      in-flight future at once, so pending units are re-driven one at a
      time, alone — whatever fails alone is charged to its own retry
      budget, innocent units are re-submitted uncharged;
    * the circuit-breaker step-down (process → thread → inline) after
      ``degrade_after`` consecutive crashes.
    """

    def __init__(self, service: ModelPoolService, items,
                 transport: "_ProcessTransport | None" = None) -> None:
        service._supervisor.stream_started()
        self._service = service
        self._sup = service._supervisor
        self._cfg = service.config
        self._items = items
        self._window: collections.deque = collections.deque()
        self._counters = FaultCounters()
        self._recovering = False
        # A borrowed transport (gateway shard pumps) is reused across
        # streams and closed by its owner, not here.
        self._owns_transport = transport is None
        self._transport: _ProcessTransport | None = transport
        if self._transport is None and self._sup.level == "process":
            self._transport = _ProcessTransport(service)
        self._fallback_base = (
            self._transport.fallbacks if self._transport is not None else 0
        )
        # Adaptive slab sizing needs the first unit before the ring (and
        # therefore the pool, whose workers attach the ring at init) can
        # exist — defer engine creation to the first submit in that case.
        self._engine: _Engine | None = None
        if self._transport is None or not self._transport.ring_pending:
            self._engine = _Engine(service, self._sup.level, self._transport)
        service._streams.add(self)

    # ------------------------------------------------------------------
    @property
    def ring(self):
        """The stream's slab ring, if the current level uses one."""

        return self._transport.ring if self._transport is not None else None

    def _inflight(self) -> int:
        # Inline execution completes at submit: a deeper window would only
        # delay emission, and pull-driven laziness (submit → emit → next
        # pull) is part of the inline contract.
        return 1 if self._engine.level == "inline" else self._cfg.inflight

    def run(self) -> Iterator[tuple[BatchRecord, object]]:
        """Yield ``(record, result)`` in stream order under supervision."""

        for item in self._items:
            if item is ModelPoolService._FLUSH:
                # The source's queue ran dry: emit everything in flight so
                # waiting consumers are not held hostage by a half-full
                # window, then go back for more items.
                while self._window:
                    yield self._pop()
                continue
            unit = _Unit(item)
            self._window.append(unit)
            self._submit(unit)
            while len(self._window) >= self._inflight():
                yield self._pop()
            # Drain check sits *after* the item is in flight: an item the
            # source already handed over is flushed, not dropped — the
            # batcher's final closed_by="drain" batch above all.
            if self._sup.draining:
                break
        while self._window:
            yield self._pop()

    def close(self) -> None:
        """Shut the engine down, publish transport stats, unregister."""

        try:
            if self._engine is not None:
                self._engine.shutdown()
            if self._transport is not None:
                fallbacks = self._transport.fallbacks - self._fallback_base
                if fallbacks > 0:
                    self._count("shm_fallbacks", fallbacks)
                if self._owns_transport:
                    self._transport.close()
        finally:
            self._service._streams.discard(self)
            self._service._last_faults = dataclasses.replace(self._counters)
            self._service._last_level = (
                self._engine.level if self._engine is not None
                else self._sup.level
            )
            self._sup.stream_done()

    # ------------------------------------------------------------------
    def _count(self, field: str, n: int = 1) -> None:
        """Bump one fault counter on the stream and the service totals."""

        setattr(self._counters, field, getattr(self._counters, field) + n)
        totals = self._sup.totals
        setattr(totals, field, getattr(totals, field) + n)

    def _crashed(self) -> None:
        """Crash bookkeeping shared by every worker-death path."""

        self._count("crashes")
        if self._sup.note_crash():
            self._count("degraded")

    def _submit(self, unit: _Unit) -> None:
        if self._engine is None:
            # Deferred start (adaptive slab sizing): size the ring from
            # this first unit, then stand the pool up against it.
            self._transport.ensure_ring(unit.item)
            self._engine = _Engine(self._service, self._sup.level,
                                   self._transport)
        if hasattr(unit.item, "attempt"):
            unit.item.attempt = unit.attempt  # probe fault hooks see retries
        try:
            unit.future = self._engine.submit(unit.item)
            return
        except concurrent.futures.BrokenExecutor:
            # The pool died under an earlier in-flight unit before anyone
            # waited on it.  Nobody is charged for the submit itself:
            # rebuild, re-drive the window serially (the real culprit
            # crashes again alone and is charged there), then submit this
            # unit on the fresh engine.
            self._crashed()
            self._rebuild(force=True)
            if not self._recovering:
                self._recover_window(skip=unit)
        unit.future = self._engine.submit(unit.item)

    def _pop(self) -> tuple[BatchRecord, object]:
        unit = self._window.popleft()
        while unit.done is None and unit.error is None:
            self._await(unit, alone=False)
        if unit.error is not None:
            raise unit.error
        record, result = unit.done
        record.attempts = unit.attempt + 1
        self._sup.note_success(record.compress_s)
        return record, result

    def _await(self, unit: _Unit, alone: bool) -> None:
        """Wait out one attempt of ``unit``: resolve it, or charge/recover
        and leave it pending for another spin of the caller's loop.

        ``alone`` marks the serial-recovery context: the unit is the only
        one running, so a pool-wide failure needs no window recovery (the
        outer :meth:`_recover_window` loop owns the other units).
        """

        cfg = self._cfg
        try:
            record, result = self._engine.result(unit.future, cfg.unit_timeout_s)
        except concurrent.futures.TimeoutError:
            # The deadline clock runs while we wait on the unit's
            # emission.  A hung worker also wedges its executor slot, so
            # the engine is force-killed and rebuilt either way.
            self._count("timeouts")
            self._sup.transient = "retrying"
            exc: BaseException = UnitTimeoutError(
                f"unit seq={getattr(unit.item, 'seq', '?')} exceeded the "
                f"{cfg.unit_timeout_s}s deadline "
                f"(attempt {unit.attempt + 1}/{cfg.max_retries + 1})"
            )
            self._rebuild(force=True)
            if not alone:
                self._recover_window(skip=unit)
            self._charge(unit, exc)
            return
        except concurrent.futures.BrokenExecutor as broken:
            # Worker process death (SIGKILL/OOM): the pool is unusable and
            # every in-flight future failed at once.  Only the unit we
            # were waiting on is charged; the rest re-drive uncharged.
            self._crashed()
            self._sup.transient = "retrying"
            exc = WorkerCrashError(
                f"worker process died serving unit "
                f"seq={getattr(unit.item, 'seq', '?')} "
                f"(attempt {unit.attempt + 1}/{cfg.max_retries + 1})"
            )
            exc.__cause__ = broken
            self._rebuild(force=True)
            if not alone:
                self._recover_window(skip=unit)
            self._charge(unit, exc)
            return
        except WorkerCrashError as exc:
            # In-worker crash with the pool still alive (the inline/thread
            # levels' injected kill/corrupt-slab faults).  The breaker may
            # still trip — then the engine is swapped for the lower level
            # and the window re-driven on it.
            self._count("crashes")
            degraded = self._sup.note_crash()
            self._sup.transient = "retrying"
            self._engine.fail(unit.future)
            if degraded:
                self._count("degraded")
                self._rebuild(force=False)
                if not alone:
                    self._recover_window(skip=unit)
            self._charge(unit, exc)
            return
        except Exception as exc:
            # Plain worker exception: the unit failed, the pool is fine.
            self._engine.fail(unit.future)
            self._sup.transient = "retrying"
            self._charge(unit, exc)
            return
        except BaseException:
            # KeyboardInterrupt and friends: release the slab, propagate.
            self._engine.fail(unit.future)
            raise
        unit.done = (record, result)
        self._sup.transient = "healthy"

    def _charge(self, unit: _Unit, exc: BaseException) -> None:
        """Charge one failed attempt: resubmit within the retry budget, or
        record the terminal error at the unit's stream position."""

        if not self._service._idempotent or unit.attempt >= self._cfg.max_retries:
            self._count("failures")
            unit.error = exc
            return
        unit.attempt += 1
        self._count("retries")
        self._backoff(unit.attempt)
        self._submit(unit)

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff with jitter before retry ``attempt``."""

        base = self._cfg.backoff_base_s
        if base <= 0:
            return
        time.sleep(base * (2 ** (attempt - 1)) * (0.5 + random.random()))

    def _rebuild(self, force: bool) -> None:
        """Tear the engine down and stand a fresh one up at the current
        (possibly just-degraded) ladder level; quarantine the slab ring
        when a process pool died mid-write."""

        self._count("rebuilds")
        self._sup.transient = "rebuilding"
        self._engine.shutdown(force=force)
        level = self._sup.level
        if self._transport is not None:
            if level == "process":
                if self._transport.quarantine_ring():
                    self._count("ring_rebuilds")
            else:
                # Degraded below the process level: no pool will attach
                # again, so drop the (possibly corrupt) ring outright.
                self._transport.drop_ring()
        self._engine = _Engine(self._service, level, self._transport)

    def _recover_window(self, skip: _Unit | None = None) -> None:
        """Serially re-drive every pending in-flight unit on the rebuilt
        engine.

        A pool-wide failure kills every in-flight future at once, which
        says nothing about *which* unit was responsible.  Running the
        survivors one at a time, alone, pins any further failure on the
        unit that actually causes it: innocent units are re-submitted
        uncharged (legal — units are pure), and the original victim
        (``skip``) is left to its own charged retry by the caller.
        """

        self._recovering = True
        try:
            for unit in list(self._window):
                if unit is skip or unit.done is not None or unit.error is not None:
                    continue
                if not self._service._idempotent:
                    self._count("failures")
                    unit.error = WorkerCrashError(
                        f"in-flight unit seq={getattr(unit.item, 'seq', '?')} "
                        "was lost to a worker crash and this service's "
                        "units are not idempotent — not re-run"
                    )
                    continue
                self._submit(unit)
                while unit.done is None and unit.error is None:
                    self._await(unit, alone=True)
        finally:
            self._recovering = False


class StreamingCompressionService(ModelPoolService):
    """Micro-batching, multi-worker wedge compression.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder`; each worker compiles its own
        compressor (and fast-path workspaces) against it.  The service
        puts the model in eval mode — serving is inference.
    config:
        :class:`ServiceConfig`; defaults are single-core friendly.

    Example
    -------
    >>> from repro.core import build_model
    >>> from repro.serve import ServiceConfig, StreamingCompressionService
    >>> model = build_model("bcae_2d", wedge_spatial=(16, 24, 32), seed=0)
    >>> service = StreamingCompressionService(model, ServiceConfig(max_batch=8))
    >>> payloads, stats = service.run(wedges)      # wedges: iterable of (R, A, H)
    >>> stats.wedges_per_second                    # doctest: +SKIP
    812.4
    """

    _kind = "compress"

    def _work(self, compressor: BCAECompressor, batch: MicroBatch) -> CompressedWedges:
        # compress_into without `out` returns owned payload bytes — safe to
        # hand across threads while the worker reuses its workspaces.
        return compressor.compress_into(batch.wedges)

    def _adaptive_slab_nbytes(self, batch: MicroBatch) -> int:
        """Slab size fitting ``max_batch`` wedges of input and their codes.

        The codes side uses the exact ``code_shape_for`` arithmetic the
        worker applies (fp16 = 2 bytes/element), so a full-size batch
        round-trips through one slab with zero pickle fallbacks.
        """

        wedges = np.asarray(batch.wedges)
        spatial = wedges.shape[1:]
        per_input = int(np.prod(spatial)) * wedges.dtype.itemsize
        compressor = self._acquire()
        try:
            code_shape = compressor.code_shape_for(spatial)
        finally:
            self._release([compressor])
        per_codes = int(np.prod(code_shape)) * 2
        return self.config.max_batch * max(per_input, per_codes)

    # ------------------------------------------------------------------
    def compress_stream(
        self, source: Iterable[StreamItem] | Sequence[np.ndarray] | np.ndarray
    ) -> Iterator[tuple[BatchRecord, CompressedWedges]]:
        """Compress a stream; yields ``(record, payload)`` in stream order.

        ``source`` may be an iterable of :class:`StreamItem` (timed), a
        sequence of single wedges, or a stacked ``(N, R, A, H)`` array.
        """

        items = _as_stream(source)
        batches = MicroBatcher(
            self.config.max_batch, self.config.max_delay_s
        ).batches(items, stop=self._supervisor.drain_requested)
        yield from self._serve(batches)

    # ------------------------------------------------------------------
    def run(
        self, source, keep_payloads: bool = True
    ) -> tuple[list[CompressedWedges], ServiceStats]:
        """Serve a whole stream; returns payloads (in order) and stats."""

        return self._collect(self.compress_stream(source), keep_payloads)

    # ------------------------------------------------------------------
    def compress_stream_async(
        self, source
    ) -> AsyncIterator[tuple[BatchRecord, CompressedWedges]]:
        """Async ingestion: wedges → wall-clock micro-batches → payloads.

        ``source`` may be any async iterable of wedges/:class:`StreamItem`
        (e.g. an :class:`~repro.serve.source.AsyncQueueSource` or
        :class:`~repro.serve.source.AsyncSocketSource`) or any source
        :meth:`compress_stream` accepts.  Batches close on ``max_batch`` or
        when ``config.max_delay_s`` of *wall-clock* time (monotonic, not
        replayed stream time) elapses since the batch's first wedge
        arrived; ``(record, payload)`` pairs emit in arrival order through
        the bounded in-flight window.

        Example
        -------
        >>> async def pump(service, source):
        ...     async for record, payload in service.compress_stream_async(source):
        ...         archive.append(payload)            # doctest: +SKIP
        """

        batcher = AsyncMicroBatcher(self.config.max_batch, self.config.max_delay_s)
        return self.serve_async(batcher.batches(
            aiter_wedges(source), stop=self._supervisor.drain_requested
        ))

    async def run_async(
        self, source, keep_payloads: bool = True
    ) -> tuple[list[CompressedWedges], ServiceStats]:
        """Serve a whole async stream; returns payloads (in order) and stats."""

        return await self._collect_async(
            self.compress_stream_async(source), keep_payloads
        )


class DecompressionService(ModelPoolService):
    """Multi-worker payload decompression — the analysis side of the loop.

    Consumes :class:`CompressedWedges` batches (e.g. loaded from
    :mod:`repro.io` archives), re-chunks them to ``max_batch`` wedges, and
    fans them out to workers calling ``BCAECompressor.decompress_into``
    (the compiled :class:`~repro.core.fast_decode.FastDecoder2D` path where
    the model supports it).  Reconstructions are owned float32 arrays
    ``(B, R, A, H)``, emitted in stream order, bit-identical to serial
    ``decompress`` calls.

    Example
    -------
    >>> from repro.io import load_compressed
    >>> from repro.serve import DecompressionService, ServiceConfig
    >>> compressed, name = load_compressed("codes.npz")   # doctest: +SKIP
    >>> service = DecompressionService(model, ServiceConfig(max_batch=8))
    >>> recons, stats = service.run([compressed])         # doctest: +SKIP
    """

    _kind = "decompress"

    def _work(self, compressor: BCAECompressor, item: PayloadItem) -> np.ndarray:
        # Copy out of the worker's reused workspace before hand-off.
        return np.array(compressor.decompress_into(item.compressed))

    def _adaptive_slab_nbytes(self, item: PayloadItem) -> int:
        """Slab size fitting ``max_batch`` wedges of payload and recon.

        The reconstruction dominates: fp32 at the full wedge geometry,
        recovered from the payload header — 3D models carry their exact
        input spatial shape; the 2D family's azimuthal extent is
        ``code_shape[1] * 2**d`` (the encoder's downsampling inverted)
        over ``in_channels`` radial layers and the unpadded horizontal.
        """

        c = item.compressed
        n_wedges = max(1, int(c.n_wedges))
        per_payload = -(-int(c.nbytes) // n_wedges)
        encoder = self.model.encoder
        if hasattr(encoder, "spatial"):
            per_recon = int(np.prod(encoder.spatial)) * 4
        else:
            upsample = 2 ** encoder.d
            per_recon = (int(encoder.in_channels)
                         * int(c.code_shape[1]) * upsample
                         * int(c.original_horizontal) * 4)
        return self.config.max_batch * max(per_payload, per_recon)

    # ------------------------------------------------------------------
    def _as_items(
        self, source: Iterable[CompressedWedges] | CompressedWedges
    ) -> Iterator[PayloadItem]:
        if isinstance(source, CompressedWedges):
            source = [source]
        # Only the pickle transport needs owned bytes up front; the shm
        # path memcpys straight from the memoryview (its oversize fallback
        # converts per unit via _picklable).
        pickled = (
            self.config.backend == "process"
            and self.config.workers > 0
            and self.config.transport == "pickle"
        )
        seq = 0
        first = 0
        for compressed in source:
            for chunk in split_compressed(compressed, self.config.max_batch):
                if pickled and not isinstance(chunk.payload, bytes):
                    chunk = dataclasses.replace(
                        chunk, payload=bytes(chunk.payload)
                    )
                yield PayloadItem(seq=seq, first_seq=first, compressed=chunk)
                seq += 1
                first += chunk.n_wedges

    def decompress_stream(
        self, source: Iterable[CompressedWedges] | CompressedWedges
    ) -> Iterator[tuple[BatchRecord, np.ndarray]]:
        """Decompress payload batches; yields ``(record, recon)`` in order."""

        yield from self._serve(self._as_items(source))

    # ------------------------------------------------------------------
    def run(
        self, source, keep_recons: bool = True
    ) -> tuple[list[np.ndarray], ServiceStats]:
        """Serve a payload stream; returns reconstructions and stats."""

        return self._collect(self.decompress_stream(source), keep_recons)

    # ------------------------------------------------------------------
    def decompress_stream_async(
        self, source
    ) -> AsyncIterator[tuple[BatchRecord, np.ndarray]]:
        """Async twin of :meth:`decompress_stream` (same re-chunking)."""

        return self.serve_async(self._as_items(source))

    async def run_async(
        self, source, keep_recons: bool = True
    ) -> tuple[list[np.ndarray], ServiceStats]:
        """Serve a payload stream asynchronously; recons and stats."""

        return await self._collect_async(
            self.decompress_stream_async(source), keep_recons
        )


# ----------------------------------------------------------------------
# Probe workload: the hand-off measured in isolation.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ProbeItem:
    """One transport-probe work unit: an array to ship, touch, and ack.

    The deterministic fault-injection hooks the supervision tests drive
    every recovery path with, on every backend, without corrupting real
    model state:

    * ``poison`` — the worker raises ``RuntimeError`` (a plain worker
      exception: the unit fails, the pool survives);
    * ``fault="kill"`` — the worker SIGKILLs its own process (process
      backend; on inline/thread, where suicide would take the service
      down, it raises :class:`WorkerCrashError` instead — the same
      supervisor path, minus the pool rebuild);
    * ``fault="hang"`` — the worker sleeps ``hang_s`` before answering,
      to trip ``unit_timeout_s`` deadlines;
    * ``fault="corrupt-slab"`` — the worker scribbles over its input
      slab *and then* crashes like ``kill``, modelling a writer dying
      mid-write (the supervisor must quarantine the ring).

    ``fail_attempts`` bounds the injection: the fault fires only while
    ``attempt < fail_attempts`` (``None`` = always), so one item can
    deterministically crash twice and then succeed on the third try —
    the retry-succeeds and degraded-fallback matrices.  ``attempt`` is
    stamped by the supervisor before each submission.
    """

    seq: int
    first_seq: int
    payload: np.ndarray
    poison: bool = False
    #: One of ``"poison"``/``"kill"``/``"hang"``/``"corrupt-slab"``
    #: (empty = healthy unit); ``poison=True`` is shorthand for "poison".
    fault: str = ""
    #: Sleep duration for ``fault="hang"``.
    hang_s: float = 0.0
    #: Inject the fault only on attempts ``< fail_attempts`` (None = all).
    fail_attempts: int | None = None
    #: Current attempt index (stamped by the supervisor on submission).
    attempt: int = 0

    @property
    def n_wedges(self) -> int:
        return int(self.payload.shape[0]) if self.payload.ndim else 1


#: True only inside a process-pool worker (set by _process_init); the
#: injected "kill" fault SIGKILLs the process there, but must not shoot
#: the serving process itself on the inline/thread levels.
_IN_POOL_WORKER = False


def _maybe_injected_kill(seq: int) -> None:
    """Deterministic worker-death hook for acceptance tests and benches.

    When ``REPRO_SERVE_KILL_FILE`` names an existing file and
    ``REPRO_SERVE_KILL_SEQ`` matches this unit's seq, the worker unlinks
    the file (exactly-once arbitration between racing workers) and
    SIGKILLs itself — a real mid-unit process death on the *real*
    compress/decompress services, no probe item required.
    """

    path = os.environ.get("REPRO_SERVE_KILL_FILE")
    if not path or os.environ.get("REPRO_SERVE_KILL_SEQ") != str(seq):
        return
    try:
        os.unlink(path)
    except OSError:
        return  # another attempt already consumed the kill token
    os.kill(os.getpid(), signal.SIGKILL)


def _probe_work(payload: np.ndarray, poison: bool = False, fault: str = "",
                hang_s: float = 0.0, attempt: int = 0,
                fail_attempts: int | None = None, ring: SlabRing | None = None,
                slab: int | None = None):
    fault = fault or ("poison" if poison else "")
    if fault and fault not in _FAULT_KINDS:
        raise ValueError(f"fault must be one of {_FAULT_KINDS}, got {fault!r}")
    active = bool(fault) and (fail_attempts is None or attempt < fail_attempts)
    if active:
        if fault == "poison":
            raise RuntimeError("injected worker fault (poisoned probe unit)")
        if fault == "hang":
            time.sleep(hang_s)
        else:  # kill / corrupt-slab
            if fault == "corrupt-slab" and ring is not None and slab is not None:
                # A writer dying mid-write: scribble over the slab first.
                ring.view(slab)[:] = b"\xa5" * ring.slab_nbytes
            if _IN_POOL_WORKER:
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerCrashError(f"injected worker crash ({fault} probe unit)")
    # Touch every input byte — a real worker reads its whole unit — and
    # return a checksum small enough that the ack cost is the floor.
    return float(np.asarray(payload).sum(dtype=np.float64))


class HandoffProbeService(ModelPoolService):
    """The serving engine with the model call replaced by a checksum.

    Same batching, pooling, ordering, and transport machinery as the real
    services — but each unit's "work" is reading the payload and returning
    a float.  This isolates the process-boundary hand-off, which is what
    ``bench_serving.py`` gates shm against pickle on, and gives the fault
    tests a worker that fails on command (``ProbeItem.poison``).
    """

    _kind = "probe"

    def __init__(self, config: ServiceConfig | None = None) -> None:
        super().__init__(model=None, config=config)

    def _work(self, compressor: BCAECompressor, item: ProbeItem):
        return _probe_work(item.payload, item.poison, fault=item.fault,
                           hang_s=item.hang_s, attempt=item.attempt,
                           fail_attempts=item.fail_attempts)

    def _adaptive_slab_nbytes(self, item: ProbeItem) -> int:
        """Probe units ship whole arrays; the ack is a float — size the
        slab to the first unit's payload."""

        return int(np.asarray(item.payload).nbytes)

    @staticmethod
    def items(arrays: Sequence[np.ndarray], poison_seqs: Sequence[int] = (),
              faults: dict | None = None, hang_s: float = 0.05,
              fail_attempts: int | None = None) -> list[ProbeItem]:
        """Wrap arrays as probe units, optionally injecting faults.

        ``poison_seqs`` poisons those seqs (back-compat shorthand);
        ``faults`` maps ``seq -> kind`` for the full matrix (see
        :class:`ProbeItem`), with ``hang_s``/``fail_attempts`` applied to
        every injected unit.
        """

        kinds = dict(faults or {})
        for seq in poison_seqs:
            kinds.setdefault(seq, "poison")
        items, first = [], 0
        for seq, a in enumerate(arrays):
            a = np.asarray(a)
            fault = kinds.get(seq, "")
            items.append(ProbeItem(seq=seq, first_seq=first, payload=a,
                                   poison=fault == "poison", fault=fault,
                                   hang_s=hang_s if fault == "hang" else 0.0,
                                   fail_attempts=fail_attempts))
            first += int(a.shape[0]) if a.ndim else 1
        return items

    def run(self, arrays, keep_results: bool = False):
        """Serve arrays (or prebuilt :class:`ProbeItem` units)."""

        items = [a for a in arrays]
        if items and not isinstance(items[0], ProbeItem):
            items = self.items(items)
        return self._collect(self._serve(iter(items)), keep_results)


# ----------------------------------------------------------------------
# Process-backend plumbing: workers own a resident compressor built once in
# the child (model crosses by fork/pickle at pool start, never per unit) and,
# under transport="shm", a mapped view of the parent's slab ring.
# ----------------------------------------------------------------------

_PROCESS_COMPRESSOR: BCAECompressor | None = None
_PROCESS_RING: SlabRing | None = None


def _make_compressor(model, half: bool, precision: str,
                     panel_threads: int | None,
                     rate_policy: str | None = None,
                     rate_budget_mbps: float | None = None):
    """One pooled compressor — plain BCAE, or the adaptive tier around it.

    Shared by the in-process pool (:meth:`ModelPoolService._build_compressor`)
    and the process-backend worker initializer, so every execution level
    hosts the *same* compressor construction (the serving-parity contract).
    """

    compressor = BCAECompressor(model, half=half, precision=precision,
                                panel_threads=panel_threads)
    if rate_policy is None:
        return compressor
    from ..rate import AdaptiveCompressor, make_policy

    return AdaptiveCompressor(
        compressor, make_policy(rate_policy, budget_mbps=rate_budget_mbps)
    )


def _process_init(model, half: bool, ring_spec=None, precision: str = "bit",
                  panel_threads: int | None = None,
                  rate_policy: str | None = None,
                  rate_budget_mbps: float | None = None) -> None:
    global _PROCESS_COMPRESSOR, _PROCESS_RING, _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    _PROCESS_COMPRESSOR = _make_compressor(model, half, precision,
                                           panel_threads, rate_policy,
                                           rate_budget_mbps)
    _PROCESS_RING = SlabRing.attach(ring_spec) if ring_spec is not None else None


def _record(item_or_work, dt: float) -> BatchRecord:
    return BatchRecord(
        seq=item_or_work.seq,
        first_seq=item_or_work.first_seq,
        n_wedges=item_or_work.n_wedges,
        compress_s=dt,
        worker=f"p{os.getpid()}",
        wait_s=getattr(item_or_work, "wait_s", 0.0),
        closed_by=getattr(item_or_work, "closed_by", ""),
    )


def _process_work(kind: str, item) -> tuple[BatchRecord, object]:
    """Pickle-transport worker: the whole unit crossed by value."""

    compressor = _PROCESS_COMPRESSOR
    assert compressor is not None, "process pool initializer did not run"
    _maybe_injected_kill(item.seq)
    t0 = time.perf_counter()
    if kind == "compress":
        result: object = compressor.compress_into(item.wedges)
    elif kind == "decompress":
        result = np.array(compressor.decompress_into(item.compressed))
    else:
        result = _probe_work(item.payload, item.poison, fault=item.fault,
                             hang_s=item.hang_s, attempt=item.attempt,
                             fail_attempts=item.fail_attempts)
    return _record(item, time.perf_counter() - t0), result


@dataclasses.dataclass
class _ShmWork:
    """Slab-transport work descriptor — the only thing pickled per unit."""

    kind: str
    seq: int
    first_seq: int
    n_wedges: int
    array: SlabArray          # the unit's input payload, in its slab
    meta: tuple = ()          # kind-specific extras (see _ProcessTransport)
    wait_s: float = 0.0
    closed_by: str = ""


@dataclasses.dataclass(frozen=True)
class _SlabPayload:
    """Result descriptor: a CompressedWedges whose bytes live in the slab."""

    slab: int
    nbytes: int
    code_shape: tuple[int, ...]
    n_wedges: int
    original_horizontal: int
    half: bool | None
    code_dtype: str
    #: Adaptive-tier extras (None for fixed-rate BCAE payloads).  The
    #: decision ledger is tiny, so it rides in the pickled descriptor
    #: while the record bytes cross through the slab.
    codec_ids: tuple[int, ...] | None = None
    record_sizes: tuple[int, ...] | None = None
    decisions: tuple | None = None


@dataclasses.dataclass(frozen=True)
class _SlabFallback:
    """A result that did not fit its slab and crossed by value instead."""

    value: object


def _process_work_shm(work: _ShmWork) -> tuple[BatchRecord, object]:
    """Slab-transport worker: payloads move by memcpy, never by pickle.

    The input is read in place from the unit's slab; the result is written
    back into the *same* slab (the input has been consumed by then), so one
    lease covers the unit's whole round trip.  Results larger than the slab
    cross by value, wrapped in :class:`_SlabFallback`.
    """

    compressor = _PROCESS_COMPRESSOR
    ring = _PROCESS_RING
    assert compressor is not None and ring is not None, "shm pool init did not run"
    _maybe_injected_kill(work.seq)
    t0 = time.perf_counter()
    result: object
    if work.kind == "compress":
        wedges = ring.read_array(work.array, copy=False)
        if getattr(compressor, "is_adaptive", False):
            # Adaptive records are variable-size, so the payload is
            # compressed to owned bytes first and memcpy'd into the slab
            # when it fits; the tiny decision ledger rides the descriptor.
            compressed = compressor.compress_into(wedges)
            if compressed.nbytes <= ring.slab_nbytes:
                ring.view(work.array.slab, compressed.nbytes)[:] = (
                    compressed.payload
                )
                result = _SlabPayload(
                    slab=work.array.slab,
                    nbytes=compressed.nbytes,
                    code_shape=tuple(compressed.code_shape),
                    n_wedges=compressed.n_wedges,
                    original_horizontal=compressed.original_horizontal,
                    half=compressed.half,
                    code_dtype=compressed.code_dtype,
                    codec_ids=compressed.codec_ids,
                    record_sizes=compressed.record_sizes,
                    decisions=compressed.decisions,
                )
            else:
                result = _SlabFallback(compressed)
        else:
            code_shape = compressor.code_shape_for(wedges.shape[1:])
            code_nbytes = wedges.shape[0] * int(np.prod(code_shape)) * 2
            if code_nbytes <= ring.slab_nbytes:
                # Zero-copy result: compress_into writes the fp16 codes
                # straight into the slab (over the consumed input).
                out = ring.view(work.array.slab)
                compressed = compressor.compress_into(wedges, out=out)
                result = _SlabPayload(
                    slab=work.array.slab,
                    nbytes=compressed.nbytes,
                    code_shape=tuple(compressed.code_shape),
                    n_wedges=compressed.n_wedges,
                    original_horizontal=compressed.original_horizontal,
                    half=compressed.half,
                    code_dtype=compressed.code_dtype,
                )
            else:
                compressed = compressor.compress_into(wedges)
                result = _SlabFallback(dataclasses.replace(
                    compressed, payload=bytes(compressed.payload)
                ))
    elif work.kind == "decompress":
        (code_shape, n_payload, horizontal, half, code_dtype,
         codec_ids, record_sizes, decisions) = work.meta
        compressed = CompressedWedges(
            payload=ring.view(work.array.slab, work.array.nbytes),
            code_shape=code_shape,
            n_wedges=n_payload,
            original_horizontal=horizontal,
            half=half,
            code_dtype=code_dtype,
            codec_ids=codec_ids,
            record_sizes=record_sizes,
            decisions=decisions,
        )
        recon = compressor.decompress_into(compressed)
        if recon.nbytes <= ring.slab_nbytes:
            result = ring.write_array(work.array.slab, recon)
        else:
            result = _SlabFallback(np.array(recon))
    else:
        poison, fault, hang_s, attempt, fail_attempts = work.meta
        result = _probe_work(ring.read_array(work.array, copy=False), poison,
                             fault=fault, hang_s=hang_s, attempt=attempt,
                             fail_attempts=fail_attempts, ring=ring,
                             slab=work.array.slab)
    return _record(work, time.perf_counter() - t0), result


class _ProcessTransport:
    """Per-stream hand-off policy for the process backend.

    Owns the slab ring (``transport="shm"``), decides shm-vs-pickle per
    unit (graceful fallback when a payload exceeds the slab), materializes
    result descriptors, and guarantees every leased slab is released — on
    success, on worker exception, and (via :meth:`close`) when the stream
    is abandoned.  One instance per served stream; :meth:`close` publishes
    debug counters to ``service.last_shm`` and unlinks the segment.
    """

    def __init__(self, service: ModelPoolService) -> None:
        cfg = service.config
        self._service = service
        self._kind = service._kind
        self.ring: SlabRing | None = None
        self.input_fallbacks = 0
        self.result_fallbacks = 0
        self.ring_rebuilds = 0
        self._want_shm = (cfg.transport == "shm" and cfg.workers > 0
                          and shm_available())
        if self._want_shm and cfg.shm_slab_mb is not None:
            self.ring = SlabRing.create(cfg.inflight, cfg.slab_nbytes)
        # Adaptive sizing (shm_slab_mb=None) defers ring creation to
        # ensure_ring(), fed by the first work unit.
        self._had_ring = self.ring is not None

    @property
    def fallbacks(self) -> int:
        """Units that degraded to pickle in either direction (lifetime)."""

        return self.input_fallbacks + self.result_fallbacks

    @property
    def ring_pending(self) -> bool:
        """True while the adaptively-sized ring awaits its first unit."""

        return self._want_shm and self.ring is None

    def ensure_ring(self, item) -> None:
        """Create the adaptively-sized ring from the first unit (no-op
        once the ring exists or shm is not in play).

        The size comes from the owning service's
        ``_adaptive_slab_nbytes`` arithmetic — ``max_batch`` wedges of
        input versus the ``code_shape_for``-sized result — rounded up to
        4 KiB pages so the kernel-page mapping is never partially used.
        """

        if not self.ring_pending:
            return
        nbytes = int(self._service._adaptive_slab_nbytes(item))
        nbytes = max(4096, -(-nbytes // 4096) * 4096)
        self.ring = SlabRing.create(self._service.config.inflight, nbytes)
        self._had_ring = True

    def initargs(self) -> tuple:
        cfg = self._service.config
        spec = self.ring.spec() if self.ring is not None else None
        return (self._service.model, cfg.half, spec, cfg.precision,
                cfg.panel_threads, cfg.rate_policy, cfg.rate_budget_mbps)

    # -- per-kind payload plumbing --------------------------------------
    def _unit_array(self, item) -> np.ndarray:
        if self._kind == "compress":
            return item.wedges
        if self._kind == "decompress":
            return np.frombuffer(item.compressed.payload, dtype=np.uint8)
        return np.asarray(item.payload)

    def _unit_meta(self, item) -> tuple:
        if self._kind == "decompress":
            c = item.compressed
            return (tuple(c.code_shape), c.n_wedges, c.original_horizontal,
                    c.half, c.code_dtype, c.codec_ids, c.record_sizes,
                    c.decisions)
        if self._kind == "probe":
            return (item.poison, item.fault, item.hang_s, item.attempt,
                    item.fail_attempts)
        return ()

    # -- submit/finalize hooks ------------------------------------------
    def submit(self, pool, item):
        ring = self.ring
        if ring is not None:
            array = self._unit_array(item)
            slab = ring.try_lease() if array.nbytes <= ring.slab_nbytes else None
            if slab is not None:
                work = _ShmWork(
                    kind=self._kind,
                    seq=item.seq,
                    first_seq=item.first_seq,
                    n_wedges=item.n_wedges,
                    array=ring.write_array(slab, array),
                    meta=self._unit_meta(item),
                    wait_s=getattr(item, "wait_s", 0.0),
                    closed_by=getattr(item, "closed_by", ""),
                )
                future = pool.submit(_process_work_shm, work)
                future._slab = slab
                # Tag the lease's ring: after a quarantine-and-rebuild,
                # stale futures must not release old-ring indices into
                # the fresh ring (see finalize/fail guards).
                future._ring = ring
                return future
            self.input_fallbacks += 1
        future = pool.submit(_process_work, self._kind, _picklable(item))
        future._slab = None
        future._ring = None
        return future

    def finalize(self, future, record: BatchRecord, result):
        slab = getattr(future, "_slab", None)
        try:
            if isinstance(result, _SlabPayload):
                result = CompressedWedges(
                    payload=self.ring.read_bytes(result.slab, result.nbytes),
                    code_shape=result.code_shape,
                    n_wedges=result.n_wedges,
                    original_horizontal=result.original_horizontal,
                    half=result.half,
                    code_dtype=result.code_dtype,
                    codec_ids=result.codec_ids,
                    record_sizes=result.record_sizes,
                    decisions=result.decisions,
                )
            elif isinstance(result, SlabArray):
                result = self.ring.read_array(result, copy=True)
            elif isinstance(result, _SlabFallback):
                self.result_fallbacks += 1
                result = result.value
            record.transport = "shm" if slab is not None else "pickle"
        finally:
            if slab is not None and getattr(future, "_ring", None) is self.ring:
                self.ring.release(slab)
        return record, result

    def fail(self, future) -> None:
        """Release a failed unit's slab (the worker raised).

        A slab leased from a ring that has since been quarantined is left
        alone — its segment is already destroyed, and its index must not
        alias a lease in the replacement ring.
        """

        slab = getattr(future, "_slab", None)
        if (slab is not None and self.ring is not None
                and getattr(future, "_ring", None) is self.ring):
            self.ring.release(slab)

    # -- crash recovery --------------------------------------------------
    def quarantine_ring(self) -> bool:
        """Replace the slab ring after a worker process died (or hung).

        A dead writer may have left any slab mid-write and its leases can
        never be trusted again, so the whole segment is destroyed
        (reclaiming every lease) and a fresh ring of the same geometry is
        created for the rebuilt pool.  Returns True when a ring was
        actually replaced.
        """

        if self.ring is None:
            return False
        # Replace with the *actual* geometry — under adaptive sizing the
        # live ring's slab size came from the first unit, not the config.
        n_slabs, slab_nbytes = self.ring.n_slabs, self.ring.slab_nbytes
        self.ring.destroy()
        self.ring = SlabRing.create(n_slabs, slab_nbytes)
        self.ring_rebuilds += 1
        return True

    def drop_ring(self) -> None:
        """Destroy the ring with no replacement (degraded below process)."""

        self._want_shm = False
        if self.ring is not None:
            self.ring.destroy()
            self.ring = None

    def close(self) -> None:
        """Publish debug stats and destroy the segment (idempotent)."""

        stats = {
            "transport": "shm" if (self.ring is not None or self._had_ring)
            else "pickle",
            "input_fallbacks": self.input_fallbacks,
            "result_fallbacks": self.result_fallbacks,
            "ring_rebuilds": self.ring_rebuilds,
        }
        if self.ring is not None:
            stats.update(
                name=self.ring.spec().name,
                n_slabs=self.ring.n_slabs,
                slab_nbytes=self.ring.slab_nbytes,
                leased_at_close=self.ring.leased_count(),
            )
            self.ring.destroy()
            self.ring = None
        self._service.last_shm = stats


def _picklable(item):
    """Ensure a fallback unit survives pickling (memoryview payloads)."""

    compressed = getattr(item, "compressed", None)
    if compressed is not None and not isinstance(compressed.payload, bytes):
        return dataclasses.replace(
            item, compressed=dataclasses.replace(
                compressed, payload=bytes(compressed.payload)
            )
        )
    return item


class _Checkout:
    """Per-stream, per-thread compressor checkout.

    Scoped to one stream: each worker thread gets its own compressor from
    the service's idle pool (or a fresh one if the pool is drained by a
    concurrent stream), and everything returns to the pool when the stream
    finishes.  This keeps the non-thread-safe compressor workspaces
    exclusive without any lock on the hot path.
    """

    def __init__(self, service: ModelPoolService) -> None:
        self._service = service
        self._local = threading.local()
        self._lock = threading.Lock()
        self._taken: list[BCAECompressor] = []

    def get(self) -> tuple[str, BCAECompressor]:
        got = getattr(self._local, "checkout", None)
        if got is None:
            compressor = self._service._acquire()
            with self._lock:
                name = f"w{len(self._taken)}"
                self._taken.append(compressor)
            got = (name, compressor)
            self._local.checkout = got
        return got

    def release(self) -> None:
        with self._lock:
            taken, self._taken = self._taken, []
        self._service._release(taken)


class AsyncServingSession:
    """Async façade over one :class:`ModelPoolService` stream.

    Opens the configured backend once (private single-thread executor for
    ``workers=0`` so inline work never blocks the event loop, thread pool,
    or process pool with the shm/pickle transport), then:

    * ``await submit(unit)`` — hands one work unit to the backend and
      returns its :class:`asyncio.Future`.  Backpressure: when
      ``config.inflight`` units are submitted but not yet emitted, submit
      awaits until the consumer pops a result.
    * ``await next_result()`` / ``async for ... in results()`` — ordered
      emission: units come back in submission order regardless of which
      worker finished first.
    * ``await aclose()`` — drains every in-flight unit (nothing is
      orphaned; failed units release their slabs), shuts the backend down,
      and destroys the slab ring.  Also an async context manager.

    A worker exception surfaces on the owning unit's future (and from
    ``next_result`` at that unit's position); other units and later
    streams are unaffected.

    Example
    -------
    >>> async with service.session() as session:         # doctest: +SKIP
    ...     fut = await session.submit(unit)
    ...     async for result in session.results():
    ...         consume(result)
    """

    def __init__(self, service: ModelPoolService) -> None:
        cfg = service.config
        if service._supervisor.drain_requested():
            raise RuntimeError("service is draining/drained — no new sessions")
        self._service = service
        self._loop = asyncio.get_running_loop()
        self._window: collections.deque = collections.deque()
        self._emitted = asyncio.Event()
        self._closed = False
        self._transport: _ProcessTransport | None = None
        self._checkout: _Checkout | None = None
        if cfg.workers > 0 and cfg.backend == "process":
            self._transport = _ProcessTransport(service)
            # Adaptive slab sizing: the ring (and the pool, whose workers
            # attach the ring at init) wait for the first submitted unit.
            self._pool = None
            if not self._transport.ring_pending:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    cfg.workers,
                    initializer=_process_init,
                    initargs=self._transport.initargs(),
                )
        else:
            self._checkout = _Checkout(service)
            self._pool = concurrent.futures.ThreadPoolExecutor(max(1, cfg.workers))

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Units submitted but not yet emitted."""

        return len(self._window)

    @property
    def closed(self) -> bool:
        return self._closed

    async def submit(self, item) -> asyncio.Future:
        """Submit one work unit; returns the unit's future.

        The future completes when the unit's worker finishes, and a worker
        exception surfaces as the future's exception — that is its primary
        contract.  Its *value* is the materialized result only for the
        inline/thread backends; under the process backend it may be an
        internal transport descriptor (the slab is materialized and
        released by the ordered emission path), so consume results through
        :meth:`next_result`/:meth:`results`, not from this future.
        """

        if self._closed:
            raise RuntimeError("session is closed")
        while len(self._window) >= self._service.config.inflight:
            self._emitted.clear()
            await self._emitted.wait()
        if self._pool is None:
            cfg = self._service.config
            self._transport.ensure_ring(item)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                cfg.workers,
                initializer=_process_init,
                initargs=self._transport.initargs(),
            )
        if self._transport is not None:
            cf = self._transport.submit(self._pool, item)
        else:
            cf = self._pool.submit(self._service._execute, self._checkout, item)
        future = asyncio.wrap_future(cf, loop=self._loop)
        future._cf = cf
        self._window.append(future)
        return future

    async def next_result(self) -> tuple[BatchRecord, object]:
        """Await and emit the oldest in-flight unit (submission order)."""

        if not self._window:
            raise RuntimeError("no in-flight units")
        future = self._window.popleft()
        try:
            return await self._finish(future)
        finally:
            self._emitted.set()

    async def results(self) -> AsyncIterator[tuple[BatchRecord, object]]:
        """Ordered async iteration over everything currently in flight."""

        while self._window:
            yield await self.next_result()

    async def _finish(self, future) -> tuple[BatchRecord, object]:
        cf = getattr(future, "_cf", future)
        try:
            record, result = await future
        except BaseException:
            # Release the slab only when the worker is actually done with
            # it (worker exception).  If *this await* was cancelled while
            # the worker still runs, the slab stays leased — it is
            # reclaimed when the ring is destroyed at close, and must not
            # be handed to another unit mid-write.
            if self._transport is not None and cf.done():
                self._transport.fail(cf)
            raise
        if self._transport is not None:
            record, result = self._transport.finalize(cf, record, result)
        return record, result

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Drain in-flight units, release all slabs, shut the backend down.

        Robust to being called from a *cancelled* task (the common early-
        close path): draining may be cut short by the pending
        ``CancelledError``, but the backend shutdown below is synchronous —
        it waits out whatever is still executing — so no unit is ever
        orphaned and the slab ring is always destroyed.  The cancellation
        is re-raised after cleanup.
        """

        if self._closed:
            return
        self._closed = True
        cancelled: BaseException | None = None
        try:
            while self._window:
                try:
                    await self.next_result()
                except asyncio.CancelledError:
                    raise
                except Exception:
                    pass  # drained; the error already surfaced on its future
        except asyncio.CancelledError as exc:
            cancelled = exc
        finally:
            try:
                # Wait out in-flight workers off the event loop so
                # co-scheduled tasks keep running during long compute; if
                # even that wait is cancelled, fall back to blocking —
                # the no-orphaned-work guarantee outranks loop liveness.
                try:
                    if self._pool is not None:
                        await asyncio.get_running_loop().run_in_executor(
                            None, lambda: self._pool.shutdown(wait=True)
                        )
                except asyncio.CancelledError as exc:
                    cancelled = exc
                    self._pool.shutdown(wait=True)
            finally:
                if self._transport is not None:
                    fallbacks = self._transport.fallbacks
                    self._transport.close()
                    if fallbacks:
                        # Surface silent shm→pickle degradation where the
                        # bench/health layers look: the service's fault
                        # totals and the most recent stream's counters.
                        self._service._supervisor.totals.shm_fallbacks += fallbacks
                        self._service._last_faults = FaultCounters(
                            shm_fallbacks=fallbacks
                        )
                if self._checkout is not None:
                    self._checkout.release()
        if cancelled is not None:
            raise cancelled

    async def __aenter__(self) -> "AsyncServingSession":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()


async def _ensure_async(items):
    """Lift a sync iterable of work units into an async one."""

    if hasattr(items, "__aiter__"):
        async for item in items:
            yield item
        return
    for item in items:
        yield item


def _as_stream(source) -> Iterator[StreamItem]:
    if isinstance(source, np.ndarray):
        if source.ndim != 4:
            raise ValueError(f"stacked source must be (N, R, A, H), got {source.shape}")
        return iter_wedges(source)
    iterator = iter(source)
    first = next(iterator, None)
    if first is None:
        return iter(())
    chained = itertools.chain([first], iterator)
    if isinstance(first, StreamItem):
        return chained
    return iter_wedges(chained)


# ----------------------------------------------------------------------
# Health endpoint: the supervision probe over HTTP.
# ----------------------------------------------------------------------


def start_health_server(service: ModelPoolService, port: int = 0,
                        host: str = "127.0.0.1"):
    """Serve :meth:`ModelPoolService.health` as JSON over HTTP.

    Starts a daemon-threaded HTTP server answering ``GET`` on ``/``,
    ``/health`` and ``/healthz`` with the service's current
    :class:`ServiceHealth` as JSON — status 200 while the service accepts
    work (healthy, retrying, rebuilding or degraded) and 503 once it is
    draining/drained, so a load balancer's liveness probe needs no body
    parsing.  ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  Returns the
    :class:`http.server.ThreadingHTTPServer`; call ``server.shutdown()``
    to stop it.  This is what ``repro-tpc serve --health-port`` runs.

    Example
    -------
    >>> server = start_health_server(service)             # doctest: +SKIP
    >>> port = server.server_address[1]                   # doctest: +SKIP
    >>> # curl http://127.0.0.1:$port/healthz
    >>> server.shutdown()                                 # doctest: +SKIP
    """

    import http.server
    import json

    class _Handler(http.server.BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server API name)
            if self.path.split("?", 1)[0] not in ("/", "/health", "/healthz"):
                self.send_error(404)
                return
            health = service.health()
            body = json.dumps(health.to_dict()).encode()
            self.send_response(200 if health.ok else 503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args) -> None:
            pass  # probes are periodic; stay quiet on stderr

    server = http.server.ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-health", daemon=True
    )
    thread.start()
    return server
