"""The streaming compression service: batcher → worker pool → ordered sink.

This is the first executable slice of the ROADMAP's "heavy traffic"
architecture: an always-on loop that turns a wedge stream into a payload
stream.  The shape mirrors a production inference server —

* a :class:`~repro.serve.batcher.MicroBatcher` accumulates arrivals under a
  latency budget;
* a pool of workers, each holding its **own** :class:`BCAECompressor`
  (whose fast-path workspaces are deliberately not shared — no locks on the
  hot path), compresses batches;
* emission is re-ordered to stream order with a bounded in-flight window,
  which doubles as backpressure.

On a single core the pool degenerates gracefully: ``workers=0`` runs
inline (no threads, lowest overhead — the right default for CPU-bound
NumPy), while ``workers>=1`` exercises the real hand-off machinery that a
multi-GPU deployment would use.  Payload bytes are identical to serial
``BCAECompressor.compress`` calls either way.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import itertools
import threading
import time
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.compressor import BCAECompressor, CompressedWedges
from ..perf.timing import ThroughputResult, throughput_from_batches
from .batcher import MicroBatch, MicroBatcher
from .source import StreamItem, iter_wedges

__all__ = ["ServiceConfig", "BatchRecord", "ServiceStats", "StreamingCompressionService"]


@dataclasses.dataclass
class ServiceConfig:
    """Tunables of one service instance.

    Attributes
    ----------
    max_batch:
        Micro-batch size cap (the knee of the Figure-6 batch curve).
    max_delay_s:
        Stream-time accumulation budget (see :class:`MicroBatcher`).
    workers:
        Worker threads.  ``0`` compresses inline on the caller's thread —
        the fastest configuration for single-core NumPy; use ``>= 1`` to
        exercise the pool/ordering machinery (or on BLAS builds that
        release the GIL across multiple cores).
    half:
        fp16 inference mode (paper §3.3 deployment default).
    inflight:
        Bound on batches submitted but not yet emitted (backpressure).
    """

    max_batch: int = 8
    max_delay_s: float = 0.0
    workers: int = 0
    half: bool = True
    inflight: int = 8

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.inflight < 1:
            raise ValueError(f"inflight must be >= 1, got {self.inflight}")


@dataclasses.dataclass
class BatchRecord:
    """Timing record of one compressed batch."""

    seq: int
    first_seq: int
    n_wedges: int
    compress_s: float
    worker: str


@dataclasses.dataclass
class ServiceStats:
    """Aggregate outcome of one served stream."""

    n_wedges: int
    n_batches: int
    elapsed_s: float
    half: bool
    max_batch: int
    workers: int
    records: list[BatchRecord] = dataclasses.field(default_factory=list)

    @property
    def wedges_per_second(self) -> float:
        """End-to-end service throughput (includes batching + hand-off)."""

        return self.n_wedges / max(self.elapsed_s, 1e-12)

    @property
    def mean_batch_s(self) -> float:
        return float(np.mean([r.compress_s for r in self.records])) if self.records else 0.0

    @property
    def p99_batch_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.quantile([r.compress_s for r in self.records], 0.99))

    @property
    def mean_batch_size(self) -> float:
        return self.n_wedges / max(self.n_batches, 1)

    def to_throughput_result(self) -> ThroughputResult:
        """This run in the currency of :mod:`repro.perf` microbenchmarks."""

        return throughput_from_batches(
            [r.n_wedges for r in self.records],
            [r.compress_s for r in self.records],
            self.elapsed_s,
            half=self.half,
        )

    def row(self) -> str:
        """One-line summary for logs and benches."""

        return (
            f"wedges={self.n_wedges} batches={self.n_batches} "
            f"(mean size {self.mean_batch_size:.1f}) "
            f"throughput={self.wedges_per_second:8.1f} w/s "
            f"batch(mean/p99)={self.mean_batch_s * 1e3:6.2f}/{self.p99_batch_s * 1e3:6.2f} ms "
            f"workers={self.workers}"
        )


class StreamingCompressionService:
    """Micro-batching, multi-worker wedge compression.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder`; each worker compiles its own
        compressor (and fast-path workspaces) against it.
    config:
        :class:`ServiceConfig`; defaults are single-core friendly.
    """

    def __init__(self, model, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.model = model
        # Warm compressors are pooled on the instance so back-to-back
        # streams reuse their compiled workspaces; checkouts are per-stream
        # (see _Checkout), so concurrent streams on one service never share
        # a compressor's non-thread-safe scratch.
        self._pool_lock = threading.Lock()
        self._idle: list[BCAECompressor] = [
            BCAECompressor(model, half=self.config.half)
            for _ in range(max(1, self.config.workers))
        ]

    # ------------------------------------------------------------------
    def _acquire(self) -> BCAECompressor:
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
        return BCAECompressor(self.model, half=self.config.half)

    def _release(self, compressors: list[BCAECompressor]) -> None:
        with self._pool_lock:
            self._idle.extend(compressors)

    def _compress_batch(
        self, batch: MicroBatch, checkout: "_Checkout"
    ) -> tuple[BatchRecord, CompressedWedges]:
        name, compressor = checkout.get()
        t0 = time.perf_counter()
        compressed = compressor.compress_into(batch.wedges)
        # The worker's payload buffer is reused per call when `out` is
        # given; compress_into without `out` returns owned bytes — safe to
        # hand across threads.
        dt = time.perf_counter() - t0
        record = BatchRecord(
            seq=batch.seq,
            first_seq=batch.first_seq,
            n_wedges=batch.n_wedges,
            compress_s=dt,
            worker=name,
        )
        return record, compressed

    # ------------------------------------------------------------------
    def compress_stream(
        self, source: Iterable[StreamItem] | Sequence[np.ndarray] | np.ndarray
    ) -> Iterator[tuple[BatchRecord, CompressedWedges]]:
        """Compress a stream; yields ``(record, payload)`` in stream order.

        ``source`` may be an iterable of :class:`StreamItem` (timed), a
        sequence of single wedges, or a stacked ``(N, R, A, H)`` array.
        """

        items = _as_stream(source)
        batches = MicroBatcher(self.config.max_batch, self.config.max_delay_s).batches(items)
        checkout = _Checkout(self)
        try:
            if self.config.workers == 0:
                for batch in batches:
                    yield self._compress_batch(batch, checkout)
                return

            window: collections.deque = collections.deque()
            with concurrent.futures.ThreadPoolExecutor(self.config.workers) as pool:
                for batch in batches:
                    window.append(pool.submit(self._compress_batch, batch, checkout))
                    # Bounded in-flight window: emission order == submission
                    # order == stream order, and the bound is backpressure.
                    while len(window) >= self.config.inflight:
                        yield window.popleft().result()
                while window:
                    yield window.popleft().result()
        finally:
            checkout.release()

    # ------------------------------------------------------------------
    def run(
        self, source, keep_payloads: bool = True
    ) -> tuple[list[CompressedWedges], ServiceStats]:
        """Serve a whole stream; returns payloads (in order) and stats."""

        cfg = self.config
        payloads: list[CompressedWedges] = []
        records: list[BatchRecord] = []
        n_wedges = 0
        t0 = time.perf_counter()
        for record, compressed in self.compress_stream(source):
            records.append(record)
            n_wedges += record.n_wedges
            if keep_payloads:
                payloads.append(compressed)
        elapsed = time.perf_counter() - t0
        stats = ServiceStats(
            n_wedges=n_wedges,
            n_batches=len(records),
            elapsed_s=elapsed,
            half=cfg.half,
            max_batch=cfg.max_batch,
            workers=cfg.workers,
            records=records,
        )
        return payloads, stats


class _Checkout:
    """Per-stream, per-thread compressor checkout.

    Scoped to one ``compress_stream`` call: each worker thread gets its own
    compressor from the service's idle pool (or a fresh one if the pool is
    drained by a concurrent stream), and everything returns to the pool
    when the stream finishes.  This keeps the non-thread-safe compressor
    workspaces exclusive without any lock on the hot path.
    """

    def __init__(self, service: "StreamingCompressionService") -> None:
        self._service = service
        self._local = threading.local()
        self._lock = threading.Lock()
        self._taken: list[BCAECompressor] = []

    def get(self) -> tuple[str, BCAECompressor]:
        got = getattr(self._local, "checkout", None)
        if got is None:
            compressor = self._service._acquire()
            with self._lock:
                name = f"w{len(self._taken)}"
                self._taken.append(compressor)
            got = (name, compressor)
            self._local.checkout = got
        return got

    def release(self) -> None:
        with self._lock:
            taken, self._taken = self._taken, []
        self._service._release(taken)


def _as_stream(source) -> Iterator[StreamItem]:
    if isinstance(source, np.ndarray):
        if source.ndim != 4:
            raise ValueError(f"stacked source must be (N, R, A, H), got {source.shape}")
        return iter_wedges(source)
    iterator = iter(source)
    first = next(iterator, None)
    if first is None:
        return iter(())
    chained = itertools.chain([first], iterator)
    if isinstance(first, StreamItem):
        return chained
    return iter_wedges(chained)
