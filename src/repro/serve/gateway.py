"""Multi-producer sharded serving gateway — the scale-out front door.

The paper's deployment target is a counting house keeping up with *many*
concurrent detector links (§1; the variable-rate follow-up assumes N
streams feeding one compression front door), but one
:class:`~repro.serve.source.AsyncSocketSource` has one reader and one
:class:`~repro.serve.service.ModelPoolService` owns one host.  This module
adds the missing tier:

* :class:`ServingGateway` — an ``asyncio.start_server`` front door
  accepting any number of concurrent producers over the existing
  length-prefixed wedge-frame format (:func:`~repro.serve.source.
  write_wedge_frame`).  Each connection is a *session*: frames are
  micro-batched per session under the service's latency budget
  (:class:`~repro.serve.batcher.AsyncMicroBatcher`), batches are routed to
  a shard, and the resulting fp16 code frames are written back in arrival
  order — one response frame per input wedge, byte-identical to the
  single-service inline path (batch composition never changes payload
  bytes).
* :class:`StreamRouter` — shards sessions across multiple
  ``ModelPoolService`` instances.  Placement is **health-aware** (each
  shard's :class:`~repro.serve.service.ServiceHealth` is consulted;
  degraded shards are used only when no healthy shard has room) and
  **load-aware** (sessions stick to a home shard; a full or unhealthy home
  spills the unit to the least-loaded shard).  Per-shard backpressure
  bounds the units queued + in flight on any one shard.
* Per-shard supervision, lifted from PR 8's per-service layer: every shard
  runs the full supervised engine (retry/backoff, deadlines, pool rebuild,
  circuit-breaker ladder) on its own pump thread, with **one slab ring per
  shard leased across sessions** (the transport is created once per shard
  and reused by consecutive supervised streams, instead of the old
  rebuild-per-stream).  A shard whose supervisor exhausts its backend
  ladder is **evicted**: its in-flight units are re-routed to surviving
  shards (legal — units are idempotent) or failed cleanly per-session
  (:class:`ShardLostError`), never globally.
* :class:`GatewayStats` / :class:`GatewayHealth` — the per-service
  ``ServiceStats``/``FaultCounters``/``ServiceHealth`` aggregated across
  shards; :meth:`ServingGateway.drain` quiesces shard-by-shard.

``repro-tpc serve --shards N --gateway-port P`` wires this up from the
CLI; ``benchmarks/bench_serving.py`` gates aggregate throughput scaling
versus shard count.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import itertools
import logging
import queue
import threading
import time
from typing import Sequence

from ..perf.timing import FaultCounters
from .batcher import AsyncMicroBatcher
from .service import (
    ModelPoolService,
    ServiceHealth,
    ServiceStats,
    WorkerCrashError,
)
from .source import (
    MAX_FRAME_BYTES,
    AsyncSocketSource,
    FrameProtocolError,
    write_wedge_frame,
)

__all__ = [
    "GatewayConfig",
    "GatewayHealth",
    "GatewayStats",
    "ServingGateway",
    "ShardLostError",
    "StreamRouter",
]

_LOG = logging.getLogger("repro.serve.gateway")

#: Pump-queue sentinel: stop the shard's pump thread after the backlog.
_STOP = object()


class ShardLostError(RuntimeError):
    """A shard was evicted and the unit could not be re-routed.

    Raised on a unit's future when its shard exhausted its backend ladder
    (the supervisor's terminal crash state) and no surviving shard could
    take the unit over.  Scoped per unit/session by construction: other
    sessions and the gateway itself keep serving on the remaining shards.
    """


@dataclasses.dataclass
class GatewayConfig:
    """Tunables of one :class:`ServingGateway`.

    Attributes
    ----------
    host / port:
        Bind address of the front door.  ``port=0`` (default) binds an
        ephemeral port; read the actual one from
        :attr:`ServingGateway.port` after :meth:`ServingGateway.start`.
    inflight_per_shard:
        Backpressure bound: units queued or executing on any one shard.
        A session whose home shard is at the bound spills to the
        least-loaded shard; when *every* shard is at the bound the
        submitter awaits capacity.
    max_frame_bytes:
        Per-frame body cap handed to every session's socket source (see
        :func:`~repro.serve.source.read_wedge_frame`); ``None`` disables
        the cap — never do that for untrusted producers.

    Example
    -------
    >>> from repro.serve import GatewayConfig
    >>> GatewayConfig(inflight_per_shard=4).inflight_per_shard
    4
    """

    host: str = "127.0.0.1"
    port: int = 0
    inflight_per_shard: int = 8
    max_frame_bytes: int | None = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.inflight_per_shard < 1:
            raise ValueError(
                f"inflight_per_shard must be >= 1, got {self.inflight_per_shard}"
            )
        if self.max_frame_bytes is not None and self.max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1 or None, got {self.max_frame_bytes}"
            )


@dataclasses.dataclass
class GatewayStats:
    """Aggregate outcome across every shard of a gateway.

    ``per_shard`` holds one :class:`~repro.serve.service.ServiceStats`
    per shard (lifetime units/wedges served by that shard's pump, its
    fault counters and effective ladder level); the scalar fields roll
    those up, plus the gateway-level session and re-routing counts.
    """

    n_sessions: int
    n_units: int
    n_wedges: int
    rerouted: int
    lost_shards: int
    per_shard: list[ServiceStats] = dataclasses.field(default_factory=list)

    @property
    def faults(self) -> FaultCounters:
        """Fault counters merged across all shards."""

        merged = FaultCounters()
        for stats in self.per_shard:
            merged.merge(stats.faults)
        return merged

    def row(self) -> str:
        """One-line summary for logs and benches."""

        line = (
            f"sessions={self.n_sessions} units={self.n_units} "
            f"wedges={self.n_wedges} shards={len(self.per_shard)}"
        )
        if self.rerouted or self.lost_shards:
            line += f" rerouted={self.rerouted} lost_shards={self.lost_shards}"
        faults = self.faults
        if faults.total or faults.retries or faults.degraded:
            line += f" faults[{faults.row()}]"
        return line


@dataclasses.dataclass
class GatewayHealth:
    """Point-in-time supervision probe across every shard.

    ``shards`` holds each live shard's
    :class:`~repro.serve.service.ServiceHealth` (evicted shards keep a
    terminal entry with ``state="lost"`` spliced in by the router);
    ``state`` summarizes the gateway: ``"healthy"`` while every shard is
    healthy, ``"degraded"`` when any shard is degraded or lost but work
    is still accepted, ``"draining"``/``"drained"`` once
    :meth:`ServingGateway.drain` runs.
    """

    state: str
    shards: list[ServiceHealth]
    lost: list[int]

    @property
    def ok(self) -> bool:
        """Liveness verdict: at least one shard still accepts work."""

        return self.state not in ("draining", "drained") and any(
            h.ok and h.state != "lost" for h in self.shards
        )

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form."""

        return dataclasses.asdict(self)


@dataclasses.dataclass
class _GatewayUnit:
    """One routed work unit: the item, its asyncio future, bookkeeping."""

    item: object
    future: asyncio.Future
    session: int = -1
    shard: "_Shard | None" = None


class _Shard:
    """One shard: a supervised service plus its pump thread and queue.

    The pump thread feeds a ``queue.SimpleQueue`` of routed units into
    ``service._serve`` — the *full* PR-8 supervision stack (retries,
    deadlines, pool rebuild, ladder step-downs) runs unchanged under the
    gateway.  The shard's ``_ProcessTransport`` (when the config runs a
    process pool) is created once and lent to every supervised stream, so
    one slab ring is leased across all sessions instead of being rebuilt
    per stream.  A unit whose error surfaces is charged to its own future;
    innocent in-flight units re-drive on a fresh stream.  A crash-class
    error at the ladder's last rung marks the shard **lost**: the router
    re-homes its orphans or fails them per-session.
    """

    def __init__(self, index: int, service: ModelPoolService,
                 router: "StreamRouter") -> None:
        self.index = index
        self.service = service
        self.router = router
        self.lost = False
        self.stopped = False
        # Router-side (event-loop thread) occupancy: queued + executing.
        self.load = 0
        # Pump-side accumulators (single writer: the pump thread).
        self.n_units = 0
        self.n_wedges = 0
        self.started_s = time.monotonic()
        self.elapsed_s = 0.0
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._pending: collections.deque = collections.deque()
        self._saw_stop = False
        self._transport = service._make_transport()
        self._thread = threading.Thread(
            target=self._pump, name=f"repro-gateway-shard{index}", daemon=True
        )
        self._thread.start()

    # -- router side (event-loop thread) --------------------------------
    @property
    def accepting(self) -> bool:
        """Whether the router may place new units here."""

        return (not self.lost and not self.stopped
                and self.service.health().ok)

    def health_rank(self) -> int:
        """Placement preference: 0 = healthy, 1 = degraded/recovering."""

        return 0 if self.service._supervisor.state() == "healthy" else 1

    def enqueue(self, entry: _GatewayUnit) -> None:
        """Hand one unit to the pump (event-loop thread only)."""

        if self.lost or self.stopped:
            raise RuntimeError(f"shard {self.index} is not accepting units")
        entry.shard = self
        self.load += 1
        self._queue.put(entry)

    def stop(self) -> None:
        """Ask the pump to exit after the queued backlog (idempotent)."""

        if not self.stopped:
            self.stopped = True
            self._queue.put(_STOP)

    def join(self, timeout: float | None = None) -> None:
        """Wait for the pump thread to exit (call off the event loop)."""

        self._thread.join(timeout)

    def stats(self) -> ServiceStats:
        """This shard's lifetime serving totals as a ServiceStats."""

        cfg = self.service.config
        sup = self.service._supervisor
        elapsed = self.elapsed_s or (time.monotonic() - self.started_s)
        return ServiceStats(
            n_wedges=self.n_wedges,
            n_batches=self.n_units,
            elapsed_s=elapsed,
            half=cfg.half,
            max_batch=cfg.max_batch,
            workers=cfg.workers,
            records=[],
            faults=dataclasses.replace(sup.totals),
            level="lost" if self.lost else sup.level,
        )

    def health(self) -> ServiceHealth:
        """The shard's ServiceHealth (terminal ``state="lost"`` once
        evicted)."""

        health = self.service.health()
        if self.lost:
            health.state = "lost"
        return health

    def close_transport(self) -> None:
        """Destroy the shard's shared ring (publishes ``last_shm``);
        idempotent."""

        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    # -- pump side (shard thread) ---------------------------------------
    def _items(self, recovered: list[_GatewayUnit]):
        """The supervised stream's item source: re-driven units first,
        then the live queue, with a window flush whenever it runs dry."""

        for entry in recovered:
            self._pending.append(entry)  # lint: allow-alloc
            yield entry.item
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                if self._pending:
                    # Nothing queued but results are in flight: flush the
                    # window so sessions get their responses *now*, then
                    # block for the next unit.
                    yield ModelPoolService._FLUSH
                entry = self._queue.get()
            if entry is _STOP:
                self._saw_stop = True
                return
            if entry.future.cancelled():
                self._call_loop(self._router_discard, entry)
                continue
            self._pending.append(entry)  # lint: allow-alloc
            yield entry.item

    def _pump(self) -> None:
        """Thread main: run supervised streams until stop or shard loss."""

        recovered: list[_GatewayUnit] = []
        while True:
            # The shared transport is only meaningful while the shard
            # still executes at the process level.
            transport = self._transport
            if (transport is not None
                    and self.service._supervisor.level != "process"):
                transport = None
            source = self._items(recovered)
            recovered = []
            try:
                for record, result in self.service._serve(
                        source, transport=transport):
                    entry = self._pending.popleft()
                    self.n_units += 1
                    self.n_wedges += record.n_wedges
                    self._call_loop(self._resolve, entry, record, result)
            except Exception as exc:
                source.close()
                victim = self._pending.popleft() if self._pending else None
                sup = self.service._supervisor
                # Ladder exhausted = a crash *at* the last rung.  A crash
                # that merely degraded onto the last rung resets the
                # breaker's counter, so the rung still gets its chance.
                shard_lost = (isinstance(exc, WorkerCrashError)
                              and sup.level == sup.ladder[-1]
                              and sup.consecutive_crashes > 0)
                if shard_lost or sup.draining:
                    # Evict *before* rejecting the victim: by the time
                    # the owner observes its failure, the router has
                    # already marked the shard lost and re-homed the
                    # surviving in-flight units.
                    self._die(exc)
                    if victim is not None:
                        self._call_loop(self._reject, victim, exc)
                    return
                if victim is not None:
                    self._call_loop(self._reject, victim, exc)
                # Innocent in-flight units re-drive on a fresh stream
                # (legal: units are idempotent), uncharged.
                recovered = list(self._pending)
                self._pending.clear()
                continue
            if not self._saw_stop:
                # The stream ended without _STOP: the service was drained
                # externally (its drain latch broke the item loop).  The
                # shard cannot serve again — evict it so queued/future
                # units re-route instead of parking in a dead queue.
                self._die(RuntimeError(
                    f"shard {self.index} service drained externally"))
                return
            # _STOP: the backlog is flushed and every pending unit was
            # emitted by the stream's final window drain.
            self.elapsed_s = time.monotonic() - self.started_s
            return

    def _die(self, exc: BaseException) -> None:
        """Evict this shard: orphans go back to the router for re-homing."""

        self.elapsed_s = time.monotonic() - self.started_s
        # Eviction releases the shard's shared ring right away — a lost
        # shard must not leak slabs while the gateway keeps serving.
        self.close_transport()
        orphans = list(self._pending)
        self._pending.clear()
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                break
            if entry is _STOP:
                break
            orphans.append(entry)  # lint: allow-alloc
        self._call_loop(self.router._on_shard_lost, self, orphans, exc)

    # -- cross-thread hand-off ------------------------------------------
    def _call_loop(self, fn, *args) -> None:
        try:
            self.router._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed during teardown

    def _resolve(self, entry: _GatewayUnit, record, result) -> None:
        self.load -= 1
        if not entry.future.done():
            entry.future.set_result((record, result))
        self.router._capacity.set()

    def _reject(self, entry: _GatewayUnit, exc: BaseException) -> None:
        self.load -= 1
        if not entry.future.done():
            entry.future.set_exception(exc)
        self.router._capacity.set()

    def _router_discard(self, entry: _GatewayUnit) -> None:
        self.load -= 1
        self.router._capacity.set()


class StreamRouter:
    """Shard sessions across services: placement, backpressure, eviction.

    Owns one :class:`_Shard` per service.  All routing state (per-shard
    load, session affinity, eviction) mutates on the event-loop thread
    only — shard pumps talk back through ``call_soon_threadsafe`` — so the
    router needs no locks.

    Placement policy, in order:

    1. a session's **home shard** (assigned on its first unit) while it is
       accepting and under the in-flight bound;
    2. otherwise **spill**: the accepting shard with the best
       ``(health_rank, load)`` — healthy shards before degraded ones,
       least-loaded first;
    3. every shard at the bound → await capacity;
    4. no accepting shard at all → :class:`ShardLostError`.
    """

    def __init__(self, services: Sequence[ModelPoolService],
                 inflight_per_shard: int = 8) -> None:
        if not services:
            raise ValueError("StreamRouter needs at least one service")
        self._services = list(services)
        self._inflight_per_shard = int(inflight_per_shard)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shards: list[_Shard] = []
        self._capacity: asyncio.Event | None = None
        self._homes: dict[int, _Shard] = {}
        self.rerouted = 0
        self.lost_shards = 0
        self._draining = False
        self._drained = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Stand the shard pumps up (must run inside the event loop)."""

        if self._shards:
            return
        self._loop = asyncio.get_running_loop()
        self._capacity = asyncio.Event()
        self._shards = [
            _Shard(i, service, self)
            for i, service in enumerate(self._services)
        ]

    def drain_requested(self) -> bool:
        """The intake latch session batchers poll (drain in progress)."""

        return self._draining

    @property
    def shards(self) -> int:
        """Number of shards (including evicted ones)."""

        return len(self._shards)

    # ------------------------------------------------------------------
    def _accepting(self) -> list[_Shard]:
        return [s for s in self._shards if s.accepting]

    def _place(self, session: int) -> "_Shard | None":
        home = self._homes.get(session)
        if (home is not None and home.accepting
                and home.load < self._inflight_per_shard):
            return home
        candidates = self._accepting()
        if not candidates:
            return None
        best = min(candidates, key=lambda s: (s.health_rank(), s.load))
        if best.load >= self._inflight_per_shard:
            return None  # backpressure: every accepting shard is full
        if home is not None and best is not home:
            self.rerouted += 1
        self._homes[session] = best
        return best

    async def submit(self, item, session: int = -1) -> asyncio.Future:
        """Route one unit; returns its future (``(record, result)``).

        Awaits while every accepting shard is at the in-flight bound
        (per-shard backpressure); raises :class:`ShardLostError` when no
        shard accepts work, and ``RuntimeError`` once draining.
        """

        while True:
            if self._draining:
                raise RuntimeError("gateway is draining/drained — no new units")
            shard = self._place(session)
            if shard is not None:
                break
            if not self._accepting():
                raise ShardLostError(
                    "no shard accepts work — every shard is lost or draining"
                )
            self._capacity.clear()
            await self._capacity.wait()
        entry = _GatewayUnit(item=item, future=self._loop.create_future(),
                             session=session)
        shard.enqueue(entry)
        return entry.future

    # ------------------------------------------------------------------
    def _on_shard_lost(self, shard: _Shard, orphans: list[_GatewayUnit],
                       exc: BaseException) -> None:
        """Evict a dead shard; re-home its orphans (event-loop thread)."""

        if not shard.lost:
            shard.lost = True
            self.lost_shards += 1
            _LOG.warning("gateway shard %d lost (%s); re-routing %d units",
                         shard.index, exc, len(orphans))
        shard.load -= len(orphans)
        for entry in orphans:
            if entry.future.done() or entry.future.cancelled():
                continue
            candidates = self._accepting()
            if not candidates:
                error = ShardLostError(
                    f"shard {shard.index} lost and no surviving shard "
                    f"could take unit over"
                )
                error.__cause__ = exc
                entry.future.set_exception(error)
                continue
            # Over-bound placement is allowed here: losing a shard must
            # not deadlock its survivors' backpressure.
            target = min(candidates, key=lambda s: (s.health_rank(), s.load))
            if entry.session >= 0:
                self._homes[entry.session] = target
            self.rerouted += 1
            target.enqueue(entry)
        self._capacity.set()

    # ------------------------------------------------------------------
    def health(self) -> list[ServiceHealth]:
        """Per-shard ServiceHealth snapshots (lost shards marked)."""

        return [shard.health() for shard in self._shards]

    def stats(self) -> GatewayStats:
        """Aggregate GatewayStats across shards (sessions filled by the
        gateway)."""

        per_shard = [shard.stats() for shard in self._shards]
        return GatewayStats(
            n_sessions=0,
            n_units=sum(s.n_batches for s in per_shard),
            n_wedges=sum(s.n_wedges for s in per_shard),
            rerouted=self.rerouted,
            lost_shards=self.lost_shards,
            per_shard=per_shard,
        )

    async def drain(self, timeout: float | None = None) -> bool:
        """Quiesce shard-by-shard: stop intake, flush, tear down rings.

        Each shard in turn: the pump stops after its queued backlog, the
        underlying service drains (flushing every in-flight unit), and
        the shard's shared slab ring is destroyed — so no slab is leaked
        and later shards keep serving while earlier ones flush.  Returns
        True when every shard fully drained.
        """

        self._draining = True
        if self._capacity is not None:
            self._capacity.set()
        ok = True
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            shard.stop()
            await loop.run_in_executor(None, shard.join, timeout)
            drained = await loop.run_in_executor(
                None, lambda s=shard: s.service.drain(True, timeout)
            )
            ok = ok and drained
            shard.close_transport()
        self._drained = True
        return ok


class ServingGateway:
    """The multi-producer front door: N sockets in, code frames out.

    Accepts concurrent TCP producers speaking the wedge-frame protocol,
    micro-batches each connection under the shards' latency budget,
    routes batches through a :class:`StreamRouter`, and answers every
    input wedge with one fp16 code frame in arrival order.  Producer
    faults are contained per session: a clean EOF ends the session after
    its responses flush, a mid-frame death or malformed frame fails that
    session alone and never touches the shards.

    Parameters
    ----------
    services:
        One ``ModelPoolService`` per shard (typically
        ``StreamingCompressionService`` instances sharing one model).
    config:
        :class:`GatewayConfig`; defaults bind an ephemeral local port.

    Example
    -------
    >>> gateway = ServingGateway([service_a, service_b])   # doctest: +SKIP
    >>> await gateway.start()                              # doctest: +SKIP
    >>> print(gateway.port)                                # doctest: +SKIP
    >>> await gateway.drain(); await gateway.aclose()      # doctest: +SKIP
    """

    def __init__(self, services: Sequence[ModelPoolService],
                 config: GatewayConfig | None = None) -> None:
        self.config = config or GatewayConfig()
        self.router = StreamRouter(
            services, inflight_per_shard=self.config.inflight_per_shard
        )
        self._server: asyncio.AbstractServer | None = None
        self._sessions: set[asyncio.Task] = set()
        self._session_ids = itertools.count()
        self.n_sessions = 0

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""

        if self._server is None:
            raise RuntimeError("gateway is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ServingGateway":
        """Bind the socket server and stand the shard pumps up."""

        if self._server is not None:
            return self
        self.router.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        return self

    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One producer session: frames → batches → shard → code frames."""

        task = asyncio.current_task()
        self._sessions.add(task)
        self.n_sessions += 1
        session = next(self._session_ids)
        try:
            await self._serve_session(session, reader, writer)
        finally:
            self._sessions.discard(task)

    async def _serve_session(self, session: int,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        # The source gets only the reader: its EOF cleanup must not close
        # the transport while responses are still being written back.
        source = AsyncSocketSource(
            reader, None, max_frame_bytes=self.config.max_frame_bytes
        )
        svc_cfg = self.router._services[0].config
        batcher = AsyncMicroBatcher(svc_cfg.max_batch, svc_cfg.max_delay_s)
        pending: asyncio.Queue = asyncio.Queue()
        done = object()

        async def respond() -> None:
            # Ordered responses: futures resolve out of order across
            # shards, but are awaited (and written) in submission order.
            while True:
                future = await pending.get()
                if future is done:
                    return
                record, payload = await future
                if getattr(payload, "codec_ids", None) is not None:
                    # Adaptive tier: answer each wedge with a codec record
                    # frame (payload bytes + the RateDecision fields), so
                    # the producer can rebuild both the archive and the
                    # decision ledger byte-for-byte.
                    from ..rate.records import encode_record_frames

                    for frame in encode_record_frames(payload):
                        write_wedge_frame(writer, frame)
                else:
                    codes = payload.codes_view()
                    for i in range(codes.shape[0]):
                        write_wedge_frame(writer, codes[i])
                await writer.drain()

        responder = asyncio.create_task(respond())
        try:
            try:
                async for batch in batcher.batches(
                        source, stop=self.router.drain_requested):
                    future = await self.router.submit(batch, session=session)
                    pending.put_nowait(future)
            except (FrameProtocolError, ShardLostError, RuntimeError) as exc:
                # Malformed frame, mid-frame producer death, or intake
                # refused (drain / every shard lost): this session fails
                # alone; batches already routed still answer below.
                _LOG.warning("gateway session %d: %s", session, exc)
            finally:
                pending.put_nowait(done)
                try:
                    await responder
                except (ShardLostError, RuntimeError,
                        ConnectionError, OSError) as exc:
                    # Unit failed terminally or the peer vanished — close
                    # this session; the early EOF is its failure signal.
                    _LOG.warning("gateway session %d failed: %s", session, exc)
                except Exception as exc:
                    _LOG.warning("gateway session %d failed: %s", session, exc)
        finally:
            responder.cancel()
            try:
                # Explicit half-close (TCP shutdown), not just close(): a
                # process-backend worker forked while this connection was
                # open inherits a duplicate of the socket fd, and a plain
                # close() would never surface EOF to the producer.
                if writer.can_write_eof():
                    writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    def health(self) -> GatewayHealth:
        """Aggregate gateway health: per-shard ServiceHealth + verdict."""

        shards = self.router.health()
        if self.router._drained:
            state = "drained"
        elif self.router._draining:
            state = "draining"
        elif all(h.state == "healthy" for h in shards):
            state = "healthy"
        else:
            state = "degraded"
        lost = [s.index for s in self.router._shards if s.lost]
        return GatewayHealth(state=state, shards=shards, lost=lost)

    def stats(self) -> GatewayStats:
        """Aggregate GatewayStats across shards and sessions."""

        stats = self.router.stats()
        stats.n_sessions = self.n_sessions
        return stats

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop intake and quiesce shard-by-shard (see
        :meth:`StreamRouter.drain`).

        Waits briefly for live sessions to flush their final
        ``closed_by="drain"`` batches before the shards stop.
        """

        self.router._draining = True
        if self._server is not None:
            self._server.close()
        deadline = time.monotonic() + (timeout if timeout is not None else 10.0)
        while self._sessions and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        return await self.router.drain(timeout=timeout)

    async def aclose(self) -> None:
        """Close the server and tear every shard down (drains first)."""

        if not self.router._drained:
            await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._sessions):
            task.cancel()

    async def __aenter__(self) -> "ServingGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
