"""Shared-memory slab ring — the zero-copy process-boundary hand-off.

The process backend's original transport pickles every work unit and result
across the executor pipe: for paper-scale wedge batches that is several
copies plus chunked pipe syscalls *per unit*, all serialized through the
parent.  This module replaces the payload bytes with a ring of pre-sized
slabs in one :class:`multiprocessing.shared_memory.SharedMemory` segment:

* the parent leases a slab, memcpys the unit's payload array into it, and
  submits only a tiny descriptor (slab index + dtype/shape header) through
  the executor;
* the worker maps the same segment once (at pool init), reads the payload
  in place, and writes its *result* back into the same slab — the input has
  been consumed by then, so one slab serves both directions of a unit;
* the parent copies the result out and releases the slab.

Lease bookkeeping lives entirely in the parent (the submit/emit loop is
single-threaded), so there are no cross-process locks: exclusivity comes
from the lease protocol — a slab is touched by exactly one side at a time.

Units larger than a slab degrade gracefully to the pickle transport (the
descriptor is simply not used); see ``ServiceConfig.shm_slab_mb``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

try:  # pragma: no cover - exercised indirectly everywhere below
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    shared_memory = None

__all__ = ["SlabSpec", "SlabArray", "SlabRing", "shm_available"]


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` exists on this platform."""

    return shared_memory is not None


@dataclasses.dataclass(frozen=True)
class SlabSpec:
    """Pickle-cheap handle workers use to attach to the creator's ring."""

    name: str
    n_slabs: int
    slab_nbytes: int


@dataclasses.dataclass(frozen=True)
class SlabArray:
    """Descriptor of an ndarray stored at the start of one slab.

    This — not the array — is what crosses the process boundary: a few
    dozen bytes regardless of payload size.
    """

    slab: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SlabRing:
    """A fixed set of equally sized slabs in one shared-memory segment.

    Create with :meth:`create` in the parent (which owns the lease state and
    the segment's lifetime) and :meth:`attach` in workers (read/write views
    only).  All offsets are ``slab * slab_nbytes``; payloads always start at
    offset 0 of their slab.

    Example
    -------
    >>> ring = SlabRing.create(n_slabs=4, slab_nbytes=1 << 20)
    >>> slab = ring.try_lease()                   # parent: pick a free slab
    >>> ring.view(slab, 3)[:] = b"abc"            # memcpy the unit in
    >>> worker = SlabRing.attach(ring.spec())     # in the worker process
    >>> bytes(worker.view(slab, 3))
    b'abc'
    >>> ring.release(slab); worker.close(); ring.destroy()
    """

    def __init__(self, shm, n_slabs: int, slab_nbytes: int, owner: bool) -> None:
        self._shm = shm
        self.n_slabs = int(n_slabs)
        self.slab_nbytes = int(slab_nbytes)
        self._owner = owner
        # Parent-side lease state; workers never touch it.
        self._free: list[int] = list(range(self.n_slabs - 1, -1, -1)) if owner else []
        self._leased: set[int] = set()
        # Slabs released since their last lease: release() stays idempotent
        # for these, but rejects slabs that were never leased at all.
        self._released: set[int] = set()

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, n_slabs: int, slab_nbytes: int) -> "SlabRing":
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if n_slabs < 1:
            raise ValueError(f"n_slabs must be >= 1, got {n_slabs}")
        if slab_nbytes < 1:
            raise ValueError(f"slab_nbytes must be >= 1, got {slab_nbytes}")
        shm = shared_memory.SharedMemory(create=True, size=n_slabs * slab_nbytes)
        return cls(shm, n_slabs, slab_nbytes, owner=True)

    @classmethod
    def attach(cls, spec: SlabSpec) -> "SlabRing":
        # The attaching worker must not count the segment as its own to
        # clean up — the creator unlinks it.  ``track=False`` (3.13+) says
        # exactly that; under fork on older Pythons the worker shares the
        # parent's resource tracker, where re-registering the same name is
        # an idempotent no-op, so plain attach is already safe.
        try:
            shm = shared_memory.SharedMemory(name=spec.name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13
            shm = shared_memory.SharedMemory(name=spec.name)
        return cls(shm, spec.n_slabs, spec.slab_nbytes, owner=False)

    def spec(self) -> SlabSpec:
        """Pickle-cheap handle for :meth:`attach` in a worker process."""

        return SlabSpec(self._shm.name, self.n_slabs, self.slab_nbytes)

    # ------------------------------------------------------------------
    # lease protocol (parent side)
    # ------------------------------------------------------------------
    @property
    def leased(self) -> int:
        return len(self._leased)

    def leased_count(self) -> int:
        """Slabs currently leased (the in-flight shm unit count).

        Zero whenever the lease protocol has balanced — the invariant the
        leak helpers, the supervision tests, and
        :meth:`~repro.serve.ModelPoolService.health` all check through
        this one accessor.
        """

        return len(self._leased)

    def stats(self) -> dict:
        """Occupancy snapshot: ``n_slabs``/``slab_nbytes``/``leased``/``free``.

        The shared source of truth for health probes and tests; cheap
        (four ints, no locks — parent-side lease state only).
        """

        return {
            "n_slabs": self.n_slabs,
            "slab_nbytes": self.slab_nbytes,
            "leased": len(self._leased),
            "free": len(self._free),
        }

    def assert_no_leaks(self, context: str = "") -> None:
        """Raise ``AssertionError`` naming any slab still leased.

        The post-stream invariant: every lease was balanced by a release
        on the success path, the failure hook, or the crash-recovery
        quarantine.  Tests and benches call this instead of re-deriving
        the check from private state.
        """

        if self._leased:
            where = f" after {context}" if context else ""
            raise AssertionError(
                f"slab ring leaked {len(self._leased)} lease(s){where}: "
                f"slabs {sorted(self._leased)} of {self.n_slabs}"
            )

    def try_lease(self) -> int | None:
        """Take a free slab, or ``None`` when the ring is exhausted."""

        if not self._free:
            return None
        slab = self._free.pop()
        self._leased.add(slab)
        self._released.discard(slab)
        return slab

    def release(self, slab: int) -> None:
        """Return a leased slab to the free list.

        Idempotent per lease: the success path and the failure hook may
        both release the same slab (the second call is a no-op).  A slab
        that was *never* leased raises — silently accepting any index
        would mask double-release bugs the lease-discipline lint
        (``repro.analysis.concurrency_lint``) exists to catch.
        """

        if slab in self._leased:
            self._leased.discard(slab)
            self._released.add(slab)
            self._free.append(slab)
        elif slab not in self._released:
            raise ValueError(
                f"release of slab {slab!r} that was never leased "
                f"({self.n_slabs}-slab ring, {len(self._leased)} leased)"
            )

    # ------------------------------------------------------------------
    # payload access (both sides)
    # ------------------------------------------------------------------
    def view(self, slab: int, nbytes: int | None = None) -> memoryview:
        """Writable bytes view of one slab (its first ``nbytes`` bytes)."""

        start = slab * self.slab_nbytes
        stop = start + (self.slab_nbytes if nbytes is None else nbytes)
        return self._shm.buf[start:stop]

    def write_array(self, slab: int, array: np.ndarray) -> SlabArray:
        """memcpy ``array`` into ``slab``; returns the wire descriptor."""

        array = np.ascontiguousarray(array)
        if array.nbytes > self.slab_nbytes:
            raise ValueError(
                f"array of {array.nbytes} bytes exceeds slab size {self.slab_nbytes}"
            )
        dest = np.frombuffer(self.view(slab, array.nbytes), dtype=array.dtype)
        np.copyto(dest.reshape(array.shape), array)
        return SlabArray(slab=slab, shape=tuple(array.shape), dtype=array.dtype.str)

    def read_array(self, desc: SlabArray, copy: bool = True) -> np.ndarray:
        """The array a descriptor points at — owned copy or in-place view."""

        arr = np.frombuffer(
            self.view(desc.slab, desc.nbytes), dtype=np.dtype(desc.dtype)
        ).reshape(desc.shape)
        if copy:
            return arr.copy()
        arr.flags.writeable = False
        return arr

    def read_bytes(self, slab: int, nbytes: int) -> bytes:
        """Owned copy of the first ``nbytes`` payload bytes of a slab."""

        return bytes(self.view(slab, nbytes))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap this process's view (workers call this implicitly at exit)."""

        try:
            self._shm.close()
        except Exception:
            pass

    def destroy(self) -> None:
        """Unmap and unlink the segment (creator only; idempotent)."""

        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._owner = False
