"""Scalar quantizers for the baseline codecs."""

from __future__ import annotations

import numpy as np

__all__ = ["ErrorBoundedQuantizer", "UniformQuantizer"]


class ErrorBoundedQuantizer:
    """Mid-tread uniform quantizer with a hard absolute error bound.

    ``quantize`` maps to integer bin indices with step ``2·eb``; dequantized
    values satisfy ``|x - x̂| ≤ eb`` in exact arithmetic (the SZ-style
    guarantee).  Because reconstructions are returned as float32, the
    realized bound carries one extra float32 ulp of the value magnitude:
    ``|x - x̂| ≤ eb·(1+1e-5) + |x|·2⁻²³``.
    """

    def __init__(self, error_bound: float) -> None:
        if error_bound <= 0:
            raise ValueError("error bound must be positive")
        self.error_bound = float(error_bound)
        self.step = 2.0 * self.error_bound

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Values → int64 bin indices."""

        return np.rint(values / self.step).astype(np.int64)

    def dequantize(self, bins: np.ndarray) -> np.ndarray:
        """Bin indices → reconstructed float32 values."""

        return (bins.astype(np.float64) * self.step).astype(np.float32)

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """quantize → dequantize (the lossy map applied to the data)."""

        return self.dequantize(self.quantize(values))


class UniformQuantizer:
    """Fixed-width signed quantizer over a known symmetric range.

    Used by the ZFP-like block codec: coefficients in ``[-amax, amax]`` map
    to ``bits``-bit signed integers (two's-complement offset form).
    """

    def __init__(self, amax: float, bits: int) -> None:
        if bits < 1 or bits > 32:
            raise ValueError("bits must be in [1, 32]")
        self.amax = float(max(amax, 1e-30))
        self.bits = int(bits)
        self.levels = (1 << bits) - 1
        self.step = 2.0 * self.amax / self.levels

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Values → unsigned codes in ``[0, 2^bits - 1]``."""

        q = np.rint((values + self.amax) / self.step)
        return np.clip(q, 0, self.levels).astype(np.uint64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Unsigned codes → reconstructed float32 values."""

        return (codes.astype(np.float64) * self.step - self.amax).astype(np.float32)

    @property
    def max_error(self) -> float:
        """Half a step — the in-range quantization error bound."""

        return 0.5 * self.step
