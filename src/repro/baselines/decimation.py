"""Decimation baseline: the naive fixed-rate compressor.

Average-pool by an integer factor, store the coarse grid as fp16, upsample
on decompression.  This is the "do nothing clever" reference point every
compression study needs: its ratio is exactly the pooling volume and its
error on sparse data is dominated by smearing the occupied/empty boundary —
the same failure mode as the transform codecs, in its purest form.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["DecimationCodec"]


class DecimationCodec:
    """Block-average downsampling + fp16 storage.

    Parameters
    ----------
    factors:
        Integer pooling factor per axis (applied to the trailing axes of
        the input; leading axes are preserved).  The fp16-vs-fp16
        compression ratio equals ``prod(factors)`` exactly for aligned
        shapes.
    """

    def __init__(self, factors: tuple[int, ...] = (1, 2, 2)) -> None:
        if any(f < 1 for f in factors):
            raise ValueError("factors must be >= 1")
        self.factors = tuple(int(f) for f in factors)
        self.name = f"decimate{self.factors}"

    # ------------------------------------------------------------------
    def _check(self, shape: tuple[int, ...]) -> None:
        if len(shape) < len(self.factors):
            raise ValueError(f"input rank {len(shape)} < factors rank {len(self.factors)}")
        trailing = shape[-len(self.factors):]
        for s, f in zip(trailing, self.factors):
            if s % f:
                raise ValueError(f"axis size {s} not divisible by factor {f}")

    def compress(self, array: np.ndarray) -> bytes:
        """Block-average the trailing axes and store the coarse grid as fp16."""

        arr = np.asarray(array, dtype=np.float32)
        self._check(arr.shape)
        nd = arr.ndim
        k = len(self.factors)
        lead = nd - k
        # Reshape (…, s_i/f_i, f_i, …) and mean over the f axes.
        shape: list[int] = list(arr.shape[:lead])
        for s, f in zip(arr.shape[lead:], self.factors):
            shape.extend([s // f, f])
        pooled = arr.reshape(shape).mean(axis=tuple(range(lead + 1, lead + 2 * k, 2)))

        header = struct.pack("<B", nd)
        header += struct.pack(f"<{nd}I", *arr.shape)
        header += struct.pack("<B", k)
        header += struct.pack(f"<{k}I", *self.factors)
        return header + pooled.astype(np.float16).tobytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        """Nearest-neighbour upsample back to the original shape."""

        view = memoryview(payload)
        (nd,) = struct.unpack_from("<B", view, 0)
        offset = 1
        shape = struct.unpack_from(f"<{nd}I", view, offset)
        offset += 4 * nd
        (k,) = struct.unpack_from("<B", view, offset)
        offset += 1
        factors = struct.unpack_from(f"<{k}I", view, offset)
        offset += 4 * k

        lead = nd - k
        coarse_shape = tuple(shape[:lead]) + tuple(
            s // f for s, f in zip(shape[lead:], factors)
        )
        coarse = np.frombuffer(view, dtype=np.float16, offset=offset).astype(np.float32)
        coarse = coarse.reshape(coarse_shape)
        out = coarse
        for axis, f in zip(range(lead, nd), factors):
            out = np.repeat(out, f, axis=axis)
        return np.ascontiguousarray(out)

    # ------------------------------------------------------------------
    def expected_ratio(self) -> float:
        """fp16-vs-fp16 ratio = the pooled volume."""

        return float(np.prod(self.factors))
