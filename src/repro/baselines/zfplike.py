"""ZFP-like fixed-rate block-transform codec.

ZFP [Lindstrom, TVCG 2014] partitions a d-dimensional field into 4^d blocks,
decorrelates each block with an orthogonal transform and encodes bit planes
to a fixed per-block budget.  This reproduction keeps the family's defining
properties —

1. **fixed rate**: every block compresses to exactly ``rate_bits`` bits per
   value, so the ratio is known a priori (ZFP's headline feature),
2. **4³ block transform**: an orthonormal DCT-II (scipy) stands in for
   ZFP's custom lifting basis,
3. **block-adaptive scaling**: per-block maximum (block-floating-point
   exponent analogue) + uniform coefficient quantization,

— with bit-plane truncation replaced by equal-width coefficient
quantization (documented simplification; both allocate the budget across
transform coefficients).

On ~90%-empty TPC wedges the fixed budget is wasted on empty blocks and the
occupied/empty block boundaries ring — the sparse-data failure mode the
paper describes.

Stream layout::

    [u8 ndim][u32 shape…][u8 rate_bits][per block: f16 amax | packed codes]
"""

from __future__ import annotations

import struct

import numpy as np
import scipy.fft

from .bitstream import BitReader, pack_codes, unpack_bits
from .quantize import UniformQuantizer

__all__ = ["ZFPLikeCodec"]

_BLOCK = 4


class ZFPLikeCodec:
    """Fixed-rate transform codec over 4³ blocks (see module docstring).

    Parameters
    ----------
    rate_bits:
        Bits per value (plus one fp16 scale per 64-value block).  The
        effective ratio against fp16 inputs is ``16 / (rate_bits + 0.25)``.
    """

    def __init__(self, rate_bits: int = 2) -> None:
        if not 1 <= rate_bits <= 16:
            raise ValueError("rate_bits must be in [1, 16]")
        self.rate_bits = int(rate_bits)
        self.name = f"zfp_like(rate={rate_bits})"

    # ------------------------------------------------------------------
    def _blockify(self, arr: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        """Pad to 4-multiples and reshape into (n_blocks, 4, 4, …)."""

        pad = [(0, (-s) % _BLOCK) for s in arr.shape]
        padded = np.pad(arr, pad)
        nd = arr.ndim
        grid = tuple(s // _BLOCK for s in padded.shape)
        # interleave (g0, 4, g1, 4, ...) then bring block axes last
        shape = tuple(v for g in grid for v in (g, _BLOCK))
        view = padded.reshape(shape)
        perm = tuple(range(0, 2 * nd, 2)) + tuple(range(1, 2 * nd, 2))
        blocks = view.transpose(perm).reshape((-1,) + (_BLOCK,) * nd)
        return blocks, padded.shape

    def _unblockify(
        self, blocks: np.ndarray, padded_shape: tuple[int, ...], shape: tuple[int, ...]
    ) -> np.ndarray:
        nd = len(shape)
        grid = tuple(s // _BLOCK for s in padded_shape)
        view = blocks.reshape(grid + (_BLOCK,) * nd)
        perm_fwd = tuple(range(0, 2 * nd, 2)) + tuple(range(1, 2 * nd, 2))
        inv = tuple(np.argsort(perm_fwd))
        padded = view.transpose(inv).reshape(padded_shape)
        return padded[tuple(slice(0, s) for s in shape)].copy()

    # ------------------------------------------------------------------
    def compress(self, array: np.ndarray) -> bytes:
        """Blockify → DCT → block-scaled fixed-width coefficient codes."""

        arr = np.asarray(array, dtype=np.float32)
        nd = arr.ndim
        blocks, _padded = self._blockify(arr)
        axes = tuple(range(1, nd + 1))
        coeffs = scipy.fft.dctn(blocks, axes=axes, norm="ortho")

        flat = coeffs.reshape(coeffs.shape[0], -1)
        amax = np.abs(flat).max(axis=1)
        amax16 = amax.astype(np.float16)
        # Guard: the stored fp16 scale must not shrink below the true max.
        shrunk = amax16.astype(np.float64) < amax
        amax16[shrunk] = np.nextafter(
            amax16[shrunk], np.float16(np.inf), dtype=np.float16
        )

        n_blocks, n_vals = flat.shape
        scale = np.maximum(amax16.astype(np.float64), 1e-30)
        levels = (1 << self.rate_bits) - 1
        step = 2.0 * scale / levels
        codes = np.rint((flat + scale[:, None]) / step[:, None])
        codes = np.clip(codes, 0, levels).astype(np.uint64)

        payload, n_bits = pack_codes(
            codes.ravel(), np.full(codes.size, self.rate_bits, dtype=np.int64)
        )
        header = struct.pack("<B", nd)
        header += struct.pack(f"<{nd}I", *arr.shape)
        header += struct.pack("<BQ", self.rate_bits, n_bits)
        return header + amax16.tobytes() + payload

    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        """Inverse transform back to the original shape (fixed-rate lossy)."""

        view = memoryview(payload)
        (nd,) = struct.unpack_from("<B", view, 0)
        offset = 1
        shape = struct.unpack_from(f"<{nd}I", view, offset)
        offset += 4 * nd
        rate_bits, n_bits = struct.unpack_from("<BQ", view, offset)
        offset += 9

        padded_shape = tuple(s + ((-s) % _BLOCK) for s in shape)
        n_blocks = int(np.prod([s // _BLOCK for s in padded_shape]))
        n_vals = _BLOCK**nd

        amax = np.frombuffer(view, dtype=np.float16, count=n_blocks, offset=offset)
        offset += 2 * n_blocks
        bits = unpack_bits(bytes(view[offset:]), n_bits)
        codes = BitReader(bits).read_fixed_array(n_blocks * n_vals, rate_bits)
        codes = codes.reshape(n_blocks, n_vals)

        scale = np.maximum(amax.astype(np.float64), 1e-30)
        levels = (1 << rate_bits) - 1
        step = 2.0 * scale / levels
        flat = codes.astype(np.float64) * step[:, None] - scale[:, None]

        blocks = flat.reshape((n_blocks,) + (_BLOCK,) * nd)
        axes = tuple(range(1, nd + 1))
        spatial = scipy.fft.idctn(blocks, axes=axes, norm="ortho").astype(np.float32)
        return self._unblockify(spatial, padded_shape, shape)

    # ------------------------------------------------------------------
    def expected_ratio(self) -> float:
        """A-priori fp16 compression ratio: ``16 / (rate_bits + 16/64)``."""

        return 16.0 / (self.rate_bits + 16.0 / (_BLOCK**3))
