"""Integer N-dimensional Lorenzo predictor (SZ's spatial decorrelator).

The Lorenzo predictor estimates each sample from its "lower-left" neighbours
with inclusion–exclusion weights; the prediction residual equals the N-fold
mixed first difference of the field.  On an integer lattice this transform
is *exactly* invertible:

    residual = Δ_axis0 Δ_axis1 … Δ_axisN  q        (forward, ``np.diff``-style)
    q        = cumsum_axisN … cumsum_axis0 residual  (inverse)

Both directions are pure vectorized NumPy and, in int64, bit-exact — which
is what gives the SZ-like codec its lossless-after-quantization property.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_forward", "lorenzo_inverse"]


def lorenzo_forward(q: np.ndarray) -> np.ndarray:
    """Mixed first difference along every axis (int64 in, int64 out)."""

    r = np.asarray(q, dtype=np.int64)
    for axis in range(r.ndim):
        first = np.take(r, [0], axis=axis)
        diff = np.diff(r, axis=axis)
        r = np.concatenate([first, diff], axis=axis)
    return r


def lorenzo_inverse(residual: np.ndarray) -> np.ndarray:
    """Inverse transform: cumulative sums along every axis (reverse order)."""

    q = np.asarray(residual, dtype=np.int64)
    for axis in range(q.ndim - 1, -1, -1):
        q = np.cumsum(q, axis=axis)
    return q
