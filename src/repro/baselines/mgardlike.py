"""MGARD-like multilevel error-bounded codec.

MGARD [Ainsworth et al., SISC 2019] decomposes a field over a hierarchy of
nested grids, storing quantized multilevel *detail* coefficients whose error
budgets sum to a user bound.  This reproduction keeps the family's defining
structure —

1. **multilevel decomposition**: 2× mean-restriction / nearest-prolongation
   pyramid (standing in for MGARD's L²-orthogonal piecewise-linear
   projections),
2. **per-level error budgeting**: level ``l`` receives ``eb / 2^(L-l+1)`` so
   the telescoping sum respects the global L∞ bound,
3. **entropy-coded details**: Huffman over the quantization symbols.

On sparse TPC wedges the coarse grids average empty and occupied regions,
so fine-level details carry nearly all the energy — the paper's argument
that multigrid reduction buys little on zero-suppressed data.

Stream layout::

    [u8 ndim][u32 shape…][f32 eb][u8 n_levels]
    per level (coarse→fine): [SZ-style symbol block]
"""

from __future__ import annotations

import struct

import numpy as np

from .bitstream import unpack_bits
from .huffman import build_huffman, huffman_decode, huffman_encode
from .quantize import ErrorBoundedQuantizer
from .szlike import _ESCAPE, _RADIUS, _pack_table, _unpack_table

__all__ = ["MGARDLikeCodec"]


def _restrict(arr: np.ndarray) -> np.ndarray:
    """2× coarsening by block averaging (odd tails carried through)."""

    out = arr
    for axis in range(arr.ndim):
        n = out.shape[axis]
        even = n - (n % 2)
        main = np.take(out, range(even), axis=axis)
        shape = list(main.shape)
        shape[axis] = even // 2
        shape.insert(axis + 1, 2)
        main = main.reshape(shape).mean(axis=axis + 1)
        if n % 2:
            tail = np.take(out, [n - 1], axis=axis)
            main = np.concatenate([main, tail], axis=axis)
        out = main
    return out


def _prolong(arr: np.ndarray, target_shape: tuple[int, ...]) -> np.ndarray:
    """Nearest-neighbour refinement back to ``target_shape``."""

    out = arr
    for axis, target in enumerate(target_shape):
        n = out.shape[axis]
        reps = np.full(n, 2, dtype=np.int64)
        # Undo the odd-tail convention of _restrict.
        total = 2 * n
        if total > target:
            reps[-1] -= total - target
        out = np.repeat(out, reps, axis=axis)
    return out


class MGARDLikeCodec:
    """Multilevel error-bounded codec (see module docstring).

    Parameters
    ----------
    error_bound:
        Global absolute (L∞) error bound on the log-ADC scale.
    n_levels:
        Pyramid depth; clipped so the coarsest grid keeps ≥ 4 samples/axis.
    """

    def __init__(self, error_bound: float = 0.25, n_levels: int = 3) -> None:
        if error_bound <= 0:
            raise ValueError("error bound must be positive")
        self.error_bound = float(error_bound)
        self.n_levels = int(n_levels)
        self.name = f"mgard_like(eb={error_bound:g},L={n_levels})"

    # ------------------------------------------------------------------
    def _plan_levels(self, shape: tuple[int, ...]) -> int:
        levels = 0
        cur = shape
        while levels < self.n_levels and min(cur) >= 8:
            cur = tuple((c + 1) // 2 for c in cur)
            levels += 1
        return levels

    # ------------------------------------------------------------------
    def compress(self, array: np.ndarray) -> bytes:
        """Restrict to a pyramid, quantize per-level details, Huffman-code."""

        arr = np.asarray(array, dtype=np.float64)
        levels = self._plan_levels(arr.shape)

        # Build the restriction pyramid fine -> coarse.
        pyramid = [arr]
        for _ in range(levels):
            pyramid.append(_restrict(pyramid[-1]))

        # Telescoping error budgets: coarsest gets the largest share.
        budgets = [self.error_bound / (2.0 ** (l + 1)) for l in range(levels + 1)]
        budgets[-1] = self.error_bound - sum(budgets[:-1])  # exact telescoping

        blob = struct.pack("<B", arr.ndim)
        blob += struct.pack(f"<{arr.ndim}I", *arr.shape)
        blob += struct.pack("<fB", self.error_bound, levels)

        # Encode coarse→fine: quantize the coarsest grid itself, then the
        # detail (residual after prolongating the running reconstruction).
        reconstruction: np.ndarray | None = None
        for level in range(levels, -1, -1):
            target = pyramid[level]
            if reconstruction is None:
                detail = target
            else:
                detail = target - _prolong(reconstruction, target.shape)
            quant = ErrorBoundedQuantizer(budgets[level])
            bins = quant.quantize(detail)
            blob += _encode_bins(bins)
            approx = quant.dequantize(bins)
            reconstruction = (
                approx if reconstruction is None else _prolong(reconstruction, target.shape) + approx
            )
        return blob

    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        """Rebuild coarse→fine; total error within the global L∞ bound."""

        view = memoryview(payload)
        (ndim,) = struct.unpack_from("<B", view, 0)
        offset = 1
        shape = struct.unpack_from(f"<{ndim}I", view, offset)
        offset += 4 * ndim
        eb, levels = struct.unpack_from("<fB", view, offset)
        offset += 5

        budgets = [eb / (2.0 ** (l + 1)) for l in range(levels + 1)]
        budgets[-1] = eb - sum(budgets[:-1])

        shapes = [tuple(shape)]
        for _ in range(levels):
            shapes.append(tuple((c + 1) // 2 for c in shapes[-1]))

        reconstruction: np.ndarray | None = None
        for level in range(levels, -1, -1):
            bins, offset = _decode_bins(view, offset, shapes[level])
            approx = ErrorBoundedQuantizer(budgets[level]).dequantize(bins)
            if reconstruction is None:
                reconstruction = approx.astype(np.float64)
            else:
                reconstruction = _prolong(reconstruction, shapes[level]) + approx
        assert reconstruction is not None
        return reconstruction.astype(np.float32)


# ----------------------------------------------------------------------
# symbol-block helpers (shared SZ-style layout: table + bits + escapes)
# ----------------------------------------------------------------------

def _encode_bins(bins: np.ndarray) -> bytes:
    flat = bins.ravel()
    escape_mask = np.abs(flat) >= _RADIUS
    escapes = flat[escape_mask]
    symbols = np.where(escape_mask, _ESCAPE, flat + _RADIUS)
    freqs = np.bincount(symbols, minlength=_ESCAPE + 1)
    code = build_huffman(freqs)
    payload, n_bits = huffman_encode(symbols, code)
    out = struct.pack("<I", escapes.size)
    out += _pack_table(code)
    out += struct.pack("<Q", n_bits)
    return out + payload + escapes.astype("<i8").tobytes()


def _decode_bins(view: memoryview, offset: int, shape: tuple[int, ...]) -> tuple[np.ndarray, int]:
    (n_escapes,) = struct.unpack_from("<I", view, offset)
    offset += 4
    code, offset = _unpack_table(view, offset)
    (n_bits,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    n_bytes = (n_bits + 7) // 8
    bits = unpack_bits(bytes(view[offset : offset + n_bytes]), n_bits)
    offset += n_bytes
    n_symbols = int(np.prod(shape))
    symbols, _pos = huffman_decode(bits, n_symbols, code)
    escapes = np.frombuffer(view, dtype="<i8", count=n_escapes, offset=offset)
    offset += 8 * n_escapes
    bins = symbols - _RADIUS
    bins[symbols == _ESCAPE] = escapes
    return bins.reshape(shape), offset
