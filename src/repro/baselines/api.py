"""Common interface and evaluation harness for the learning-free codecs.

The paper's introduction positions BCAE against SZ, ZFP and MGARD on sparse
TPC data; ``repro.baselines`` implements one codec per family so the
comparison bench (``benchmarks/bench_baselines.py``) can regenerate that
claim.  Every codec maps float32 arrays to bytes and back:

* compression ratios use the paper's fp16 convention
  (``2 · n_elements / n_bytes``) so they are directly comparable to the
  BCAE's 31.125;
* codecs operate on the same log-ADC wedges the networks see.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Protocol, runtime_checkable

import numpy as np

from ..metrics.reconstruction import mae, precision_recall, psnr

__all__ = ["Codec", "CodecResult", "evaluate_codec", "fp16_ratio"]


@runtime_checkable
class Codec(Protocol):
    """Protocol implemented by every baseline codec."""

    name: str

    def compress(self, array: np.ndarray) -> bytes:  # pragma: no cover - protocol
        """Encode a float32 array into a self-describing byte payload."""
        ...

    def decompress(self, payload: bytes) -> np.ndarray:  # pragma: no cover - protocol
        """Decode a payload back into the original-shaped float32 array."""
        ...


def fp16_ratio(array: np.ndarray, payload: bytes) -> float:
    """Compression ratio with the paper's 16-bit-input convention (§3.1)."""

    return (2.0 * array.size) / max(len(payload), 1)


@dataclasses.dataclass
class CodecResult:
    """Evaluation record for one codec on one wedge batch."""

    name: str
    ratio: float
    mae: float
    psnr: float
    precision: float
    recall: float
    compress_seconds: float
    decompress_seconds: float
    max_error: float

    def row(self) -> str:
        """One-line summary for comparison tables."""

        return (
            f"{self.name:14s} ratio={self.ratio:8.3f}  MAE={self.mae:.4f}  "
            f"PSNR={self.psnr:7.3f}  prec={self.precision:.4f}  rec={self.recall:.4f}  "
            f"maxerr={self.max_error:.4f}"
        )


def evaluate_codec(codec: Codec, wedges_log: np.ndarray, seg_threshold: float = 3.0) -> CodecResult:
    """Round-trip a log-ADC wedge batch through ``codec`` and score it.

    ``precision``/``recall`` treat reconstructed values above
    ``seg_threshold`` as predicted-nonzero so the learning-free codecs get
    the same classification metrics as the BCAE's segmentation head.
    """

    t0 = time.perf_counter()
    payload = codec.compress(wedges_log)
    t1 = time.perf_counter()
    recon = codec.decompress(payload)
    t2 = time.perf_counter()
    if recon.shape != wedges_log.shape:
        raise ValueError(f"{codec.name}: decompressed shape {recon.shape} != {wedges_log.shape}")
    p, r = precision_recall(recon, wedges_log, threshold=seg_threshold, truth_threshold=6.0)
    return CodecResult(
        name=codec.name,
        ratio=fp16_ratio(wedges_log, payload),
        mae=mae(recon, wedges_log),
        psnr=psnr(recon, wedges_log),
        precision=p,
        recall=r,
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        max_error=float(np.max(np.abs(recon.astype(np.float64) - wedges_log))),
    )
