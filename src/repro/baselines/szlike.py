"""SZ-like error-bounded predictive codec.

SZ [Di & Cappello, IPDPS'16; Tao et al., IPDPS'17] combines a spatial
predictor with error-bounded linear-scaling quantization and an entropy
stage.  This reproduction keeps the family's three defining properties —

1. **hard absolute error bound** ``|x - x̂| ≤ eb`` on every sample,
2. **Lorenzo prediction** for spatial decorrelation,
3. **Huffman-coded quantization symbols**,

— with one documented simplification: values are quantized *first* and the
Lorenzo transform runs losslessly on the integer lattice (SZ proper predicts
from previously decoded values).  The closed-loop variant is strictly
sequential per voxel and infeasible in vectorized NumPy; the lattice variant
preserves the error bound exactly and the same qualitative behaviour on
sparse data (long zero runs become cheap symbols; sharp occupied/empty
boundaries inflate the residual alphabet — the paper's §1 argument for why
generic compressors struggle on TPC wedges).

Stream layout::

    [u8 ndim][u32 shape…][f32 eb][u32 n_escapes]
    [table: u16 n_entries][(u16 symbol, u8 length)…]
    [u64 n_bits][huffman payload][escape values: i64…]
"""

from __future__ import annotations

import struct

import numpy as np

from .bitstream import unpack_bits
from .huffman import HuffmanCode, build_huffman, huffman_decode, huffman_encode
from .lorenzo import lorenzo_forward, lorenzo_inverse
from .quantize import ErrorBoundedQuantizer

__all__ = ["SZLikeCodec"]

#: Residuals in (-RADIUS, RADIUS) map to the dense symbol alphabet;
#: anything outside escapes to a raw 64-bit side channel.
_RADIUS = 1 << 15
_ESCAPE = 2 * _RADIUS  # symbol reserved for escapes


class SZLikeCodec:
    """Error-bounded SZ-family codec (see module docstring).

    Parameters
    ----------
    error_bound:
        Absolute error bound on the log-ADC scale.  The paper's networks
        reach MAE ≈ 0.112–0.198 with mostly-classification errors, so the
        comparison bench sweeps ``eb`` around that scale.
    """

    def __init__(self, error_bound: float = 0.25) -> None:
        self.quantizer = ErrorBoundedQuantizer(error_bound)
        self.name = f"sz_like(eb={error_bound:g})"

    # ------------------------------------------------------------------
    def compress(self, array: np.ndarray) -> bytes:
        """Quantize → Lorenzo → Huffman; returns the self-describing payload."""

        arr = np.asarray(array, dtype=np.float32)
        bins = self.quantizer.quantize(arr)
        residual = lorenzo_forward(bins).ravel()

        escape_mask = np.abs(residual) >= _RADIUS
        escapes = residual[escape_mask]
        symbols = np.where(escape_mask, _ESCAPE, residual + _RADIUS)

        freqs = np.bincount(symbols, minlength=_ESCAPE + 1)
        code = build_huffman(freqs)
        payload, n_bits = huffman_encode(symbols, code)

        header = struct.pack("<B", arr.ndim)
        header += struct.pack(f"<{arr.ndim}I", *arr.shape)
        header += struct.pack("<fI", self.quantizer.error_bound, escapes.size)
        header += _pack_table(code)
        header += struct.pack("<Q", n_bits)
        return header + payload + escapes.astype("<i8").tobytes()

    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        """Exact inverse of :meth:`compress` up to the error bound."""

        view = memoryview(payload)
        (ndim,) = struct.unpack_from("<B", view, 0)
        offset = 1
        shape = struct.unpack_from(f"<{ndim}I", view, offset)
        offset += 4 * ndim
        eb, n_escapes = struct.unpack_from("<fI", view, offset)
        offset += 8
        code, offset = _unpack_table(view, offset)
        (n_bits,) = struct.unpack_from("<Q", view, offset)
        offset += 8

        n_payload_bytes = (n_bits + 7) // 8
        bits = unpack_bits(bytes(view[offset : offset + n_payload_bytes]), n_bits)
        offset += n_payload_bytes

        n_symbols = int(np.prod(shape))
        symbols, _pos = huffman_decode(bits, n_symbols, code)
        escapes = np.frombuffer(view, dtype="<i8", count=n_escapes, offset=offset)

        residual = symbols - _RADIUS
        esc_sites = symbols == _ESCAPE
        residual[esc_sites] = escapes
        bins = lorenzo_inverse(residual.reshape(shape))
        return ErrorBoundedQuantizer(eb).dequantize(bins)


def _pack_table(code: HuffmanCode) -> bytes:
    present = np.nonzero(code.lengths)[0]
    blob = struct.pack("<I", present.size)
    sym = present.astype("<u4").tobytes()
    lng = code.lengths[present].astype("<u1").tobytes()
    return blob + sym + lng


def _unpack_table(view: memoryview, offset: int) -> tuple[HuffmanCode, int]:
    (n,) = struct.unpack_from("<I", view, offset)
    offset += 4
    symbols = np.frombuffer(view, dtype="<u4", count=n, offset=offset).astype(np.int64)
    offset += 4 * n
    lengths_present = np.frombuffer(view, dtype="<u1", count=n, offset=offset)
    offset += n
    lengths = np.zeros(_ESCAPE + 1, dtype=np.uint8)
    lengths[symbols] = lengths_present
    from .huffman import _canonical_codes

    return HuffmanCode(lengths=lengths, codes=_canonical_codes(lengths)), offset
