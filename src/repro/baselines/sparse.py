"""Sparse coordinate-list codec for near-empty wedges.

The dense baselines (:class:`~repro.baselines.szlike.SZLikeCodec` and
friends) spend a per-voxel floor — prediction residuals, block
coefficients — that dwarfs the signal when a wedge is nearly empty: at
the full sPHENIX wedge size their payloads never drop below ~0.1 MB even
for an all-zero wedge.  The adaptive rate tier (:mod:`repro.rate`) needs
a classical route that actually wins there, which is this codec: store
**only the nonzero voxels**, as bit-packed flat-index gaps plus
error-bounded quantized values, and reconstruct exact zeros everywhere
else.

Payload layout (self-describing, little-endian)::

    [4s magic "SPX1"][u8 ndim][u32 × ndim shape]
    [f64 error_bound][u64 n_hits][u8 gap_bits][u8 value_bits][i64 bin_min]
    [u64 gaps_nbytes][gap bits…][value bits…]

Gaps are ``index[k] - index[k-1] - 1`` over the sorted flat nonzero
indices (first gap is the first index itself), packed at the smallest
fixed width that fits the batch; values are
:class:`~repro.baselines.quantize.ErrorBoundedQuantizer` bin indices
offset to non-negative, likewise fixed-width packed.  Cost is a few
bytes per header plus ~(gap_bits + value_bits)/8 bytes per hit, so the
payload scales with occupancy instead of wedge volume.

Error guarantee: zeros are exact; nonzero voxels obey the quantizer's
``|x - x̂| ≤ error_bound`` bound (plus one float32 ulp — see
:class:`ErrorBoundedQuantizer`).
"""

from __future__ import annotations

import struct

import numpy as np

from .bitstream import BitReader, pack_codes, unpack_bits
from .quantize import ErrorBoundedQuantizer

__all__ = ["SparseIndexCodec"]

_MAGIC = b"SPX1"
_FIXED = struct.Struct("<dQBBq")


class SparseIndexCodec:
    """Error-bounded coordinate-list coding of sparse float32 arrays."""

    def __init__(self, error_bound: float = 0.25) -> None:
        self.name = "sparse"
        self.quantizer = ErrorBoundedQuantizer(error_bound)
        self.error_bound = self.quantizer.error_bound

    def compress(self, array: np.ndarray) -> bytes:
        """Encode a float32 array into a self-describing sparse payload."""

        array = np.asarray(array, dtype=np.float32)
        if array.ndim > 255:
            raise ValueError("too many dimensions for the sparse header")
        flat = array.ravel()
        idx = np.flatnonzero(flat)
        n_hits = int(idx.size)

        header = _MAGIC + struct.pack("<B", array.ndim)
        header += struct.pack(f"<{array.ndim}I", *array.shape)

        if n_hits == 0:
            header += _FIXED.pack(self.error_bound, 0, 0, 0, 0)
            header += struct.pack("<Q", 0)
            return header

        gaps = np.diff(idx, prepend=-1).astype(np.uint64) - np.uint64(1)
        gap_bits = max(int(gaps.max()).bit_length(), 1)
        bins = self.quantizer.quantize(flat[idx])
        bin_min = int(bins.min())
        ubins = (bins - bin_min).astype(np.uint64)
        value_bits = max(int(ubins.max()).bit_length(), 1)

        gap_payload, _ = pack_codes(gaps, np.full(n_hits, gap_bits))
        value_payload, _ = pack_codes(ubins, np.full(n_hits, value_bits))
        header += _FIXED.pack(self.error_bound, n_hits, gap_bits, value_bits, bin_min)
        header += struct.pack("<Q", len(gap_payload))
        return header + gap_payload + value_payload

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decode a sparse payload back to the original-shaped array."""

        if payload[:4] != _MAGIC:
            raise ValueError("not a sparse coordinate-list payload (bad magic)")
        pos = 4
        (ndim,) = struct.unpack_from("<B", payload, pos)
        pos += 1
        shape = struct.unpack_from(f"<{ndim}I", payload, pos)
        pos += 4 * ndim
        error_bound, n_hits, gap_bits, value_bits, bin_min = _FIXED.unpack_from(
            payload, pos
        )
        pos += _FIXED.size
        (gaps_nbytes,) = struct.unpack_from("<Q", payload, pos)
        pos += 8

        flat = np.zeros(int(np.prod(shape)), dtype=np.float32)
        if n_hits:
            quantizer = ErrorBoundedQuantizer(error_bound)
            gap_reader = BitReader(
                unpack_bits(payload[pos : pos + gaps_nbytes], n_hits * gap_bits)
            )
            gaps = gap_reader.read_fixed_array(n_hits, gap_bits)
            idx = np.cumsum(gaps.astype(np.int64) + 1) - 1
            if idx[-1] >= flat.size:
                raise ValueError(
                    f"corrupt sparse payload: index {int(idx[-1])} outside "
                    f"array of {flat.size} voxels"
                )
            value_start = pos + gaps_nbytes
            value_reader = BitReader(
                unpack_bits(payload[value_start:], n_hits * value_bits)
            )
            ubins = value_reader.read_fixed_array(n_hits, value_bits)
            flat[idx] = quantizer.dequantize(ubins.astype(np.int64) + bin_min)
        return flat.reshape(shape)
