"""Bit-level packing substrate for the baseline codecs.

Variable-length codes (Huffman, fixed-width residuals) are packed MSB-first.
Packing is fully vectorized: per-symbol bit expansion uses a repeat/gather
formulation instead of a Python loop over symbols, then ``np.packbits``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_codes", "unpack_bits", "BitReader", "bits_to_bytes"]


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Pack variable-length codes into bytes (MSB-first).

    Parameters
    ----------
    codes:
        Non-negative integer code values (uint64-compatible).
    lengths:
        Bit length of each code (1..64).

    Returns
    -------
    (payload, total_bits).
    """

    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have identical shapes")
    if codes.size == 0:
        return b"", 0
    if lengths.min() < 1 or lengths.max() > 64:
        raise ValueError("code lengths must be in [1, 64]")

    total = int(lengths.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    # One entry per output bit: owning symbol and bit offset inside its code.
    owner = np.repeat(np.arange(codes.size), lengths)
    bit_pos = np.arange(total) - np.repeat(starts, lengths)
    shift = (lengths[owner] - 1 - bit_pos).astype(np.uint64)
    bits = ((codes[owner] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes(), total


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 uint8 array into bytes (MSB-first)."""

    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def unpack_bits(payload: bytes, total_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_codes` down to the raw bit array."""

    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    return bits[:total_bits]


class BitReader:
    """Sequential reader over an unpacked bit array (header parsing etc.)."""

    def __init__(self, bits: np.ndarray) -> None:
        self.bits = np.asarray(bits, dtype=np.uint8)
        self.pos = 0

    def remaining(self) -> int:
        """Bits left to read."""

        return self.bits.size - self.pos

    def read(self, nbits: int) -> int:
        """Read ``nbits`` MSB-first as an unsigned integer."""

        if nbits == 0:
            return 0
        if self.pos + nbits > self.bits.size:
            raise EOFError("bitstream exhausted")
        window = self.bits[self.pos : self.pos + nbits]
        self.pos += nbits
        value = 0
        for b in window.tolist():  # nbits is small (headers only)
            value = (value << 1) | int(b)
        return value

    def read_fixed_array(self, n: int, width: int) -> np.ndarray:
        """Vectorized read of ``n`` fixed-``width`` unsigned integers."""

        need = n * width
        if self.pos + need > self.bits.size:
            raise EOFError("bitstream exhausted")
        window = self.bits[self.pos : self.pos + need].reshape(n, width)
        self.pos += need
        weights = (1 << np.arange(width - 1, -1, -1)).astype(np.uint64)
        return window.astype(np.uint64) @ weights
