"""``repro.baselines`` — learning-free lossy compressors (paper §1 comparison).

One codec per family the paper names, plus the entropy/bitstream substrate:

* :class:`SZLikeCodec` — error-bounded prediction + quantization + Huffman;
* :class:`ZFPLikeCodec` — fixed-rate 4³ block-transform coding;
* :class:`MGARDLikeCodec` — multilevel grid decomposition with per-level
  error budgets.

All are honest codecs (exact round-trip format, guaranteed error bounds /
fixed rates) implemented in vectorized NumPy; see each module's docstring
for the documented simplifications relative to the reference systems.
"""

from .api import Codec, CodecResult, evaluate_codec, fp16_ratio
from .bitstream import BitReader, bits_to_bytes, pack_codes, unpack_bits
from .decimation import DecimationCodec
from .huffman import HuffmanCode, build_huffman, huffman_decode, huffman_encode
from .lorenzo import lorenzo_forward, lorenzo_inverse
from .mgardlike import MGARDLikeCodec
from .quantize import ErrorBoundedQuantizer, UniformQuantizer
from .sparse import SparseIndexCodec
from .szlike import SZLikeCodec
from .zfplike import ZFPLikeCodec

__all__ = [
    "Codec",
    "CodecResult",
    "evaluate_codec",
    "fp16_ratio",
    "SZLikeCodec",
    "SparseIndexCodec",
    "ZFPLikeCodec",
    "MGARDLikeCodec",
    "DecimationCodec",
    "ErrorBoundedQuantizer",
    "UniformQuantizer",
    "HuffmanCode",
    "build_huffman",
    "huffman_encode",
    "huffman_decode",
    "lorenzo_forward",
    "lorenzo_inverse",
    "pack_codes",
    "unpack_bits",
    "bits_to_bytes",
    "BitReader",
]
