"""Canonical Huffman coding substrate.

Used by the SZ-like and MGARD-like baselines to entropy-code quantization
symbols.  Encoding is vectorized (table lookup + :func:`pack_codes`);
decoding walks the stream symbol-by-symbol but uses a precomputed
first-code/offset table per code length and a vectorized sliding-window
value array, so the per-symbol work is O(1) despite variable lengths.

Code lengths are capped (default 16 bits) by damping the frequency
distribution and rebuilding — a simple, always-terminating alternative to
package-merge that costs a fraction of a percent of optimality.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .bitstream import pack_codes

__all__ = ["HuffmanCode", "build_huffman", "huffman_encode", "huffman_decode"]


@dataclass
class HuffmanCode:
    """Canonical Huffman code table over a dense alphabet ``0..n-1``.

    ``lengths[s] == 0`` marks symbols absent from the training frequencies
    (encoding such a symbol is an error).
    """

    lengths: np.ndarray  # (alphabet,) uint8
    codes: np.ndarray  # (alphabet,) uint64, canonical

    @property
    def alphabet_size(self) -> int:
        """Size of the dense symbol alphabet."""

        return self.lengths.size

    @property
    def max_length(self) -> int:
        """Longest code length in bits (0 for an empty code)."""

        return int(self.lengths.max(initial=0))


def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths via the standard two-queue/heap construction."""

    present = np.nonzero(freqs > 0)[0]
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in present
    ]
    heapq.heapify(heap)
    depth = np.zeros(freqs.size, dtype=np.int64)
    tiebreak = freqs.size
    while len(heap) > 1:
        fa, _ta, syms_a = heapq.heappop(heap)
        fb, _tb, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        depth[merged] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, merged))
        tiebreak += 1
    lengths[present] = depth[present]
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values: sorted by (length, symbol)."""

    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def build_huffman(freqs: np.ndarray, max_length: int = 16) -> HuffmanCode:
    """Build a canonical Huffman code with a depth cap.

    Parameters
    ----------
    freqs:
        Per-symbol frequencies over the dense alphabet.
    max_length:
        Maximum code length; enforced by square-root frequency damping.
    """

    freqs = np.asarray(freqs, dtype=np.float64)
    lengths = _code_lengths(freqs)
    while lengths.max(initial=0) > max_length:
        freqs = np.ceil(np.sqrt(freqs))
        lengths = _code_lengths(freqs)
    return HuffmanCode(lengths=lengths, codes=_canonical_codes(lengths))


def huffman_encode(symbols: np.ndarray, code: HuffmanCode) -> tuple[bytes, int]:
    """Encode a symbol array; returns (payload, total_bits)."""

    symbols = np.asarray(symbols, dtype=np.int64)
    lens = code.lengths[symbols]
    if symbols.size and lens.min() == 0:
        bad = symbols[lens == 0][0]
        raise ValueError(f"symbol {bad} has no code (zero training frequency)")
    return pack_codes(code.codes[symbols], lens)


def huffman_decode(bits: np.ndarray, n_symbols: int, code: HuffmanCode, start: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``n_symbols`` from a bit array starting at ``start``.

    Returns (symbols, next_bit_position).

    Implementation: a single vectorized pass precomputes the value of the
    ``max_length``-bit window at every bit offset; the sequential walk then
    needs one table lookup per symbol (canonical first-code/offset decode).
    """

    if n_symbols == 0:
        return np.empty(0, dtype=np.int64), start
    L = code.max_length
    if L == 0:
        raise ValueError("cannot decode with an empty code")

    bits = np.asarray(bits, dtype=np.uint8)
    padded = np.concatenate([bits[start:], np.zeros(L, dtype=np.uint8)])
    # window[i] = integer value of padded[i : i+L]
    weights = (1 << np.arange(L - 1, -1, -1)).astype(np.int64)
    from numpy.lib.stride_tricks import sliding_window_view

    windows = sliding_window_view(padded, L).astype(np.int64) @ weights

    # Canonical decode tables: for each length l, the first code value and
    # the index of its first symbol in the canonical symbol ordering.
    lengths = code.lengths
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    sorted_lengths = lengths[order]

    first_code = np.zeros(L + 2, dtype=np.int64)
    first_index = np.zeros(L + 2, dtype=np.int64)
    count = np.bincount(sorted_lengths, minlength=L + 2)
    c = 0
    idx = 0
    for l in range(1, L + 1):
        first_code[l] = c
        first_index[l] = idx
        c = (c + int(count[l])) << 1
        idx += int(count[l])
    # limit[l] = first_code[l] + count[l]: codes of length l are < limit.
    limit = first_code[: L + 1] + count[: L + 1]

    out = np.empty(n_symbols, dtype=np.int64)
    pos = 0
    fc = first_code.tolist()
    fi = first_index.tolist()
    lim = limit.tolist()
    win = windows
    ordered = order
    for i in range(n_symbols):
        w = int(win[pos])
        l = 1
        while True:
            prefix = w >> (L - l)
            if prefix < lim[l]:
                break
            l += 1
        out[i] = ordered[fi[l] + (prefix - fc[l])]
        pos += l
    return out, start + pos
