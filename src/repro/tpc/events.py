"""Synthetic TPC event generation (HIJING + pile-up + digitization substitute).

Paper §2.1: the training data are 1310 simulated central Au+Au events at
``sqrt(s_NN) = 200 GeV`` with 170 kHz pile-up, digitized to 10-bit ADC values
and zero-suppressed at 64 counts, which leaves ~10.8% of voxels nonzero.

:class:`HijingLikeGenerator` reproduces that readout statistically:

1. sample a primary multiplicity and a Poisson number of pile-up collisions
   displaced along z (streaming readout integrates neighbouring crossings);
2. transport every charged track along its helix through the layer group,
   sampling the **continuous ionization trail** at sub-bin arc-length steps
   (a TPC records charge all along the path, not just at layer planes);
3. spread each sample over a Gaussian stencil whose width is the physical
   drift-diffusion width converted to local bin units;
4. fluctuate amplitudes Landau-like (scipy Moyal), add electronics noise,
   digitize to 10 bits, zero-suppress at 64.

Everything is vectorized over (tracks × path steps); deposits reduce to one
flat ``np.bincount`` over the voxel grid (the guides' "no Python loops over
data" rule).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .geometry import PAPER_GEOMETRY, TPCGeometry
from .physics import TrackBatch, TrackPopulation

__all__ = ["DigitizationConfig", "HijingLikeGenerator", "ZERO_SUPPRESSION_THRESHOLD", "ADC_MAX"]

#: Paper §2.1: "All ADC values below 64 are suppressed to zero".
ZERO_SUPPRESSION_THRESHOLD = 64

#: 10-bit unsigned ADC range.
ADC_MAX = 1023

#: pT [GeV] = 0.3 * B [T] * R [m] for unit charge.
_RIGIDITY = 0.3


@dataclasses.dataclass
class DigitizationConfig:
    """Ionization + electronics model.

    Attributes
    ----------
    de_per_step:
        Mean ADC-equivalent charge deposited per arc-length step (Moyal
        location parameter).
    de_scale:
        Moyal scale (Landau-tail width) per step.
    step_length:
        Transverse arc-length sampling step along the trail [m].
    diffusion_const:
        Physical diffusion width [m] per sqrt(metre) of drift
        (gas TPCs: O(1 mm/√m)).
    diffusion_floor:
        Minimum physical cloud width [m] (pad response).
    stencil_half:
        Half-width of the deposit stencil in bins.
    noise_sigma:
        Gaussian electronics noise [ADC counts]; essentially all below the
        zero-suppression threshold.
    zero_suppression:
        ADC threshold below which values are dropped to zero.
    """

    de_per_step: float = 380.0
    de_scale: float = 280.0
    step_length: float = 0.004
    diffusion_const: float = 0.0030
    diffusion_floor: float = 0.0024
    stencil_half: int = 2
    noise_sigma: float = 20.0
    zero_suppression: int = ZERO_SUPPRESSION_THRESHOLD


@dataclasses.dataclass
class HijingLikeGenerator:
    """Generate zero-suppressed TPC layer-group events.

    Parameters
    ----------
    geometry:
        Readout geometry (defaults to the paper's outer layer group).
    multiplicity:
        Mean number of charged tracks per *primary* collision inside the
        TPC acceptance (central Au+Au: O(10³)).
    pileup_mean:
        Mean number of pile-up collisions integrated into one readout frame
        (77 kHz frames × 170 kHz collisions ⇒ a few, displaced along z).
    pileup_z_spread:
        RMS z displacement of pile-up vertices [m].
    population:
        Kinematic sampling distributions for tracks.
    digitization:
        Ionization/electronics model.

    Notes
    -----
    Defaults are tuned so outer-group wedges land near the paper's 10.8%
    occupancy with the Figure-3 log-ADC spectrum: empty in (0, 6), sharp
    rise at ``log2(65) ≈ 6.02``, falling tail to 10.
    """

    geometry: TPCGeometry = dataclasses.field(default_factory=lambda: PAPER_GEOMETRY)
    multiplicity: float = 4500.0
    pileup_mean: float = 4.6
    pileup_fraction: float = 0.25
    pileup_z_spread: float = 0.35
    population: TrackPopulation = dataclasses.field(default_factory=TrackPopulation)
    digitization: DigitizationConfig = dataclasses.field(default_factory=DigitizationConfig)

    # ------------------------------------------------------------------
    def sample_tracks(self, rng: np.random.Generator) -> TrackBatch:
        """Sample primary + pile-up tracks for one readout frame.

        ``multiplicity`` counts every ionizing track segment reaching the
        outer layer group — primaries plus secondaries/deltas — which is why
        it exceeds the primary charged multiplicity of a central Au+Au event.
        The 170 kHz collision rate combined with the ~13.5 µs drift window
        integrates a Poisson(``pileup_mean``) number of minimum-bias pile-up
        collisions (each with ``pileup_fraction`` of the central
        multiplicity) displaced along z.
        """

        n_primary = rng.poisson(self.multiplicity)
        batch = self.population.sample(n_primary, rng)
        n_pileup = rng.poisson(self.pileup_mean)
        for _ in range(n_pileup):
            z_off = rng.normal(0.0, self.pileup_z_spread)
            n_trk = rng.poisson(self.multiplicity * self.pileup_fraction)
            batch = batch.concatenated(self.population.sample(n_trk, rng, z_offset=z_off))
        return batch

    # ------------------------------------------------------------------
    def _trail_samples(
        self, tracks: TrackBatch, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample the ionization trail of every track inside the layer group.

        Returns flat arrays (one entry per valid trail sample):
        ``layer index, azimuth [rad], z [m], radius [m], amplitude [ADC]``.
        """

        geo = self.geometry
        cfg = self.digitization

        kappa = tracks.charge * _RIGIDITY * geo.b_field / tracks.pt  # signed curvature (1/m)
        abs_k = np.abs(kappa)

        # Arc length (transverse) at which the helix reaches radius r:
        #   s(r) = (2 / |k|) * asin(r |k| / 2),   needs r|k|/2 < 1.
        def arc_at(r: float) -> tuple[np.ndarray, np.ndarray]:
            arg = 0.5 * r * abs_k
            ok = arg < 1.0
            s = np.where(ok, 2.0 / abs_k * np.arcsin(np.clip(arg, 0.0, 1.0 - 1e-12)), np.inf)
            return s, ok

        s_in, ok_in = arc_at(geo.r_min)
        s_out, ok_out = arc_at(geo.r_max)
        # Tracks that enter the group; those not reaching r_max turn inside.
        enters = ok_in
        s_end = np.where(ok_out, s_out, 2.0 * np.pi / np.maximum(abs_k, 1e-12) * 0.25)
        span = np.where(enters, s_end - s_in, 0.0)

        n_steps = int(np.ceil(np.max(span, initial=0.0) / cfg.step_length)) if span.size else 0
        if n_steps == 0:
            empty = np.empty(0)
            return empty.astype(np.int64), empty, empty, empty, empty

        # (T, S) grid of arc lengths; mask steps beyond each track's span.
        steps = (np.arange(n_steps) + 0.5) * cfg.step_length
        s = s_in[:, None] + steps[None, :]
        alive = (steps[None, :] < span[:, None]) & enters[:, None]

        half = 0.5 * abs_k[:, None] * s
        r = (2.0 / abs_k)[:, None] * np.sin(np.clip(half, 0.0, 0.5 * np.pi))
        phi = tracks.phi0[:, None] - 0.5 * kappa[:, None] * s
        z = tracks.z0[:, None] + s * np.sinh(tracks.eta)[:, None]

        layer_pitch = (geo.r_max - geo.r_min) / geo.n_layers
        layer = np.floor((r - geo.r_min) / layer_pitch).astype(np.int64)
        valid = (
            alive
            & (layer >= 0)
            & (layer < geo.n_layers)
            & (np.abs(z) < geo.z_half_length)
        )

        flat = np.nonzero(valid.ravel())[0]
        layer_f = layer.ravel()[flat]
        phi_f = phi.ravel()[flat]
        z_f = z.ravel()[flat]
        r_f = r.ravel()[flat]

        # Landau-fluctuated deposit per step (Moyal = analytic Landau proxy).
        from scipy.stats import moyal

        amp = moyal.rvs(loc=cfg.de_per_step, scale=cfg.de_scale, size=flat.size, random_state=rng)
        amp = np.clip(amp, 0.0, 6.0 * ADC_MAX)
        return layer_f, phi_f, z_f, r_f, amp

    # ------------------------------------------------------------------
    def deposit(self, tracks: TrackBatch, rng: np.random.Generator) -> np.ndarray:
        """Analog charge image (float, ADC-equivalent) for one frame."""

        geo = self.geometry
        cfg = self.digitization
        charge = np.zeros(geo.event_shape, dtype=np.float64)

        layer, phi, z, r, amp = self._trail_samples(tracks, rng)
        if layer.size == 0:
            return charge

        phi_bin = geo.phi_to_bin(phi)
        z_bin = geo.z_to_bin(z)

        # Physical diffusion width -> local bin units.
        sig_phys = cfg.diffusion_floor + cfg.diffusion_const * np.sqrt(geo.drift_length(z))
        sig_phi = sig_phys / (r * geo.phi_bin_width)
        sig_z = sig_phys / geo.z_bin_width

        h = cfg.stencil_half
        offsets = np.arange(-h, h + 1)
        ip = np.floor(phi_bin).astype(np.int64)
        iz = np.floor(z_bin).astype(np.int64)
        fp = phi_bin - ip
        fz = z_bin - iz

        # Gaussian stencil weights around the fractional sample position.
        dp = offsets[None, :] + 0.5 - fp[:, None]
        dz = offsets[None, :] + 0.5 - fz[:, None]
        wp = np.exp(-0.5 * (dp / np.maximum(sig_phi, 0.25)[:, None]) ** 2)
        wz = np.exp(-0.5 * (dz / np.maximum(sig_z, 0.25)[:, None]) ** 2)
        w = wp[:, :, None] * wz[:, None, :]
        w /= w.sum(axis=(1, 2), keepdims=True)
        w *= amp[:, None, None]

        pi = np.mod(ip[:, None] + offsets[None, :], geo.n_azim)  # wraps in azimuth
        zi = iz[:, None] + offsets[None, :]
        z_ok = (zi >= 0) & (zi < geo.n_z)

        layer_flat = layer[:, None, None] * (geo.n_azim * geo.n_z)
        flat_idx = (
            layer_flat
            + pi[:, :, None] * geo.n_z
            + np.clip(zi, 0, geo.n_z - 1)[:, None, :]
        )
        w = np.where(z_ok[:, None, :], w, 0.0)

        counts = np.bincount(flat_idx.ravel(), weights=w.ravel(), minlength=charge.size)
        return counts.reshape(geo.event_shape)

    # ------------------------------------------------------------------
    def digitize(self, charge: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Noise + 10-bit quantization + zero suppression (paper §2.1)."""

        cfg = self.digitization
        noisy = charge + rng.normal(0.0, cfg.noise_sigma, size=charge.shape)
        adc = np.clip(np.rint(noisy), 0, ADC_MAX).astype(np.uint16)
        adc[adc < cfg.zero_suppression] = 0
        return adc

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(
        cls,
        geometry: TPCGeometry,
        target_occupancy: float = 0.108,
        seed: int = 0,
        **kwargs,
    ) -> "HijingLikeGenerator":
        """Build a generator whose occupancy matches the paper's on any grid.

        Occupancy follows a Poisson-overlap law ``occ = 1 - exp(-λ)`` with
        voxel hit intensity ``λ`` linear in track multiplicity, so one probe
        event suffices to solve for the multiplicity that yields
        ``target_occupancy`` (paper: 10.8%).  Coarser grids need fewer
        tracks because each trail covers a larger *fraction* of the bins.

        The per-step deposit is also rescaled: a coarser voxel integrates
        proportionally more trail steps, so without compensation the ADC
        saturates and the log spectrum inverts (values pile up at 10
        instead of falling from the 6.02 edge as in Figure 3).
        """

        paper = PAPER_GEOMETRY
        # Empirically a ^1.5 law on the mean bin-coarseness keeps the
        # per-voxel sums in the paper's dynamic range (tests/tpc assert the
        # falling Figure-3 spectrum on every preset grid).
        coarseness = math.sqrt(
            (paper.n_azim / geometry.n_azim) * (paper.n_z / geometry.n_z)
        ) ** 1.5
        if "digitization" not in kwargs and coarseness > 1.001:
            base = DigitizationConfig()
            kwargs["digitization"] = dataclasses.replace(
                base,
                de_per_step=base.de_per_step / coarseness,
                de_scale=base.de_scale / coarseness,
            )
        guess = max(
            150.0,
            4500.0 * (geometry.n_azim * geometry.n_z) / (paper.n_azim * paper.n_z),
        )
        probe = cls(geometry=geometry, multiplicity=guess, **kwargs)
        occ = probe.occupancy(probe.event(seed))
        occ = min(max(occ, 1e-4), 0.95)
        lam_probe = -math.log1p(-occ)
        lam_target = -math.log1p(-target_occupancy)
        multiplicity = guess * lam_target / lam_probe
        return cls(geometry=geometry, multiplicity=multiplicity, **kwargs)

    # ------------------------------------------------------------------
    def event(self, rng: np.random.Generator | int) -> np.ndarray:
        """One zero-suppressed layer-group event, shape :attr:`TPCGeometry.event_shape`."""

        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        tracks = self.sample_tracks(rng)
        return self.digitize(self.deposit(tracks, rng), rng)

    def wedges(self, rng: np.random.Generator | int) -> np.ndarray:
        """All 24 wedges of one event, shape ``(n_wedges, *wedge_shape)``."""

        return self.geometry.split_wedges(self.event(rng))

    def occupancy(self, adc: np.ndarray) -> float:
        """Fraction of nonzero voxels (paper reports ~10.8% on average)."""

        return float(np.count_nonzero(adc)) / adc.size
