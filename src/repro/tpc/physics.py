"""Charged-particle transport through the TPC (HIJING+Geant4 substitute).

The paper trains on HIJING Au+Au collision events pushed through a Geant4
model of the sPHENIX detector.  Neither generator is available offline, so
this module implements the minimal physics that produces statistically
faithful TPC readout:

* charged tracks follow **helices** in the 1.4 T solenoid field — circles of
  radius ``R = pT / (0.3 q B)`` in the transverse plane, linear in z;
* each pad-layer crossing deposits ionization charge with **Landau-like
  fluctuations** (scipy's Moyal distribution);
* the drifting electron cloud **diffuses**, spreading charge over
  neighbouring azimuthal/horizontal bins with a width growing like the
  square root of the drift distance.

All computations are vectorized over (tracks × layers); no Python loops
touch per-hit data.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .geometry import TPCGeometry

__all__ = ["TrackBatch", "TrackPopulation", "layer_crossings", "Crossings"]

#: pT [GeV] = 0.3 * B [T] * R [m] for unit charge — the magnetic rigidity constant.
_RIGIDITY = 0.3


@dataclasses.dataclass
class TrackBatch:
    """A set of helical charged tracks sharing one collision vertex model.

    All fields are 1D arrays of equal length (one entry per track).

    Attributes
    ----------
    pt:
        Transverse momentum [GeV/c].
    eta:
        Pseudorapidity; ``tan(lambda) = sinh(eta)`` gives the dip angle.
    phi0:
        Initial azimuth of the momentum vector [rad].
    charge:
        ±1.
    z0:
        Longitudinal vertex position [m] (pile-up collisions are displaced).
    """

    pt: np.ndarray
    eta: np.ndarray
    phi0: np.ndarray
    charge: np.ndarray
    z0: np.ndarray

    def __len__(self) -> int:
        return self.pt.shape[0]

    @property
    def radius(self) -> np.ndarray:
        """Helix radius in the transverse plane [m]."""

        return self.pt / (_RIGIDITY * 1.0)  # divided by B when crossing

    def concatenated(self, other: "TrackBatch") -> "TrackBatch":
        """A new batch holding this batch's tracks followed by ``other``'s."""

        return TrackBatch(
            pt=np.concatenate([self.pt, other.pt]),
            eta=np.concatenate([self.eta, other.eta]),
            phi0=np.concatenate([self.phi0, other.phi0]),
            charge=np.concatenate([self.charge, other.charge]),
            z0=np.concatenate([self.z0, other.z0]),
        )


@dataclasses.dataclass
class TrackPopulation:
    """Sampling distribution for the charged-particle population.

    Defaults mimic central sqrt(s_NN)=200 GeV Au+Au collisions as seen by the
    outer TPC layers: a soft exponential pT spectrum truncated at the minimum
    pT that reaches the outer radii, uniform azimuth, and |eta| limited to
    the TPC acceptance.
    """

    pt_mean: float = 0.50
    pt_min: float = 0.20
    pt_max: float = 10.0
    eta_max: float = 1.3
    vertex_sigma_z: float = 0.08

    def sample(self, n: int, rng: np.random.Generator, z_offset: float = 0.0) -> TrackBatch:
        """Draw ``n`` tracks; ``z_offset`` displaces the collision vertex."""

        # Truncated exponential pT spectrum (inverse-CDF sampling).
        u = rng.random(n)
        lo = math.exp(-(self.pt_min) / self.pt_mean)
        hi = math.exp(-(self.pt_max) / self.pt_mean)
        pt = -self.pt_mean * np.log(lo + u * (hi - lo))
        eta = rng.uniform(-self.eta_max, self.eta_max, n)
        phi0 = rng.uniform(0.0, 2.0 * math.pi, n)
        charge = rng.choice(np.array([-1.0, 1.0]), n)
        z0 = rng.normal(z_offset, self.vertex_sigma_z, n)
        return TrackBatch(
            pt=pt.astype(np.float64),
            eta=eta,
            phi0=phi0,
            charge=charge,
            z0=z0,
        )


@dataclasses.dataclass
class Crossings:
    """Layer-crossing coordinates for a batch of tracks.

    2D arrays of shape ``(n_tracks, n_layers)``; ``valid`` marks crossings
    that exist (track reaches the layer) and stay inside the drift volume.
    """

    phi: np.ndarray
    z: np.ndarray
    valid: np.ndarray
    path_factor: np.ndarray  # local dx/dr path-length factor (>= 1)


def layer_crossings(tracks: TrackBatch, geometry: TPCGeometry) -> Crossings:
    """Compute where each track crosses each pad layer.

    A helix starting at the beamline with initial azimuth ``phi0`` and signed
    curvature ``kappa = q·0.3·B / pT`` reaches transverse radius ``r`` after a
    transverse arc length ``s = (2/kappa)·asin(r·kappa/2)``; the chord
    bisection property gives the crossing azimuth
    ``phi = phi0 - kappa·s/2``.  The longitudinal coordinate advances as
    ``z = z0 + s·sinh(eta)``.

    Tracks with ``r·|kappa|/2 > 1`` curl up before reaching the layer (no
    crossing); crossings beyond the drift volume are invalid as well.

    Returns
    -------
    :class:`Crossings` with arrays of shape ``(n_tracks, n_layers)``.
    """

    radii = geometry.layer_radii[None, :]  # (1, L)
    kappa = (tracks.charge * _RIGIDITY * geometry.b_field / tracks.pt)[:, None]  # (T, 1)

    half_arg = 0.5 * radii * np.abs(kappa)
    reaches = half_arg < 1.0
    half_arg = np.clip(half_arg, 0.0, 1.0 - 1e-12)

    # Transverse arc length to the crossing (well-defined where reaches).
    s = 2.0 / np.abs(kappa) * np.arcsin(half_arg)
    phi = tracks.phi0[:, None] - 0.5 * kappa * s
    z = tracks.z0[:, None] + s * np.sinh(tracks.eta)[:, None]

    inside = np.abs(z) < geometry.z_half_length
    valid = reaches & inside

    # Path-length factor: ionization scales with the track length through the
    # layer, 1/cos(dip) for the longitudinal part and a transverse incidence
    # correction (diverges near curl-up, clipped for stability).
    dip = np.cosh(tracks.eta)[:, None]
    transverse = 1.0 / np.sqrt(np.clip(1.0 - half_arg**2, 0.05, 1.0))
    path_factor = np.broadcast_to(dip, phi.shape) * transverse

    return Crossings(phi=phi, z=z, valid=valid, path_factor=path_factor)


def moyal_deposits(
    n: int,
    rng: np.random.Generator,
    loc: float = 110.0,
    scale: float = 14.0,
) -> np.ndarray:
    """Landau-like ionization amplitudes [ADC counts before diffusion].

    Uses the Moyal distribution (scipy's analytic Landau approximation):
    sampled via its inverse CDF ``x = loc - scale·log(2·erfinv-form)``; we
    sample through scipy.stats for clarity.
    """

    from scipy.stats import moyal

    return moyal.rvs(loc=loc, scale=scale, size=n, random_state=rng)
