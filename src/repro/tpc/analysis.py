"""Dataset analysis utilities (occupancy, spectra, wedge summaries).

Helpers shared by the Figure-3 bench, the examples and the data-quality
tests: everything operates on raw uint16 ADC arrays or log-transformed
wedges and returns plain NumPy results.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .transforms import log_transform

__all__ = [
    "SpectrumSummary",
    "log_adc_histogram",
    "occupancy_per_wedge",
    "wedge_summary",
    "WedgeSummary",
]


@dataclasses.dataclass
class SpectrumSummary:
    """Figure-3-style histogram of nonzero log-ADC values."""

    edges: np.ndarray
    counts: np.ndarray
    n_nonzero: int
    n_total: int

    @property
    def occupancy(self) -> float:
        """Nonzero-voxel fraction (paper: ~10.8%)."""

        return self.n_nonzero / max(self.n_total, 1)

    def is_falling(self) -> bool:
        """Whether counts decay monotonically across whole-unit log bins.

        Aggregates the histogram into unit-width bins ([6,7), [7,8), …)
        before testing monotonicity, so fine binning does not fail on
        statistical jitter.
        """

        units = np.floor(self.edges[:-1] + 1e-9).astype(np.int64)
        totals = np.bincount(units - units.min(), weights=self.counts)
        return bool(np.all(np.diff(totals) <= 0))

    def rows(self) -> list[str]:
        """Formatted histogram rows with proportional bars."""

        out = []
        peak = max(int(self.counts.max()), 1)
        for lo, hi, c in zip(self.edges[:-1], self.edges[1:], self.counts):
            bar = "#" * max(1, int(40 * c / peak)) if c else ""
            out.append(f"[{lo:4.1f},{hi:4.1f})  {int(c):10,d}  {bar}")
        return out


def log_adc_histogram(adc: np.ndarray, bin_width: float = 0.5) -> SpectrumSummary:
    """Histogram the nonzero ``log2(ADC+1)`` values over [6, 10]."""

    logv = log_transform(np.asarray(adc))
    nz = logv[logv > 0]
    edges = np.arange(6.0, 10.0 + bin_width, bin_width)
    edges[-1] = 10.01  # include the saturated top value
    counts, _ = np.histogram(nz, bins=edges)
    return SpectrumSummary(
        edges=edges, counts=counts, n_nonzero=int(nz.size), n_total=int(logv.size)
    )


def occupancy_per_wedge(wedges: np.ndarray) -> np.ndarray:
    """Nonzero fraction of each wedge in a ``(N, R, A, H)`` batch."""

    wedges = np.asarray(wedges)
    flat = wedges.reshape(wedges.shape[0], -1)
    return (flat != 0).mean(axis=1)


@dataclasses.dataclass
class WedgeSummary:
    """Descriptive statistics of one wedge."""

    shape: tuple[int, ...]
    occupancy: float
    adc_mean_nonzero: float
    adc_max: int
    log_mean_nonzero: float

    def __str__(self) -> str:
        return (
            f"wedge{self.shape}: occ={self.occupancy:.4f} "
            f"<ADC|nz>={self.adc_mean_nonzero:.1f} max={self.adc_max} "
            f"<log|nz>={self.log_mean_nonzero:.3f}"
        )


def wedge_summary(wedge: np.ndarray) -> WedgeSummary:
    """Summarize a single raw ADC wedge."""

    wedge = np.asarray(wedge)
    nz = wedge[wedge > 0]
    logv = log_transform(wedge)
    log_nz = logv[logv > 0]
    return WedgeSummary(
        shape=tuple(wedge.shape),
        occupancy=float((wedge != 0).mean()),
        adc_mean_nonzero=float(nz.mean()) if nz.size else 0.0,
        adc_max=int(wedge.max(initial=0)),
        log_mean_nonzero=float(log_nz.mean()) if log_nz.size else 0.0,
    )
