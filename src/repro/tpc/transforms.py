"""Value and shape transforms between raw ADC wedges and network tensors.

Paper conventions reproduced here:

* networks regress ``log2(ADC + 1)`` — preserving relative ADC ratios between
  neighbouring sensors matters for trajectory interpolation (§2.1); the log
  values live in ``{0} ∪ [log2(65) ≈ 6.02, 10]``;
* BCAE++/BCAE-HT/BCAE-2D pad the horizontal axis 249 → 256 with zeros so
  every stage halves cleanly (§2.3); the padding is clipped before any
  accuracy metric is computed, "so reconstruction accuracy metrics are not
  inflated";
* the classification ground truth is the nonzero mask.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "log_transform",
    "inverse_log_transform",
    "pad_horizontal",
    "unpad_horizontal",
    "padded_length",
    "nonzero_labels",
    "LOG_EDGE",
    "LOG_MAX",
]

#: Smallest nonzero log-ADC value after zero-suppression at 64: log2(65).
LOG_EDGE = float(np.log2(65.0))

#: Largest log-ADC value: log2(1024) = 10 for a 10-bit ADC.
LOG_MAX = 10.0


def log_transform(adc: np.ndarray) -> np.ndarray:
    """``log2(ADC + 1)`` as float32 (paper §2.1)."""

    return np.log2(adc.astype(np.float32) + 1.0)


def inverse_log_transform(logv: np.ndarray) -> np.ndarray:
    """Back to integer ADC counts: ``round(2^v - 1)`` clipped to 10 bits."""

    adc = np.rint(np.exp2(logv.astype(np.float64)) - 1.0)
    return np.clip(adc, 0, 1023).astype(np.uint16)


def padded_length(length: int, multiple: int = 8) -> int:
    """Smallest multiple of ``multiple`` ≥ ``length`` (249 → 256 for the paper).

    BCAE++'s three/four halvings need the horizontal size divisible by 8
    (2D, d=3) or 16 (3D, 4 stages); 256 covers both for the paper grid.
    """

    return int(-(-length // multiple) * multiple)


def pad_horizontal(wedge: np.ndarray, target: int | None = None, multiple: int = 8) -> np.ndarray:
    """Zero-pad the last (horizontal) axis to ``target`` (paper: 249 → 256)."""

    length = wedge.shape[-1]
    target = padded_length(length, multiple) if target is None else int(target)
    if target < length:
        raise ValueError(f"target {target} shorter than horizontal size {length}")
    if target == length:
        return wedge
    pad = [(0, 0)] * (wedge.ndim - 1) + [(0, target - length)]
    return np.pad(wedge, pad)


def unpad_horizontal(wedge: np.ndarray, original: int) -> np.ndarray:
    """Clip horizontal padding before evaluation (paper §2.3)."""

    if wedge.shape[-1] < original:
        raise ValueError(
            f"cannot unpad to {original}: horizontal size is {wedge.shape[-1]}"
        )
    return wedge[..., :original]


def nonzero_labels(log_wedge: np.ndarray) -> np.ndarray:
    """Binary segmentation targets: 1 where the voxel is nonzero."""

    return (log_wedge > 0).astype(np.float32)
