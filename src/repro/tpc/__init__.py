"""``repro.tpc`` — synthetic sPHENIX TPC data substrate.

Replaces the paper's HIJING + Geant4 + sPHENIX-framework simulation chain
(unavailable offline) with a statistically faithful generator: helical track
transport, Landau-fluctuated ionization, drift diffusion, pile-up, noise,
10-bit digitization and zero-suppression at 64 ADC counts.  See DESIGN.md
§2 for the substitution argument.
"""

from .analysis import (
    SpectrumSummary,
    WedgeSummary,
    log_adc_histogram,
    occupancy_per_wedge,
    wedge_summary,
)
from .dataset import (
    DataLoader,
    WedgeDataset,
    generate_wedge_dataset,
    generate_wedge_stream,
    train_test_split_events,
)
from .events import ADC_MAX, ZERO_SUPPRESSION_THRESHOLD, DigitizationConfig, HijingLikeGenerator
from .geometry import (
    INNER_GROUP,
    LAYER_GROUPS,
    MIDDLE_GROUP,
    OUTER_GROUP,
    PAPER_GEOMETRY,
    SMALL_GEOMETRY,
    TINY_GEOMETRY,
    TPCGeometry,
    full_tpc_voxels,
)
from .physics import Crossings, TrackBatch, TrackPopulation, layer_crossings
from .reco import (
    Cluster,
    ResidualSummary,
    centroid_residuals,
    find_clusters,
    match_clusters,
)
from .transforms import (
    LOG_EDGE,
    LOG_MAX,
    inverse_log_transform,
    log_transform,
    nonzero_labels,
    pad_horizontal,
    padded_length,
    unpad_horizontal,
)

__all__ = [
    "TPCGeometry",
    "PAPER_GEOMETRY",
    "SMALL_GEOMETRY",
    "TINY_GEOMETRY",
    "INNER_GROUP",
    "MIDDLE_GROUP",
    "OUTER_GROUP",
    "LAYER_GROUPS",
    "full_tpc_voxels",
    "SpectrumSummary",
    "WedgeSummary",
    "log_adc_histogram",
    "occupancy_per_wedge",
    "wedge_summary",
    "Cluster",
    "ResidualSummary",
    "find_clusters",
    "match_clusters",
    "centroid_residuals",
    "TrackBatch",
    "TrackPopulation",
    "Crossings",
    "layer_crossings",
    "HijingLikeGenerator",
    "DigitizationConfig",
    "ZERO_SUPPRESSION_THRESHOLD",
    "ADC_MAX",
    "WedgeDataset",
    "DataLoader",
    "generate_wedge_dataset",
    "generate_wedge_stream",
    "train_test_split_events",
    "log_transform",
    "inverse_log_transform",
    "pad_horizontal",
    "unpad_horizontal",
    "padded_length",
    "nonzero_labels",
    "LOG_EDGE",
    "LOG_MAX",
]
