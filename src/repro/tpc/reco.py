"""Hit clustering and position reconstruction (the paper's §2.1 criterion).

Why MAE alone is not the end of the story: "trajectory locations must be
interpolated from neighboring sensors using the ADC values, it is important
to preserve the relative ADC ratio between the sensors" (§2.1).  The
physics-level figure of merit of a TPC compressor is therefore the shift it
induces in *cluster centroids* — the ADC-weighted positions from which
track fits interpolate trajectories.

This module provides the minimal reconstruction chain needed to measure it:

* :func:`find_clusters` — per-layer connected-component clustering of
  nonzero voxels (scipy.ndimage) with ADC-weighted centroids;
* :func:`match_clusters` — greedy nearest-centroid matching between two
  cluster sets (e.g. original vs decompressed wedge);
* :func:`centroid_residuals` — the distribution of matched-centroid shifts,
  in bins, plus efficiency/fake rates — the numbers that tell a physicist
  whether a compressor is usable.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.ndimage

__all__ = [
    "Cluster",
    "find_clusters",
    "match_clusters",
    "ResidualSummary",
    "centroid_residuals",
]


@dataclasses.dataclass
class Cluster:
    """One contiguous charge blob on a single pad layer.

    Attributes
    ----------
    layer:
        Radial layer index.
    centroid:
        ADC-weighted (azimuthal, horizontal) centre in fractional bins.
    charge:
        Total ADC-equivalent charge.
    size:
        Number of voxels.
    """

    layer: int
    centroid: tuple[float, float]
    charge: float
    size: int


def find_clusters(
    wedge: np.ndarray,
    min_charge: float = 0.0,
    min_size: int = 1,
    connectivity: int = 2,
) -> list[Cluster]:
    """Cluster the nonzero voxels of a ``(R, A, H)`` wedge, layer by layer.

    Parameters
    ----------
    wedge:
        Raw ADC or log-ADC values; zeros are background.
    min_charge, min_size:
        Quality cuts applied after labelling (noise rejection).
    connectivity:
        1 = edge-adjacency, 2 = include diagonals (default; drift diffusion
        couples diagonal bins).
    """

    wedge = np.asarray(wedge)
    if wedge.ndim != 3:
        raise ValueError(f"expected (radial, azim, horiz), got {wedge.shape}")
    structure = scipy.ndimage.generate_binary_structure(2, connectivity)
    out: list[Cluster] = []
    for layer in range(wedge.shape[0]):
        plane = wedge[layer]
        labels, n = scipy.ndimage.label(plane > 0, structure=structure)
        if n == 0:
            continue
        idx = np.arange(1, n + 1)
        charges = scipy.ndimage.sum_labels(plane, labels, idx)
        sizes = scipy.ndimage.sum_labels(plane > 0, labels, idx)
        centroids = scipy.ndimage.center_of_mass(plane, labels, idx)
        for (ca, ch), q, s in zip(centroids, charges, sizes):
            if q >= min_charge and s >= min_size:
                out.append(
                    Cluster(
                        layer=layer,
                        centroid=(float(ca), float(ch)),
                        charge=float(q),
                        size=int(s),
                    )
                )
    return out


def match_clusters(
    reference: list[Cluster],
    test: list[Cluster],
    max_distance: float = 3.0,
) -> list[tuple[Cluster, Cluster]]:
    """Greedy nearest-centroid matching within each layer.

    Each reference cluster grabs the closest unmatched test cluster within
    ``max_distance`` bins (Euclidean in the azim-horiz plane), largest
    charge first — the standard reco-efficiency convention.
    """

    pairs: list[tuple[Cluster, Cluster]] = []
    by_layer: dict[int, list[Cluster]] = {}
    for c in test:
        by_layer.setdefault(c.layer, []).append(c)
    taken: set[int] = set()
    for ref in sorted(reference, key=lambda c: -c.charge):
        candidates = by_layer.get(ref.layer, [])
        best = None
        best_d = max_distance
        for cand in candidates:
            if id(cand) in taken:
                continue
            d = float(np.hypot(
                ref.centroid[0] - cand.centroid[0],
                ref.centroid[1] - cand.centroid[1],
            ))
            if d <= best_d:
                best, best_d = cand, d
        if best is not None:
            taken.add(id(best))
            pairs.append((ref, best))
    return pairs


@dataclasses.dataclass
class ResidualSummary:
    """Cluster-level comparison of original vs decompressed wedges."""

    n_reference: int
    n_test: int
    n_matched: int
    mean_shift: float  # bins
    p95_shift: float  # bins
    mean_charge_ratio: float

    @property
    def efficiency(self) -> float:
        """Matched fraction of reference clusters."""

        return self.n_matched / max(self.n_reference, 1)

    @property
    def fake_rate(self) -> float:
        """Unmatched fraction of test clusters (fabricated blobs)."""

        return 1.0 - self.n_matched / max(self.n_test, 1)

    def row(self) -> str:
        """One-line summary for physics-impact tables."""

        return (
            f"clusters ref/test={self.n_reference}/{self.n_test} "
            f"eff={self.efficiency:6.3f} fake={self.fake_rate:6.3f} "
            f"shift(mean/p95)={self.mean_shift:.3f}/{self.p95_shift:.3f} bins "
            f"charge ratio={self.mean_charge_ratio:.3f}"
        )


def centroid_residuals(
    original: np.ndarray,
    reconstructed: np.ndarray,
    min_charge: float = 0.0,
    min_size: int = 2,
    max_distance: float = 3.0,
) -> ResidualSummary:
    """The §2.1 figure of merit: centroid shifts induced by compression.

    Parameters
    ----------
    original, reconstructed:
        Same-shape ``(R, A, H)`` wedges (raw or log scale — centroids are
        scale-covariant as long as both use the same scale).
    """

    if original.shape != reconstructed.shape:
        raise ValueError("wedges must share a shape")
    ref = find_clusters(original, min_charge=min_charge, min_size=min_size)
    test = find_clusters(reconstructed, min_charge=min_charge, min_size=min_size)
    pairs = match_clusters(ref, test, max_distance=max_distance)

    if pairs:
        shifts = np.array(
            [
                np.hypot(a.centroid[0] - b.centroid[0], a.centroid[1] - b.centroid[1])
                for a, b in pairs
            ]
        )
        ratios = np.array([b.charge / max(a.charge, 1e-12) for a, b in pairs])
        mean_shift = float(shifts.mean())
        p95 = float(np.quantile(shifts, 0.95))
        mean_ratio = float(ratios.mean())
    else:
        mean_shift = p95 = float("nan")
        mean_ratio = float("nan")
    return ResidualSummary(
        n_reference=len(ref),
        n_test=len(test),
        n_matched=len(pairs),
        mean_shift=mean_shift,
        p95_shift=p95,
        mean_charge_ratio=mean_ratio,
    )
