"""sPHENIX-like TPC geometry (paper §2.1, Figures 1–2).

The sPHENIX Time Projection Chamber is a cylindrical drift volume read out on
48 radial pad layers grouped into three *layer groups* (inner/middle/outer,
16 layers each).  Within a group every layer shares the same azimuthal
segmentation, so a group digitizes to a dense 3D array
``(layers, azimuthal, horizontal)``.  The paper studies the **outer** group,
whose full-barrel array is ``(16, 2304, 498)``.

Readout is partitioned into 24 equal *wedges* — 12 azimuthal sectors of 30°
× 2 horizontal halves split at the collision point — giving the
``(16, 192, 249)`` wedge arrays that are the compressor's unit of work.

:class:`TPCGeometry` parameterizes all of this so the test-suite and the
CPU-scaled experiments can run on smaller grids while the paper-exact grid
remains the default.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["TPCGeometry", "PAPER_GEOMETRY", "SMALL_GEOMETRY", "TINY_GEOMETRY"]


@dataclasses.dataclass(frozen=True)
class TPCGeometry:
    """Geometry of one TPC layer group and its wedge partitioning.

    Attributes
    ----------
    n_layers:
        Radial pad layers in the group (paper: 16).
    n_azim:
        Azimuthal bins of the full barrel (paper outer group: 2304).
    n_z:
        Horizontal (z / drift-time) bins of the full barrel (paper: 498).
    n_wedges_azim:
        Azimuthal sectors (paper: 12 → 30° each).
    n_z_halves:
        Horizontal halves split at the transverse plane through the
        collision point (paper: 2).
    r_min, r_max:
        Inner/outer radius of the layer group [m] (sPHENIX outer group:
        ~0.60–0.78 m).
    z_half_length:
        Half-length of the drift volume [m] (sPHENIX: ~1.055 m).
    b_field:
        Solenoid field [T] (sPHENIX: 1.4 T).
    """

    n_layers: int = 16
    n_azim: int = 2304
    n_z: int = 498
    n_wedges_azim: int = 12
    n_z_halves: int = 2
    r_min: float = 0.60
    r_max: float = 0.78
    z_half_length: float = 1.055
    b_field: float = 1.4

    def __post_init__(self) -> None:
        if self.n_azim % self.n_wedges_azim:
            raise ValueError("n_azim must divide evenly into azimuthal wedges")
        if self.n_z % self.n_z_halves:
            raise ValueError("n_z must divide evenly into horizontal halves")

    # ------------------------------------------------------------------
    # derived sizes
    # ------------------------------------------------------------------
    @property
    def wedge_azim(self) -> int:
        """Azimuthal bins per wedge (paper: 192)."""

        return self.n_azim // self.n_wedges_azim

    @property
    def wedge_z(self) -> int:
        """Horizontal bins per wedge (paper: 249)."""

        return self.n_z // self.n_z_halves

    @property
    def n_wedges(self) -> int:
        """Total wedges per event (paper: 24)."""

        return self.n_wedges_azim * self.n_z_halves

    @property
    def wedge_shape(self) -> tuple[int, int, int]:
        """Wedge array shape ``(radial, azimuthal, horizontal)`` (paper: (16, 192, 249))."""

        return (self.n_layers, self.wedge_azim, self.wedge_z)

    @property
    def event_shape(self) -> tuple[int, int, int]:
        """Full layer-group array shape (paper: (16, 2304, 498))."""

        return (self.n_layers, self.n_azim, self.n_z)

    @property
    def voxels_per_wedge(self) -> int:
        """Voxels per wedge (paper: 764,928)."""

        return int(np.prod(self.wedge_shape))

    # ------------------------------------------------------------------
    # physical coordinates
    # ------------------------------------------------------------------
    @property
    def layer_radii(self) -> np.ndarray:
        """Radius of each pad layer [m], uniformly spaced in the group."""

        return np.linspace(self.r_min, self.r_max, self.n_layers)

    @property
    def phi_bin_width(self) -> float:
        """Azimuthal bin width [rad]."""

        return 2.0 * math.pi / self.n_azim

    @property
    def z_bin_width(self) -> float:
        """Horizontal bin width [m]."""

        return 2.0 * self.z_half_length / self.n_z

    def phi_to_bin(self, phi: np.ndarray) -> np.ndarray:
        """Map azimuth [rad] to fractional global azimuthal bin index."""

        return (np.mod(phi, 2.0 * math.pi)) / self.phi_bin_width

    def z_to_bin(self, z: np.ndarray) -> np.ndarray:
        """Map z [m] to fractional global horizontal bin index."""

        return (z + self.z_half_length) / self.z_bin_width

    def drift_length(self, z: np.ndarray) -> np.ndarray:
        """Drift distance [m] from the ionization point to the endcap.

        Electrons drift away from the central membrane at z=0 toward the
        nearer endcap; diffusion grows with this distance.
        """

        return self.z_half_length - np.abs(z)

    # ------------------------------------------------------------------
    # wedge partitioning (paper §2.1)
    # ------------------------------------------------------------------
    def split_wedges(self, event: np.ndarray) -> np.ndarray:
        """Split a full layer-group array into its 24 wedges.

        Parameters
        ----------
        event:
            Array of shape :attr:`event_shape`.

        Returns
        -------
        Array of shape ``(n_wedges, n_layers, wedge_azim, wedge_z)``; wedge
        index runs azimuth-major then z-half.
        """

        if event.shape != self.event_shape:
            raise ValueError(f"expected event shape {self.event_shape}, got {event.shape}")
        wa, wz = self.wedge_azim, self.wedge_z
        out = np.empty((self.n_wedges,) + self.wedge_shape, dtype=event.dtype)
        idx = 0
        for ia in range(self.n_wedges_azim):
            for iz in range(self.n_z_halves):
                out[idx] = event[:, ia * wa : (ia + 1) * wa, iz * wz : (iz + 1) * wz]
                idx += 1
        return out

    def assemble_wedges(self, wedges: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`split_wedges` (exact partition property)."""

        expected = (self.n_wedges,) + self.wedge_shape
        if wedges.shape != expected:
            raise ValueError(f"expected wedges shape {expected}, got {wedges.shape}")
        wa, wz = self.wedge_azim, self.wedge_z
        event = np.empty(self.event_shape, dtype=wedges.dtype)
        idx = 0
        for ia in range(self.n_wedges_azim):
            for iz in range(self.n_z_halves):
                event[:, ia * wa : (ia + 1) * wa, iz * wz : (iz + 1) * wz] = wedges[idx]
                idx += 1
        return event

    def scaled(self, azim: int, z: int) -> "TPCGeometry":
        """A geometry with the same physics but a coarser readout grid."""

        return dataclasses.replace(self, n_azim=azim, n_z=z)


#: The paper's outer-layer-group geometry: wedges of shape (16, 192, 249).
PAPER_GEOMETRY = TPCGeometry()

#: CPU-friendly geometry for statistical experiments: wedges of (16, 48, 64).
SMALL_GEOMETRY = TPCGeometry(n_azim=576, n_z=128)

#: Minimal geometry for fast unit tests: wedges of (16, 24, 32).
TINY_GEOMETRY = TPCGeometry(n_azim=288, n_z=64)

# ----------------------------------------------------------------------
# the full sPHENIX TPC: three layer groups (paper §2.1 / Figure 1).
# The paper evaluates on the outer group only; inner/middle presets complete
# the detector model (the "42M-voxel" frames of §1 are the three groups
# together: (1152 + 1536 + 2304) · 498 · 16 ≈ 39.8M voxels).
# ----------------------------------------------------------------------

#: Inner layer group: 16 layers at r ≈ 0.30–0.40 m, coarser azimuth.
INNER_GROUP = TPCGeometry(n_azim=1152, r_min=0.30, r_max=0.40)

#: Middle layer group: 16 layers at r ≈ 0.40–0.60 m.
MIDDLE_GROUP = TPCGeometry(n_azim=1536, r_min=0.40, r_max=0.60)

#: Outer layer group — identical to :data:`PAPER_GEOMETRY`.
OUTER_GROUP = PAPER_GEOMETRY

#: All three layer groups, innermost first.
LAYER_GROUPS = (INNER_GROUP, MIDDLE_GROUP, OUTER_GROUP)


def full_tpc_voxels() -> int:
    """Total voxels of one full-TPC frame (paper §1: "42M-voxels")."""

    return sum(int(np.prod(g.event_shape)) for g in LAYER_GROUPS)
