"""Wedge datasets and batching (paper §2.1, §2.5).

The paper divides 1310 events (×24 wedges) into 1048 training events (25152
wedges) and 262 test events (6288 wedges), an 80/20 event-level split, and
trains with batch size 4.  :class:`WedgeDataset` reproduces the pipeline at
any scale: events are generated (or loaded), split **by event** so wedges of
one collision never straddle the train/test boundary, log-transformed, and
padded for the network.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterator

import numpy as np

from .events import HijingLikeGenerator
from .geometry import TPCGeometry
from .transforms import log_transform, nonzero_labels, pad_horizontal, padded_length

__all__ = [
    "WedgeDataset",
    "DataLoader",
    "generate_wedge_dataset",
    "generate_wedge_stream",
    "train_test_split_events",
]


def train_test_split_events(n_events: int, test_fraction: float = 0.2) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic event-level split (paper: 1048 train / 262 test).

    The paper's split is a leading/trailing partition of the event list, not
    a shuffle; we keep that convention for reproducibility.
    """

    n_test = max(1, int(round(n_events * test_fraction))) if n_events > 1 else 0
    n_train = n_events - n_test
    return np.arange(n_train), np.arange(n_train, n_events)


@dataclasses.dataclass
class WedgeDataset:
    """In-memory collection of raw ADC wedges plus the network-side views.

    Attributes
    ----------
    wedges:
        uint16 array ``(N, layers, azim, horiz)`` of zero-suppressed ADC.
    geometry:
        The generating geometry (needed for unpadding/evaluation).
    """

    wedges: np.ndarray
    geometry: TPCGeometry

    def __post_init__(self) -> None:
        if self.wedges.ndim != 4:
            raise ValueError("wedges must be (N, layers, azim, horiz)")

    def __len__(self) -> int:
        return self.wedges.shape[0]

    @property
    def horizontal(self) -> int:
        """Raw (unpadded) horizontal wedge size."""

        return self.wedges.shape[-1]

    @property
    def padded_horizontal(self) -> int:
        """Horizontal size after padding to a multiple of 16 (§2.3)."""

        return padded_length(self.horizontal, 16)

    def occupancy(self) -> float:
        """Nonzero-voxel fraction across the dataset (paper: ~10.8%)."""

        return float(np.count_nonzero(self.wedges)) / self.wedges.size

    def log_wedge(self, index: int, padded: bool = True) -> np.ndarray:
        """One wedge as the network sees it: log-transformed, zero-padded."""

        w = log_transform(self.wedges[index])
        return pad_horizontal(w, self.padded_horizontal) if padded else w

    def batch(self, indices: np.ndarray, padded: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """(inputs, labels) for the given wedge indices.

        Returns
        -------
        inputs:
            float32 ``(B, layers, azim, horiz[padded])`` log-ADC values.
        labels:
            float32 binary nonzero masks of the same shape.
        """

        w = log_transform(self.wedges[indices])
        if padded:
            w = pad_horizontal(w, self.padded_horizontal)
        return w, nonzero_labels(w)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Archive wedges + geometry to a compressed npz file."""

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            wedges=self.wedges,
            geometry=np.array(
                [
                    self.geometry.n_layers,
                    self.geometry.n_azim,
                    self.geometry.n_z,
                    self.geometry.n_wedges_azim,
                    self.geometry.n_z_halves,
                ],
                dtype=np.int64,
            ),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "WedgeDataset":
        """Load a dataset previously written by :meth:`save`."""

        with np.load(Path(path)) as data:
            wedges = data["wedges"]
            g = data["geometry"]
        geometry = TPCGeometry(
            n_layers=int(g[0]),
            n_azim=int(g[1]),
            n_z=int(g[2]),
            n_wedges_azim=int(g[3]),
            n_z_halves=int(g[4]),
        )
        return cls(wedges=wedges, geometry=geometry)


class DataLoader:
    """Minimal shuffling batch iterator over a :class:`WedgeDataset`."""

    def __init__(
        self,
        dataset: WedgeDataset,
        batch_size: int = 4,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.batch(idx)


def generate_wedge_stream(
    n_wedges: int,
    geometry: TPCGeometry | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Exactly ``n_wedges`` synthetic raw wedges ``(N, R, A, H)``.

    The flat-array counterpart of :func:`generate_wedge_dataset` for
    serving/benchmark streams: events are generated until the wedge budget
    is covered, then truncated.  Chunks are collected and concatenated once
    (no quadratic grow-by-append).
    """

    if n_wedges < 0:
        raise ValueError(f"n_wedges must be >= 0, got {n_wedges}")
    if geometry is None:
        generator = HijingLikeGenerator()
    else:
        generator = HijingLikeGenerator.calibrated(geometry, seed=seed)
    geometry = generator.geometry
    if n_wedges == 0:
        return np.empty((0,) + geometry.wedge_shape, dtype=np.uint16)
    rng = np.random.default_rng(seed)
    chunks = []
    total = 0
    while total < n_wedges:
        chunk = generator.wedges(rng)
        chunks.append(chunk)
        total += chunk.shape[0]
    return np.ascontiguousarray(np.concatenate(chunks, axis=0)[:n_wedges])


def generate_wedge_dataset(
    n_events: int,
    geometry: TPCGeometry | None = None,
    generator: HijingLikeGenerator | None = None,
    seed: int = 0,
    test_fraction: float = 0.2,
) -> tuple[WedgeDataset, WedgeDataset]:
    """Generate an event sample and split it into train/test wedge datasets.

    Mirrors the paper's pipeline: N events × 24 wedges each, event-level
    80/20 split.  Each event gets an independent child seed so datasets are
    reproducible and order-independent.
    """

    if generator is None:
        if geometry is None:
            generator = HijingLikeGenerator()
        else:
            # Non-paper grids get their multiplicity re-calibrated so the
            # occupancy matches the paper's ~10.8% (see DESIGN.md §2).
            generator = HijingLikeGenerator.calibrated(geometry, seed=seed)
    geometry = generator.geometry

    seeds = np.random.SeedSequence(seed).spawn(n_events)
    all_wedges = np.empty(
        (n_events * geometry.n_wedges,) + geometry.wedge_shape, dtype=np.uint16
    )
    for i, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        all_wedges[i * geometry.n_wedges : (i + 1) * geometry.n_wedges] = generator.wedges(rng)

    train_ev, test_ev = train_test_split_events(n_events, test_fraction)
    nw = geometry.n_wedges
    train_idx = (train_ev[:, None] * nw + np.arange(nw)[None, :]).ravel()
    test_idx = (test_ev[:, None] * nw + np.arange(nw)[None, :]).ravel()
    return (
        WedgeDataset(all_wedges[train_idx], geometry),
        WedgeDataset(all_wedges[test_idx], geometry),
    )
