"""``repro.rate`` — the adaptive per-wedge codec-selection tier.

The variable-rate follow-up to the paper ("Variable Rate Neural
Compression for Sparse Detector Data", arXiv 2411.11942) observes that
TPC occupancy varies wildly per wedge, so a fixed-rate BCAE wastes its
24 576 fp16 code elements on near-empty wedges a classical codec crushes.
This package is the selection layer binding the repo's existing parts:

* :mod:`~repro.rate.registry` — the append-only codec-id table (id 0 is
  the BCAE fast path; classical ids map to :mod:`repro.baselines` codecs
  over the log-ADC domain) plus the loud unknown-id rejection that keeps
  mixed archives trustworthy;
* :mod:`~repro.rate.policy` — :class:`OccupancyPolicy` routes each wedge
  from its occupancy/activity features and records the auditable
  :class:`RateDecision` (features, codec, estimated vs actual bytes);
* :mod:`~repro.rate.budget` — :class:`RateBudget` resolves a stream-level
  Mbps budget into a **stateless** per-wedge byte allowance, keeping
  decisions batch-invariant (the serving parity contract);
* :mod:`~repro.rate.tier` — :class:`AdaptiveCompressor`, a drop-in
  :class:`~repro.core.BCAECompressor` twin the serving stack hosts
  unchanged (``ServiceConfig.rate_policy`` / ``repro-tpc serve
  --rate-policy occupancy``);
* :mod:`~repro.rate.records` — per-wedge record byte arithmetic and the
  gateway's record wire frame (payload + decision per wedge).

Mixed batches round-trip through :mod:`repro.io` archives
(``concat_compressed`` / ``split_compressed`` re-index the per-wedge
records) and BCAE-routed wedges stay byte-identical to the all-BCAE path.
"""

from .budget import RateBudget
from .policy import (
    POLICY_NAMES,
    OccupancyPolicy,
    RateDecision,
    make_policy,
    wedge_features,
)
from .records import (
    RECORD_FRAME_MAGIC,
    decode_record_frame,
    encode_record_frames,
    is_record_frame,
    record_offsets,
    record_views,
    records_to_compressed,
)
from .registry import (
    BCAE_CODEC_ID,
    SPARSE_CODEC_ID,
    SZLIKE_CODEC_ID,
    CodecEntry,
    classical_codec,
    codec_entry,
    codec_error_bound,
    codec_name,
    known_codec_ids,
    validate_codec_ids,
)
from .tier import AdaptiveCompressor, aggregate_ratio

__all__ = [
    "AdaptiveCompressor",
    "aggregate_ratio",
    "RateBudget",
    "RateDecision",
    "OccupancyPolicy",
    "POLICY_NAMES",
    "make_policy",
    "wedge_features",
    "BCAE_CODEC_ID",
    "SPARSE_CODEC_ID",
    "SZLIKE_CODEC_ID",
    "CodecEntry",
    "classical_codec",
    "codec_entry",
    "codec_error_bound",
    "codec_name",
    "known_codec_ids",
    "validate_codec_ids",
    "RECORD_FRAME_MAGIC",
    "encode_record_frames",
    "decode_record_frame",
    "is_record_frame",
    "record_offsets",
    "record_views",
    "records_to_compressed",
]
