"""Occupancy-driven per-wedge codec selection, with a recorded decision.

TPC occupancy varies wildly per wedge (paper §1; the follow-up arXiv
2411.11942 builds a whole model family on it): a central-membrane wedge in
a busy event is dense, an outer wedge in a quiet crossing is almost empty.
The fixed-rate BCAE spends the same 24 576 fp16 code elements either way —
on a near-empty wedge that is nearly all waste, and a cheap classical
codec (long zero runs → cheap Huffman symbols) beats it by orders of
magnitude.  :class:`OccupancyPolicy` routes each wedge accordingly and
records *why* in a :class:`RateDecision`, the auditable unit the archive
header, the serving ledger and the bench all carry.

Determinism contract: selection is a pure function of the single wedge
(features + the stateless :class:`~repro.rate.budget.RateBudget`
allowance).  No running totals, no batch context — so inline, process-pool
and gateway serving produce identical decisions for identical streams, as
the parity tests assert.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .budget import RateBudget
from .registry import BCAE_CODEC_ID, SPARSE_CODEC_ID, codec_name

__all__ = [
    "POLICY_NAMES",
    "OccupancyPolicy",
    "RateDecision",
    "make_policy",
    "wedge_features",
]

#: Policy names the CLI / ServiceConfig accept.
POLICY_NAMES = ("occupancy",)

#: Classical-record size model for the sparse coordinate-list codec:
#: header floor plus amortized index-gap + value bits per occupied voxel.
#: Deliberately crude — the estimate only has to rank codecs consistently,
#: and the *actual* bytes are recorded next to it in every decision.
_CLASSICAL_BASE_BYTES = 96
_CLASSICAL_BYTES_PER_HIT = 3


@dataclasses.dataclass(frozen=True)
class RateDecision:
    """Why one wedge was routed to its codec.

    Stored per wedge in mixed-codec archives and carried through the
    serving ledger; all fields are pure functions of the wedge, so two
    decisions for the same wedge are equal regardless of how the stream
    was batched or sharded.
    """

    #: Fraction of nonzero voxels in the raw wedge.
    occupancy: float
    #: Mean log2(ADC + 1) over the occupied voxels (0.0 for empty wedges).
    activity: float
    #: Chosen codec (see :mod:`repro.rate.registry`).
    codec_id: int
    #: Stable codec name (redundant with the id; kept for readability).
    codec: str
    #: The policy's record-size estimate at selection time.
    est_bytes: int
    #: The record size actually produced.
    actual_bytes: int

    def as_row(self) -> tuple[float, float, float, float, float]:
        """Numeric row for npz storage (name is recovered from the id)."""

        return (
            float(self.codec_id),
            float(self.occupancy),
            float(self.activity),
            float(self.est_bytes),
            float(self.actual_bytes),
        )

    @classmethod
    def from_row(cls, row) -> "RateDecision":
        codec_id = int(row[0])
        return cls(
            occupancy=float(row[1]),
            activity=float(row[2]),
            codec_id=codec_id,
            codec=codec_name(codec_id),
            est_bytes=int(row[3]),
            actual_bytes=int(row[4]),
        )


def wedge_features(wedge: np.ndarray) -> tuple[float, float]:
    """``(occupancy, activity)`` of one raw ADC wedge ``(R, A, H)``.

    Occupancy is the nonzero fraction; activity is the mean log2(ADC+1)
    over occupied voxels (the scale reconstruction error lives on).
    """

    wedge = np.asarray(wedge)
    hits = np.count_nonzero(wedge)
    occupancy = hits / wedge.size
    if hits == 0:
        return 0.0, 0.0
    vals = wedge[wedge != 0].astype(np.float64)
    activity = float(np.log2(vals + 1.0).mean())
    return float(occupancy), activity


class OccupancyPolicy:
    """Sparse wedges → a cheap classical codec; dense wedges → the BCAE.

    Parameters
    ----------
    sparse_occupancy:
        Wedges with a nonzero fraction *below* this route to the classical
        codec.  The default (5%) sits well under typical busy-event
        occupancy while catching the near-empty wedges where fixed-rate
        codes are pure waste.
    sparse_codec_id:
        Which classical codec takes the sparse route (default
        :data:`~repro.rate.registry.SPARSE_CODEC_ID` — the coordinate-list
        codec, whose payload scales with occupancy and which carries a
        hard error bound).
    budget:
        Optional :class:`~repro.rate.budget.RateBudget`.  When the chosen
        codec's estimated record exceeds the per-wedge allowance, the
        policy falls back to the candidate with the smallest estimate —
        still a pure per-wedge rule.
    """

    name = "occupancy"

    def __init__(self, sparse_occupancy: float = 0.05,
                 sparse_codec_id: int = SPARSE_CODEC_ID,
                 budget: RateBudget | None = None) -> None:
        if not 0.0 <= sparse_occupancy <= 1.0:
            raise ValueError(
                f"sparse_occupancy must be in [0, 1], got {sparse_occupancy}"
            )
        if sparse_codec_id == BCAE_CODEC_ID:
            raise ValueError("sparse_codec_id must name a classical codec")
        codec_name(sparse_codec_id)  # fail fast on unknown ids
        self.sparse_occupancy = float(sparse_occupancy)
        self.sparse_codec_id = int(sparse_codec_id)
        self.budget = budget

    # ------------------------------------------------------------------
    def estimate_bytes(self, codec_id: int, wedge: np.ndarray,
                       bcae_record_nbytes: int) -> int:
        """Deterministic record-size estimate for one candidate codec."""

        if codec_id == BCAE_CODEC_ID:
            return int(bcae_record_nbytes)
        hits = int(np.count_nonzero(wedge))
        return _CLASSICAL_BASE_BYTES + _CLASSICAL_BYTES_PER_HIT * hits

    def select(self, wedge: np.ndarray,
               bcae_record_nbytes: int) -> tuple[int, float, float, int]:
        """Route one wedge; returns ``(codec_id, occupancy, activity,
        est_bytes)``.

        Pure per-wedge function — see the module docstring's determinism
        contract.
        """

        occupancy, activity = wedge_features(wedge)
        codec_id = (self.sparse_codec_id
                    if occupancy < self.sparse_occupancy
                    else BCAE_CODEC_ID)
        est = self.estimate_bytes(codec_id, wedge, bcae_record_nbytes)
        if self.budget is not None and not self.budget.fits(est):
            candidates = (BCAE_CODEC_ID, self.sparse_codec_id)
            estimates = [
                self.estimate_bytes(c, wedge, bcae_record_nbytes)
                for c in candidates
            ]
            smallest = int(np.argmin(estimates))
            codec_id, est = candidates[smallest], estimates[smallest]
        return codec_id, occupancy, activity, int(est)


def make_policy(name: str, budget_mbps: float | None = None,
                wedges_per_second: float | None = None,
                sparse_occupancy: float = 0.05) -> OccupancyPolicy:
    """Build a selection policy from CLI-shaped knobs.

    ``budget_mbps`` (with an optional nominal ``wedges_per_second``)
    attaches a stateless :class:`RateBudget`; see that class for why the
    budget is per-wedge rather than cumulative.
    """

    if name not in POLICY_NAMES:
        raise ValueError(f"rate policy must be one of {POLICY_NAMES}, got {name!r}")
    budget = None
    if budget_mbps is not None:
        kwargs = {}
        if wedges_per_second is not None:
            kwargs["wedges_per_second"] = wedges_per_second
        budget = RateBudget(budget_mbps, **kwargs)
    return OccupancyPolicy(sparse_occupancy=sparse_occupancy, budget=budget)
