"""Stream-level bandwidth budget, enforced as a per-wedge byte allowance.

The follow-up paper's constraint (arXiv 2411.11942) is a link budget: the
archival stream out of the counting house may not exceed N Mbps.  A naive
implementation — accumulate bytes, switch codecs when the running total
crosses the line — makes each wedge's codec depend on *everything that
came before it*, which destroys the serving tier's core promise that
payload bytes are independent of batching, sharding and backend (inline,
process pool, gateway sessions all batch differently).

So the budget is enforced **statelessly**: the Mbps figure divided by the
stream's nominal wedge rate (sPHENIX: 77 kHz x 24 wedges unless
configured otherwise) gives a per-wedge byte allowance, and the policy
must pick a codec whose estimated record fits it.  Every wedge's decision
is then a pure function of that wedge alone — deterministic and
batch-invariant by construction, which is exactly what the serving parity
tests assert.
"""

from __future__ import annotations

import dataclasses

from ..daq.simulation import SPHENIX_FRAME_RATE_HZ, WEDGES_PER_FRAME

__all__ = ["RateBudget"]


@dataclasses.dataclass(frozen=True)
class RateBudget:
    """A bandwidth budget resolved to a deterministic per-wedge allowance.

    Attributes
    ----------
    mbps:
        Stream budget in megabits per second (decimal: 1 Mbps = 1e6 b/s).
    wedges_per_second:
        Nominal wedge rate the budget is spread over.  Defaults to the
        paper's outer-layer-group offered load (77 kHz x 24 wedges); pass
        the actual deployment rate for real links.
    """

    mbps: float
    wedges_per_second: float = SPHENIX_FRAME_RATE_HZ * WEDGES_PER_FRAME

    def __post_init__(self) -> None:
        if self.mbps <= 0:
            raise ValueError(f"budget mbps must be > 0, got {self.mbps}")
        if self.wedges_per_second <= 0:
            raise ValueError(
                f"wedges_per_second must be > 0, got {self.wedges_per_second}"
            )

    @property
    def per_wedge_bytes(self) -> float:
        """The stateless allowance: budget bytes/s over nominal wedges/s."""

        return (self.mbps * 1e6 / 8.0) / self.wedges_per_second

    def fits(self, est_bytes: int) -> bool:
        """Whether an estimated record respects the per-wedge allowance."""

        return est_bytes <= self.per_wedge_bytes
