"""Stable codec identity for mixed-codec archives.

A mixed-codec payload is only decodable if producer and consumer agree on
what each per-wedge codec id *means*, forever: the id is written into
``io.codes`` archives and crosses the serving wire, so the table below is
append-only — ids are never reused or renumbered.

Id ``0`` is the BCAE fast path (fp16 codes, fixed-size records); every
other id is a classical codec from :mod:`repro.baselines` operating on the
**log-ADC** wedge (``log2(adc + 1)``, unpadded), so classical and neural
reconstructions land in the same domain.  Each entry also records the
codec's documented reconstruction guarantee (a hard absolute error bound
on the log scale, or ``None`` where the family gives none) — the property
tests assert classical round trips against exactly this number.

:func:`validate_codec_ids` is the loud-failure half of the contract: an
archive carrying an id this build does not know is rejected at *load*
time with a clear error instead of being silently mis-decoded.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

__all__ = [
    "BCAE_CODEC_ID",
    "SZLIKE_CODEC_ID",
    "SPARSE_CODEC_ID",
    "CodecEntry",
    "classical_codec",
    "codec_entry",
    "codec_error_bound",
    "codec_name",
    "known_codec_ids",
    "validate_codec_ids",
]

#: The neural fast path: fp16 codes, fixed-size records, byte-identical
#: across batch compositions.  The id every pre-rate archive implicitly
#: carried.
BCAE_CODEC_ID = 0

#: SZ-family dense predictor codec (hard ``|x - x̂| <= eb`` bound).
SZLIKE_CODEC_ID = 1

#: The default sparse-wedge route: coordinate-list coding whose payload
#: scales with occupancy, not wedge volume (same hard error bound).  The
#: dense baselines all carry a per-voxel floor that exceeds the BCAE
#: record at full wedge size, so they never win on sparsity alone.
SPARSE_CODEC_ID = 5


@dataclasses.dataclass(frozen=True)
class CodecEntry:
    """One row of the append-only codec table."""

    codec_id: int
    name: str
    #: Builds a fresh codec instance (classical ids only; ``None`` for the
    #: BCAE id, whose "codec" is the serving compressor itself).
    factory: Callable | None
    #: Documented absolute error bound on the log-ADC scale (``None`` =
    #: the family documents no hard bound).
    error_bound: float | None


def _table() -> dict[int, CodecEntry]:
    # Imported lazily so `import repro.rate` does not drag the whole
    # baselines package in for consumers that only need the ids.
    from ..baselines import (
        DecimationCodec,
        MGARDLikeCodec,
        SparseIndexCodec,
        SZLikeCodec,
        ZFPLikeCodec,
    )

    eb = 0.25  # the bench's log-scale working point (paper MAE ~0.11-0.2)
    return {
        BCAE_CODEC_ID: CodecEntry(BCAE_CODEC_ID, "bcae", None, None),
        SZLIKE_CODEC_ID: CodecEntry(
            SZLIKE_CODEC_ID, "sz_like", lambda: SZLikeCodec(error_bound=eb), eb
        ),
        2: CodecEntry(2, "zfp_like", lambda: ZFPLikeCodec(rate_bits=2), None),
        3: CodecEntry(
            3, "mgard_like", lambda: MGARDLikeCodec(error_bound=eb), eb
        ),
        4: CodecEntry(
            4, "decimate", lambda: DecimationCodec(factors=(1, 2, 2)), None
        ),
        SPARSE_CODEC_ID: CodecEntry(
            SPARSE_CODEC_ID,
            "sparse",
            lambda: SparseIndexCodec(error_bound=eb),
            eb,
        ),
    }


def known_codec_ids() -> tuple[int, ...]:
    """Every codec id this build can decode, ascending."""

    return tuple(sorted(_table()))


def codec_entry(codec_id: int) -> CodecEntry:
    """The table row for ``codec_id`` (raises on unknown ids)."""

    table = _table()
    if codec_id not in table:
        raise ValueError(
            f"unknown codec id {codec_id}; this build decodes "
            f"{known_codec_ids()} — the archive needs a newer repro.rate"
        )
    return table[int(codec_id)]


def codec_name(codec_id: int) -> str:
    """Stable short name for a codec id."""

    return codec_entry(codec_id).name


def codec_error_bound(codec_id: int) -> float | None:
    """The codec's documented log-scale error bound (``None`` = no bound)."""

    return codec_entry(codec_id).error_bound


def classical_codec(codec_id: int):
    """A fresh classical codec instance for ``codec_id``.

    Raises for the BCAE id — its records are decoded by the serving
    compressor, not a baselines codec.
    """

    entry = codec_entry(codec_id)
    if entry.factory is None:
        raise ValueError(
            f"codec id {codec_id} ({entry.name}) is the neural fast path, "
            "not a classical codec — decode its records with the compressor"
        )
    return entry.factory()


def validate_codec_ids(codec_ids, context: str = "payload") -> None:
    """Reject unknown ids loudly (archive/wire poisoning guard)."""

    known = set(_table())
    bad = sorted({int(c) for c in codec_ids} - known)
    if bad:
        raise ValueError(
            f"{context} uses unknown codec id(s) {bad}; this build decodes "
            f"{tuple(sorted(known))} — refusing to guess at the record format"
        )
