"""Per-wedge record plumbing: offsets, slicing and the gateway wire frame.

A mixed-codec payload is a concatenation of variable-size per-wedge
records described by ``CompressedWedges.codec_ids`` / ``record_sizes``.
This module owns the byte arithmetic over that layout (offsets, zero-copy
record views) and the wire format the serving gateway uses to hand a
routed wedge back to its producer:

Record frame (one per wedge, carried inside an ordinary uint8 wedge
frame so the existing length-prefixed socket protocol is reused as-is)::

    [4s magic "RRC1"][u16 codec_id]
    [f64 occupancy][f64 activity][u64 est_bytes][u64 actual_bytes]
    [u64 record_nbytes][record bytes…]

The decision fields ride next to the payload so a gateway client can
rebuild not just the archive but the full :class:`RateDecision` ledger —
the serving parity tests assert the rebuilt ledger equals the inline one.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

import numpy as np

from ..core.compressor import CompressedWedges
from .policy import RateDecision
from .registry import validate_codec_ids

__all__ = [
    "RECORD_FRAME_MAGIC",
    "decode_record_frame",
    "encode_record_frames",
    "is_record_frame",
    "record_offsets",
    "record_views",
    "records_to_compressed",
]

RECORD_FRAME_MAGIC = b"RRC1"

_HEADER = struct.Struct("<4sHddQQQ")


def record_offsets(record_sizes: Sequence[int]) -> list[int]:
    """Byte offset of each record plus the total (len = n_records + 1)."""

    offsets = [0]
    for size in record_sizes:
        offsets.append(offsets[-1] + int(size))
    return offsets


def record_views(compressed: CompressedWedges) -> list[memoryview]:
    """Zero-copy per-wedge record slices of a mixed-codec payload."""

    if compressed.record_sizes is None:
        raise ValueError(
            "payload carries no per-wedge codec records — use codes_view()"
        )
    view = memoryview(compressed.payload)
    offsets = record_offsets(compressed.record_sizes)
    return [view[offsets[i]:offsets[i + 1]]
            for i in range(compressed.n_wedges)]


# ----------------------------------------------------------------------
# Gateway wire format
# ----------------------------------------------------------------------


def encode_record_frames(compressed: CompressedWedges) -> Iterator[np.ndarray]:
    """One uint8 record frame per wedge of a mixed-codec payload."""

    decisions = compressed.decisions or ()
    for i, record in enumerate(record_views(compressed)):
        d = decisions[i] if i < len(decisions) else None
        codec_id = int(compressed.codec_ids[i])
        header = _HEADER.pack(
            RECORD_FRAME_MAGIC,
            codec_id,
            float(d.occupancy) if d else 0.0,
            float(d.activity) if d else 0.0,
            int(d.est_bytes) if d else len(record),
            int(d.actual_bytes) if d else len(record),
            len(record),
        )
        yield np.frombuffer(header + bytes(record), dtype=np.uint8)


def is_record_frame(frame: np.ndarray) -> bool:
    """Whether a received wedge frame is a codec record frame."""

    frame = np.asarray(frame)
    return (frame.dtype == np.uint8 and frame.ndim == 1
            and frame.nbytes >= _HEADER.size
            and bytes(frame[:4].tobytes()) == RECORD_FRAME_MAGIC)


def decode_record_frame(frame: np.ndarray) -> tuple[int, RateDecision, bytes]:
    """Invert :func:`encode_record_frames` for one received frame."""

    raw = np.asarray(frame, dtype=np.uint8).tobytes()
    if len(raw) < _HEADER.size or raw[:4] != RECORD_FRAME_MAGIC:
        raise ValueError("not a codec record frame (bad magic/size)")
    magic, codec_id, occ, act, est, actual, nbytes = _HEADER.unpack_from(raw)
    record = raw[_HEADER.size:_HEADER.size + nbytes]
    if len(record) != nbytes:
        raise ValueError(
            f"truncated record frame: header promises {nbytes} bytes, "
            f"frame carries {len(record)}"
        )
    validate_codec_ids([codec_id], context="record frame")
    decision = RateDecision.from_row((codec_id, occ, act, est, actual))
    return int(codec_id), decision, record


def records_to_compressed(
    frames: Sequence[np.ndarray],
    code_shape: tuple[int, ...],
    original_horizontal: int,
    half: bool | None,
    code_dtype: str = "<f2",
) -> CompressedWedges:
    """Rebuild a mixed-codec batch from received record frames.

    The stream-side metadata (code shape, horizontal size, precision) is
    not on the wire — producer and consumer already agree on the model —
    so the caller supplies it, exactly as the archive header would.
    """

    codec_ids: list[int] = []
    record_sizes: list[int] = []
    decisions: list[RateDecision] = []
    chunks: list[bytes] = []
    for frame in frames:
        codec_id, decision, record = decode_record_frame(frame)
        codec_ids.append(codec_id)
        record_sizes.append(len(record))
        decisions.append(decision)
        chunks.append(record)
    return CompressedWedges(
        payload=b"".join(chunks),
        code_shape=tuple(code_shape),
        n_wedges=len(chunks),
        original_horizontal=int(original_horizontal),
        half=half,
        code_dtype=code_dtype,
        codec_ids=tuple(codec_ids),
        record_sizes=tuple(record_sizes),
        decisions=tuple(decisions),
    )
