"""The adaptive codec-selection tier: a drop-in compressor wrapper.

:class:`AdaptiveCompressor` presents the same serving surface as
:class:`~repro.core.BCAECompressor` (``compress`` / ``compress_into`` /
``decompress`` / ``decompress_into`` / ``code_shape_for`` /
``compression_ratio``) so the whole serving stack — worker pools, the shm
transport, the gateway — hosts it unchanged.  Per batch it:

1. computes each wedge's occupancy/activity features and asks the
   :class:`~repro.rate.policy.OccupancyPolicy` for a codec (pure per-wedge
   decision — batch-invariant by construction);
2. compresses the BCAE-routed wedges as **one sub-batch** through the
   wrapped compressor's fast path (payload bytes are batch-composition
   independent, so each routed wedge's record is byte-identical to the
   all-BCAE path's — the property the round-trip tests pin);
3. compresses each classical-routed wedge with its registry codec over
   the unpadded **log-ADC** wedge (same domain the BCAE reconstructs
   into, same domain its error bound is documented on);
4. concatenates the records in stream order and returns a
   :class:`~repro.core.CompressedWedges` carrying the per-wedge
   ``codec_ids`` / ``record_sizes`` / :class:`RateDecision` ledger.

Decompression inverts the routing: BCAE records regroup into one
sub-batch for the compiled decode path, classical records decode
individually, and reconstructions scatter back to stream order.
"""

from __future__ import annotations

import numpy as np

from ..core.compressor import BCAECompressor, CompressedWedges
from ..tpc.transforms import log_transform
from .policy import OccupancyPolicy, RateDecision
from .records import record_views
from .registry import (
    BCAE_CODEC_ID,
    classical_codec,
    codec_name,
    validate_codec_ids,
)

__all__ = ["AdaptiveCompressor", "aggregate_ratio"]


class AdaptiveCompressor:
    """Route each wedge to the BCAE fast path or a classical codec.

    Parameters
    ----------
    inner:
        The :class:`BCAECompressor` serving the dense route (and the
        decode path for BCAE records).
    policy:
        The selection policy.  ``None`` builds a decode-only tier: it can
        decompress any mixed archive (the registry, not the policy, maps
        ids to codecs) but refuses to compress.
    """

    #: Marker the serving layer uses to pick the variable-size shm path.
    is_adaptive = True

    def __init__(self, inner: BCAECompressor,
                 policy: OccupancyPolicy | None = None) -> None:
        self.inner = inner
        self.policy = policy
        self._codecs: dict[int, object] = {}

    # -- delegated surface ---------------------------------------------
    @property
    def model(self):
        return self.inner.model

    @property
    def half(self) -> bool:
        return self.inner.half

    @property
    def precision(self) -> str:
        return self.inner.precision

    @property
    def panel_threads(self):
        return self.inner.panel_threads

    def code_shape_for(self, wedge_spatial) -> tuple[int, ...]:
        return self.inner.code_shape_for(wedge_spatial)

    def compression_ratio(self, wedge_spatial) -> float:
        return self.inner.compression_ratio(wedge_spatial)

    # ------------------------------------------------------------------
    def _codec(self, codec_id: int):
        codec = self._codecs.get(codec_id)
        if codec is None:
            codec = classical_codec(codec_id)
            self._codecs[codec_id] = codec
        return codec

    # ------------------------------------------------------------------
    def compress(self, wedges: np.ndarray) -> CompressedWedges:
        """Adaptive compression of raw ADC wedges ``(B, R, A, H)``."""

        return self.compress_into(wedges)

    def compress_into(self, wedges: np.ndarray,
                      out: bytearray | None = None) -> CompressedWedges:
        """Route, compress and assemble one mixed-codec batch.

        The returned payload is always owned bytes (records are
        variable-size, so there is no pre-sizable ring-buffer contract to
        honour); ``out``, when given, additionally receives a copy of the
        payload prefix for callers that insist on their own buffer.
        """

        if self.policy is None:
            raise ValueError(
                "this AdaptiveCompressor was built decode-only (no policy) "
                "— construct it with an OccupancyPolicy to compress"
            )
        wedges = np.asarray(wedges)
        if wedges.ndim == 3:
            wedges = wedges[None]
        n = wedges.shape[0]
        horizontal = int(wedges.shape[-1])
        code_shape = self.inner.code_shape_for(wedges.shape[1:])
        bcae_record = int(np.prod(code_shape)) * 2

        codec_ids: list[int] = [BCAE_CODEC_ID] * n
        features: list[tuple[float, float, int]] = [(0.0, 0.0, 0)] * n
        for i in range(n):
            codec_id, occ, act, est = self.policy.select(
                wedges[i], bcae_record
            )
            codec_ids[i] = codec_id
            features[i] = (occ, act, est)
        bcae_idx = [i for i in range(n) if codec_ids[i] == BCAE_CODEC_ID]

        records: list[bytes] = [b""] * n
        if bcae_idx:
            sub = self.inner.compress_into(
                wedges[np.asarray(bcae_idx)]  # lint: allow-alloc
            )
            payload = bytes(sub.payload)
            for j, i in enumerate(bcae_idx):
                records[i] = payload[j * bcae_record:(j + 1) * bcae_record]
        for i in range(n):
            if codec_ids[i] != BCAE_CODEC_ID:
                logged = log_transform(wedges[i])  # lint: allow-alloc
                records[i] = self._codec(codec_ids[i]).compress(logged)

        decisions = tuple(
            RateDecision(
                occupancy=features[i][0],
                activity=features[i][1],
                codec_id=codec_ids[i],
                codec=codec_name(codec_ids[i]),
                est_bytes=features[i][2],
                actual_bytes=len(records[i]),
            )
            for i in range(n)
        )
        blob = b"".join(records)
        if out is not None:
            if len(out) < len(blob):
                raise ValueError(
                    f"out buffer holds {len(out)} bytes, payload needs {len(blob)}"
                )
            out[:len(blob)] = blob
        return CompressedWedges(
            payload=blob,
            code_shape=tuple(code_shape),
            n_wedges=n,
            original_horizontal=horizontal,
            half=self.inner.half,
            codec_ids=tuple(codec_ids),
            record_sizes=tuple(len(r) for r in records),
            decisions=decisions,
        )

    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedWedges) -> np.ndarray:
        """Decode a mixed (or plain BCAE) batch to log-ADC reconstructions."""

        if compressed.codec_ids is None:
            return self.inner.decompress(compressed)
        validate_codec_ids(compressed.codec_ids, context="compressed batch")
        n = compressed.n_wedges
        if n == 0:
            # An empty batch has nothing to route; the inner path already
            # knows how to shape a zero-wedge reconstruction.
            import dataclasses

            return self.inner.decompress(dataclasses.replace(
                compressed, codec_ids=None, record_sizes=None, decisions=None
            ))
        views = record_views(compressed)
        recons: list[np.ndarray | None] = [None] * n
        bcae_idx = [i for i in range(n)
                    if compressed.codec_ids[i] == BCAE_CODEC_ID]
        if bcae_idx:
            sub = CompressedWedges(
                payload=b"".join(bytes(views[i]) for i in bcae_idx),
                code_shape=compressed.code_shape,
                n_wedges=len(bcae_idx),
                original_horizontal=compressed.original_horizontal,
                half=compressed.half,
                code_dtype=compressed.code_dtype,
            )
            decoded = self.inner.decompress_into(sub)
            for j, i in enumerate(bcae_idx):
                recons[i] = np.array(decoded[j])  # lint: allow-alloc
        for i in range(n):
            if recons[i] is None:
                recons[i] = self._codec(
                    int(compressed.codec_ids[i])
                ).decompress(bytes(views[i]))
        return np.stack(recons).astype(np.float32, copy=False)

    def decompress_into(self, compressed: CompressedWedges,
                        out: np.ndarray | None = None) -> np.ndarray:
        """``decompress`` with an optional destination (service surface)."""

        if compressed.codec_ids is None:
            return self.inner.decompress_into(compressed, out=out)
        recon = self.decompress(compressed)
        if out is None:
            return recon
        np.copyto(out, recon)
        return out

    def decompress_adc(self, compressed: CompressedWedges) -> np.ndarray:
        """Back to integer ADC counts (mixed-aware)."""

        from ..tpc.transforms import inverse_log_transform

        return inverse_log_transform(self.decompress(compressed))


def aggregate_ratio(batches, wedge_spatial) -> float:
    """Paper-convention aggregate compression ratio of served batches.

    Input and output are both counted in bytes with the paper's fp16
    convention on the input side (§3.1: ratio treats input voxels as
    16-bit), so an all-BCAE stream reproduces ``compression_ratio`` and a
    mixed stream credits the classical records' actual sizes.
    """

    per_wedge_in = 2 * int(np.prod(wedge_spatial))
    n_wedges = sum(b.n_wedges for b in batches)
    total_out = sum(
        (sum(b.record_sizes) if b.record_sizes is not None
         else b.n_wedges * int(np.prod(b.code_shape))
         * np.dtype(b.code_dtype).itemsize)
        for b in batches
    )
    if total_out == 0:
        return float("inf") if n_wedges else 0.0
    return n_wedges * per_wedge_in / total_out
