"""Streaming-DAQ simulation (paper §1 motivation).

The paper's context: sPHENIX digitizes 42M-voxel frames at **77 kHz** and
wants to *store every collision* (streaming readout, no level-1 trigger),
which is only possible if real-time compression keeps up.  Each of the 24
wedges of each frame is compressed independently, so the system-level
question is a queueing one:

    Given a farm of compressors with measured/modeled per-wedge throughput,
    a frame rate, and finite front-end buffers — what utilization, latency
    and drop rate result?

:class:`StreamingCompressionSim` answers it with a discrete-event
simulation: Poisson (or periodic) frame arrivals fan out into wedge jobs,
``n_servers`` compressors with deterministic service rates drain a bounded
FIFO, and overflowing jobs are dropped (the triggered-DAQ fallback the
paper wants to avoid).  The bench couples it to the roofline throughput of
each BCAE variant to reproduce the paper's sizing argument: how many GPUs
does each model need to sustain sPHENIX rates?
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

__all__ = ["DAQConfig", "DAQStats", "StreamingCompressionSim", "gpus_required"]

#: sPHENIX TPC frame rate (paper §1/§2.1).
SPHENIX_FRAME_RATE_HZ = 77_000.0

#: Wedges per frame for one layer group (paper §2.1).
WEDGES_PER_FRAME = 24


@dataclasses.dataclass
class DAQConfig:
    """Parameters of one streaming-compression scenario.

    Attributes
    ----------
    frame_rate_hz:
        Readout frame rate (sPHENIX: 77 kHz — but note each *frame* here can
        model a time-slice of the continuous stream).
    wedges_per_frame:
        Independent compression jobs per frame (paper: 24 per layer group).
    server_rate_wps:
        Per-server compression throughput [wedges/s] — plug in Table-1 /
        roofline numbers.
    n_servers:
        Parallel compressors (GPUs).
    buffer_wedges:
        Front-end buffer capacity in wedges; arrivals beyond it are dropped.
    periodic:
        If True frames arrive on a fixed clock; otherwise Poisson.
    """

    frame_rate_hz: float = SPHENIX_FRAME_RATE_HZ
    wedges_per_frame: int = WEDGES_PER_FRAME
    server_rate_wps: float = 6900.0
    n_servers: int = 1
    buffer_wedges: int = 4096
    periodic: bool = False


@dataclasses.dataclass
class DAQStats:
    """Outcome of a simulation run."""

    offered_wedges: int
    completed_wedges: int
    dropped_wedges: int
    sim_seconds: float
    mean_latency: float
    p99_latency: float
    mean_queue: float
    utilization: float

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered wedges lost to buffer overflow."""

        return self.dropped_wedges / max(self.offered_wedges, 1)

    @property
    def offered_load(self) -> float:
        """ρ = arrival rate / total service rate (>1 ⇒ overload)."""

        return self.offered_wedges / max(self.sim_seconds, 1e-12) / (
            self.utilization_denominator()
        )

    def utilization_denominator(self) -> float:
        """Aggregate service rate [wedges/s] backing :attr:`offered_load`."""

        return self._total_rate

    _total_rate: float = 0.0

    def row(self) -> str:
        """One-line summary for sizing tables."""

        return (
            f"util={self.utilization:6.3f} drop={self.drop_fraction:8.5f} "
            f"latency(mean/p99)={self.mean_latency * 1e6:9.1f}/{self.p99_latency * 1e6:9.1f} µs "
            f"queue(mean)={self.mean_queue:8.1f}"
        )


class StreamingCompressionSim:
    """Discrete-event M/D/c (or D/D/c) queue of wedge-compression jobs."""

    def __init__(self, config: DAQConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)

    def frame_times(self, n_frames: int) -> np.ndarray:
        """Frame arrival timestamps [s] — Poisson or periodic per config.

        Each call starts a fresh arrival clock at t = 0 (Poisson mode
        consumes fresh RNG draws, so successive calls give independent —
        not continued — realizations; periodic mode is an exact restarting
        clock).  Concatenating two calls therefore does **not** produce a
        monotone stream.
        """

        frame_gap = 1.0 / self.config.frame_rate_hz
        if self.config.periodic:
            return np.arange(n_frames) * frame_gap
        return np.cumsum(self.rng.exponential(frame_gap, n_frames))

    def wedge_stream(self, wedges: np.ndarray, n_frames: int | None = None):
        """The simulated arrival process as a ``(arrival_s, wedge)`` iterator.

        This is the bridge from the queueing model to an executable
        compression loop (:mod:`repro.serve`): each simulated frame fans
        out into ``wedges_per_frame`` jobs carrying real wedge data, cycled
        from ``wedges`` ``(N, R, A, H)``.  With ``n_frames`` omitted, the
        stream stops once every wedge has been emitted exactly once.

        Yields
        ------
        ``(arrival_s, wedge)`` tuples in arrival order — feed through
        :func:`repro.serve.replay_stream` to drive a service.
        """

        wedges = np.asarray(wedges)
        if wedges.ndim != 4:
            raise ValueError(f"expected stacked wedges (N, R, A, H), got {wedges.shape}")
        wpf = self.config.wedges_per_frame
        limit = None
        if n_frames is None:
            n_frames = -(-wedges.shape[0] // wpf)
            limit = wedges.shape[0]
        emitted = 0
        for t in self.frame_times(n_frames):
            for _slot in range(wpf):
                if limit is not None and emitted >= limit:
                    return
                yield float(t), wedges[emitted % wedges.shape[0]]
                emitted += 1

    def run(self, n_frames: int = 2000) -> DAQStats:
        """Simulate ``n_frames`` frame arrivals; returns aggregate stats."""

        cfg = self.config
        service = 1.0 / cfg.server_rate_wps
        arrivals = self.frame_times(n_frames)

        # Server availability times (min-heap) model the c servers.
        servers = [0.0] * cfg.n_servers
        heapq.heapify(servers)

        queue: list[float] = []  # arrival times of waiting wedges
        latencies: list[float] = []
        dropped = 0
        offered = 0
        queue_area = 0.0
        busy_time = 0.0
        last_t = 0.0

        for t in arrivals:
            # Drain servers that free up before this arrival.
            while queue and servers[0] <= t:
                start = heapq.heappop(servers)
                job_arrival = queue.pop(0)
                begin = max(start, job_arrival)
                finish = begin + service
                heapq.heappush(servers, finish)
                latencies.append(finish - job_arrival)
                busy_time += service
            queue_area += len(queue) * (t - last_t)
            last_t = t

            for _ in range(cfg.wedges_per_frame):
                offered += 1
                if len(queue) >= cfg.buffer_wedges:
                    dropped += 1
                    continue
                queue.append(t)

        # Drain everything left.
        while queue:
            start = heapq.heappop(servers)
            job_arrival = queue.pop(0)
            begin = max(start, job_arrival)
            finish = begin + service
            heapq.heappush(servers, finish)
            latencies.append(finish - job_arrival)
            busy_time += service

        end_time = max(max(servers), float(arrivals[-1]))
        lat = np.array(latencies) if latencies else np.zeros(1)
        stats = DAQStats(
            offered_wedges=offered,
            completed_wedges=len(latencies),
            dropped_wedges=dropped,
            sim_seconds=end_time,
            mean_latency=float(lat.mean()),
            p99_latency=float(np.quantile(lat, 0.99)),
            mean_queue=queue_area / max(float(arrivals[-1]), 1e-12),
            utilization=busy_time / (end_time * cfg.n_servers),
        )
        stats._total_rate = cfg.n_servers * cfg.server_rate_wps
        return stats


def gpus_required(
    server_rate_wps: float,
    frame_rate_hz: float = SPHENIX_FRAME_RATE_HZ,
    wedges_per_frame: int = WEDGES_PER_FRAME,
    headroom: float = 1.2,
) -> int:
    """Minimum compressor count to sustain the stream with ``headroom``.

    The paper's sizing arithmetic: the outer layer group alone offers
    77 kHz × 24 = 1.848 M wedges/s; at BCAE-2D's 6.9 k wedges/s per GPU
    that's ~268 GPUs before headroom — the number that motivates every
    throughput optimization in the paper.
    """

    demand = frame_rate_hz * wedges_per_frame * headroom
    return int(np.ceil(demand / server_rate_wps))
