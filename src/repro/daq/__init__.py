"""``repro.daq`` — streaming-readout queueing simulation (paper §1 context)."""

from .simulation import (
    SPHENIX_FRAME_RATE_HZ,
    WEDGES_PER_FRAME,
    DAQConfig,
    DAQStats,
    StreamingCompressionSim,
    gpus_required,
)

__all__ = [
    "DAQConfig",
    "DAQStats",
    "StreamingCompressionSim",
    "gpus_required",
    "SPHENIX_FRAME_RATE_HZ",
    "WEDGES_PER_FRAME",
]
