"""Terminal visualization helpers (Figures 2/3/5 as ASCII).

A CPU-only, offline reproduction cannot assume matplotlib; these renderers
put the paper's visual artifacts — wedge track maps, difference maps,
histograms and throughput curves — on stdout.  They are used by the
examples and available to downstream users for quick looks at wedges.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "render_heatmap",
    "render_wedge_layer",
    "render_difference",
    "render_histogram",
    "render_curves",
]

_RAMP = " .:-=+*#%@"


def _bin_2d(image: np.ndarray, width: int, height: int) -> np.ndarray:
    """Downsample a 2D array to ≤ (height, width) by block averaging."""

    rows = np.array_split(np.arange(image.shape[0]), min(height, image.shape[0]))
    cols = np.array_split(np.arange(image.shape[1]), min(width, image.shape[1]))
    out = np.empty((len(rows), len(cols)), dtype=np.float64)
    for i, r in enumerate(rows):
        strip = image[r].mean(axis=0)
        for j, c in enumerate(cols):
            out[i, j] = strip[c].mean()
    return out


def render_heatmap(
    image: np.ndarray,
    width: int = 72,
    height: int = 24,
    vmin: float | None = None,
    vmax: float | None = None,
    ramp: str = _RAMP,
) -> str:
    """Render a 2D array as ASCII intensity art."""

    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2D array, got shape {image.shape}")
    binned = _bin_2d(image, width, height)
    lo = float(binned.min()) if vmin is None else vmin
    hi = float(binned.max()) if vmax is None else vmax
    span = max(hi - lo, 1e-12)
    idx = np.clip(((binned - lo) / span) * (len(ramp) - 1), 0, len(ramp) - 1)
    idx = idx.astype(np.int64)
    return "\n".join("".join(ramp[v] for v in row) for row in idx)


def render_wedge_layer(wedge: np.ndarray, layer: int = 0, **kwargs) -> str:
    """One radial layer of a ``(R, A, H)`` wedge (Figure 2's track stubs)."""

    wedge = np.asarray(wedge)
    if wedge.ndim != 3:
        raise ValueError(f"expected (radial, azim, horiz), got {wedge.shape}")
    return render_heatmap(wedge[layer], **kwargs)


def render_difference(
    truth: np.ndarray,
    reconstruction: np.ndarray,
    layer: int = 0,
    **kwargs,
) -> str:
    """Figure 5-style |difference| map of one wedge layer."""

    truth = np.asarray(truth, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if truth.shape != reconstruction.shape:
        raise ValueError("truth and reconstruction must share a shape")
    return render_heatmap(np.abs(truth - reconstruction)[layer], **kwargs)


def render_histogram(
    counts: np.ndarray,
    edges: np.ndarray,
    width: int = 50,
    log_scale: bool = True,
) -> str:
    """Figure 3-style histogram with per-bin bars (log-height by default)."""

    counts = np.asarray(counts, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    if counts.size + 1 != edges.size:
        raise ValueError("edges must have one more entry than counts")
    heights = np.log10(counts + 1.0) if log_scale else counts
    peak = max(float(heights.max()), 1e-12)
    lines = []
    for lo, hi, c, h in zip(edges[:-1], edges[1:], counts, heights):
        bar = "#" * max(0, int(width * h / peak))
        lines.append(f"[{lo:6.2f},{hi:6.2f})  {int(c):10,d}  {bar}")
    return "\n".join(lines)


def render_curves(
    series: dict[str, dict[int, float]],
    width: int = 60,
    height: int = 16,
) -> str:
    """Figure 6-style throughput-vs-batch curves as an ASCII chart.

    ``series`` maps label → {x: y}; all series share the plot scales.
    Each series is drawn with a distinct marker; markers overwrite
    earlier series at collisions.
    """

    if not series:
        raise ValueError("no series to plot")
    xs = sorted({x for s in series.values() for x in s})
    ymax = max(max(s.values()) for s in series.values())
    ymin = 0.0
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*sd"
    for (label, s), marker in zip(series.items(), markers):
        for x, y in s.items():
            col = int((xs.index(x) / max(len(xs) - 1, 1)) * (width - 1))
            row = int((1.0 - (y - ymin) / max(ymax - ymin, 1e-12)) * (height - 1))
            canvas[row][col] = marker
    lines = ["".join(row) for row in canvas]
    legend = "  ".join(
        f"{marker}={label}" for (label, _s), marker in zip(series.items(), markers)
    )
    header = f"y: 0..{ymax:.0f}   x: batch {xs[0]}..{xs[-1]}"
    return "\n".join([header] + lines + [legend])
