"""``repro-tpc`` command line.

Subcommands mirror the reproduction workflow::

    repro-tpc generate  --events 4 --scale small --out data/wedges.npz
    repro-tpc train     --model bcae_2d --data data/wedges.npz --epochs 5
    repro-tpc evaluate  --model bcae_2d --checkpoint ckpt.npz --data data/wedges.npz
    repro-tpc throughput --model bcae_2d            # roofline + CPU timing
    repro-tpc compare   --data data/wedges.npz      # learning-free baselines
    repro-tpc serve     --wedges 64 --batch 8 --archive codes.npz
    repro-tpc compress  --wedges 64 --rate-policy occupancy --archive codes.npz
    repro-tpc decompress --archive codes.npz --out recon.npz --verify

Every command runs offline on CPU; ``--scale paper`` switches to the full
(16, 192, 249) wedge geometry.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_SCALES = {
    "paper": "PAPER_GEOMETRY",
    "small": "SMALL_GEOMETRY",
    "tiny": "TINY_GEOMETRY",
}


def _geometry(scale: str):
    from . import tpc

    return getattr(tpc, _SCALES[scale])


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-tpc`` argument parser (all subcommands)."""

    parser = argparse.ArgumentParser(
        prog="repro-tpc",
        description="BCAE TPC-compression reproduction (SC-W 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic wedge dataset")
    g.add_argument("--events", type=int, default=4)
    g.add_argument("--scale", choices=_SCALES, default="small")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", default="data/wedges.npz")

    t = sub.add_parser("train", help="train a BCAE variant")
    t.add_argument("--model", default="bcae_2d")
    t.add_argument("--data", default=None, help="npz from `generate` (default: fresh tiny dataset)")
    t.add_argument("--epochs", type=int, default=5)
    t.add_argument("--batch-size", type=int, default=4)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--checkpoint", default="ckpt.npz")
    t.add_argument("--m", type=int, default=4, help="BCAE-2D encoder blocks")
    t.add_argument("--n", type=int, default=8, help="BCAE-2D decoder blocks")
    t.add_argument("--d", type=int, default=None,
                   help="down/upsampling steps (default: min(m, n, 3))")

    e = sub.add_parser("evaluate", help="evaluate a checkpoint")
    e.add_argument("--model", default="bcae_2d")
    e.add_argument("--checkpoint", required=True)
    e.add_argument("--data", required=True)
    e.add_argument("--half", action="store_true")
    e.add_argument("--m", type=int, default=4)
    e.add_argument("--n", type=int, default=8)
    e.add_argument("--d", type=int, default=None)

    p = sub.add_parser("throughput", help="roofline model + CPU timing")
    p.add_argument("--model", default="bcae_2d")
    p.add_argument("--batches", default="1,16,64")
    p.add_argument("--measure", action="store_true", help="also time this CPU implementation")

    c = sub.add_parser("compare", help="compare learning-free baselines")
    c.add_argument("--data", default=None)
    c.add_argument("--wedges", type=int, default=2)

    s = sub.add_parser("search", help="BCAE-2D(m, n, d) architecture search (§3.5 grid)")
    s.add_argument("--ms", default="3,4,5,6,7")
    s.add_argument("--ns", default="3,5,7,9,11")
    s.add_argument("--batch", type=int, default=64)

    q = sub.add_parser("daq", help="streaming-DAQ sizing (77 kHz x 24 wedges)")
    q.add_argument("--rate", type=float, default=6900.0,
                   help="per-GPU throughput [wedges/s] (Table 1 values)")
    q.add_argument("--headroom", type=float, default=1.2)
    q.add_argument("--frames", type=int, default=3000)

    v = sub.add_parser(
        "serve", help="run the micro-batching compression service",
        epilog="transport defaults per backend: --backend process moves "
               "payloads through the shared-memory slab ring "
               "(--transport shm; slabs are sized adaptively from the "
               "first work unit unless --shm-slab-mb pins them, and "
               "oversized units fall back to pickle per unit, counted as "
               "shm_fallbacks), while the inline/thread backends hand "
               "results off in memory and ignore --transport/"
               "--shm-slab-mb entirely.  --gateway-port/--shards runs the "
               "multi-producer sharded gateway front door instead of the "
               "single in-process stream.",
    )
    v.add_argument("--model", default="bcae_2d")
    v.add_argument("--scale", choices=_SCALES, default="tiny")
    v.add_argument("--wedges", type=int, default=64)
    v.add_argument("--batch", type=int, default=8, help="micro-batch size cap")
    v.add_argument("--budget-ms", type=float, default=0.0,
                   help="accumulation budget (0 = never wait); stream-time "
                        "for the sync service, wall-clock under --async")
    v.add_argument("--workers", type=int, default=0,
                   help="worker pool size (0 = inline, best on one core)")
    v.add_argument("--backend", choices=("thread", "process"), default="thread")
    v.add_argument("--transport", choices=("shm", "pickle"), default="shm",
                   help="process-backend payload hand-off (default: shared-"
                        "memory slab ring)")
    v.add_argument("--shm-slab-mb", type=float, default=None,
                   help="slab size [MiB] of the shm transport ring "
                        "(default: adaptive — the ring is sized from the "
                        "first work unit so real units fit)")
    v.add_argument("--shards", type=int, default=1,
                   help="number of ModelPoolService shards behind the "
                        "gateway (>1 implies gateway mode)")
    v.add_argument("--gateway-port", type=int, default=None,
                   help="run the multi-producer socket gateway on this "
                        "TCP port (0 = ephemeral) and feed it over "
                        "loopback from --producers concurrent clients")
    v.add_argument("--producers", type=int, default=4,
                   help="concurrent loopback producers in gateway mode")
    v.add_argument("--async", dest="use_async", action="store_true",
                   help="run the asyncio ingestion gateway (wall-clock "
                        "latency budget, paced arrival replay)")
    v.add_argument("--full", action="store_true", help="fp32 instead of fp16 inference")
    v.add_argument("--precision", choices=("bit", "ulp"), default="bit",
                   help="compilation tier: bit (default, payload bytes "
                        "proven identical to the module path) or the "
                        "opt-in ulp serving tier with recorded error "
                        "bounds")
    v.add_argument("--panel-threads", type=int, default=None,
                   help="intra-plan panel executor width (default: the "
                        "REPRO_PANEL_THREADS env knob; bytes identical at "
                        "any value)")
    v.add_argument("--unit-timeout-s", type=float, default=None,
                   help="per-unit completion deadline; a hung worker is "
                        "killed, the pool rebuilt, and the unit retried "
                        "(default: no deadline)")
    v.add_argument("--max-retries", type=int, default=0,
                   help="resubmissions per unit after a crash or timeout "
                        "before its error surfaces (default: fail fast)")
    v.add_argument("--health-port", type=int, default=None,
                   help="serve GET /health JSON on this localhost port for "
                        "the stream's lifetime (0 = ephemeral port)")
    v.add_argument("--baseline", action="store_true",
                   help="also time serial single-wedge compress + verify parity")
    v.add_argument("--rate-policy", choices=("occupancy",), default=None,
                   help="adaptive per-wedge codec selection: route sparse "
                        "wedges to the classical coordinate-list codec and "
                        "dense ones to the BCAE, recording a RateDecision "
                        "per wedge (default: fixed-rate BCAE only)")
    v.add_argument("--rate-budget-mbps", type=float, default=None,
                   help="stream bandwidth budget [Mbps] resolved to a "
                        "stateless per-wedge byte allowance (requires "
                        "--rate-policy)")
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--m", type=int, default=4)
    v.add_argument("--n", type=int, default=8)
    v.add_argument("--d", type=int, default=None)
    v.add_argument("--archive", default=None,
                   help="save the served payloads as one io.codes npz archive")

    o = sub.add_parser(
        "compress",
        help="one-shot compression of wedges to an io.codes archive",
        epilog="the batch-mode twin of `serve --archive`: no worker pools "
               "or gateways, just the compressor (optionally the adaptive "
               "rate tier) over a dataset or synthetic wedges.",
    )
    o.add_argument("--data", default=None,
                   help="npz from `generate` (default: synthetic wedges)")
    o.add_argument("--wedges", type=int, default=64,
                   help="synthetic wedge count when --data is not given")
    o.add_argument("--scale", choices=_SCALES, default="tiny")
    o.add_argument("--model", default="bcae_2d")
    o.add_argument("--batch", type=int, default=8, help="compression batch size")
    o.add_argument("--full", action="store_true",
                   help="fp32 instead of fp16 inference")
    o.add_argument("--rate-policy", choices=("occupancy",), default=None,
                   help="adaptive per-wedge codec selection (see "
                        "`serve --rate-policy`)")
    o.add_argument("--rate-budget-mbps", type=float, default=None,
                   help="stream bandwidth budget [Mbps] (requires "
                        "--rate-policy)")
    o.add_argument("--seed", type=int, default=0)
    o.add_argument("--m", type=int, default=4)
    o.add_argument("--n", type=int, default=8)
    o.add_argument("--d", type=int, default=None)
    o.add_argument("--archive", required=True,
                   help="destination io.codes npz archive")

    x = sub.add_parser(
        "decompress",
        help="decompress an io.codes archive (analysis side)",
        epilog="transport defaults per backend: --backend process moves "
               "payload batches and reconstructions through the shared-"
               "memory slab ring (--transport shm, sized adaptively from "
               "the first unit unless --shm-slab-mb pins it; oversized "
               "units fall back to pickle per unit, counted as "
               "shm_fallbacks), while the inline/thread backends hand "
               "results off in memory and ignore --transport/"
               "--shm-slab-mb entirely.",
    )
    x.add_argument("--archive", required=True, help="npz from `serve --archive`")
    x.add_argument("--out", default=None, help="write reconstructions to npz")
    x.add_argument("--model", default="bcae_2d")
    x.add_argument("--batch", type=int, default=8, help="decode micro-batch size")
    x.add_argument("--workers", type=int, default=0,
                   help="worker pool size (0 = inline)")
    x.add_argument("--backend", choices=("thread", "process"), default="thread")
    x.add_argument("--transport", choices=("shm", "pickle"), default="shm",
                   help="process-backend payload hand-off")
    x.add_argument("--shm-slab-mb", type=float, default=None,
                   help="slab size [MiB] of the shm transport ring "
                        "(default: adaptive — sized from the first unit)")
    x.add_argument("--full", action="store_true", help="fp32 instead of fp16 inference")
    x.add_argument("--precision", choices=("bit", "ulp"), default="bit",
                   help="compilation tier (see `serve --precision`)")
    x.add_argument("--panel-threads", type=int, default=None,
                   help="intra-plan panel executor width (default: the "
                        "REPRO_PANEL_THREADS env knob)")
    x.add_argument("--adc", action="store_true",
                   help="also invert the log transform back to integer ADC")
    x.add_argument("--verify", action="store_true",
                   help="check parity against the module-graph decompress")
    x.add_argument("--seed", type=int, default=0)
    x.add_argument("--m", type=int, default=4)
    x.add_argument("--n", type=int, default=8)
    x.add_argument("--d", type=int, default=None)

    z = sub.add_parser(
        "analyze",
        help="static analysis: plan verifier + hot-path/concurrency lints",
        epilog="runs the plan verifier over all four Table-1 model plans "
               "plus the hot-path allocation, lease-discipline, async-"
               "blocking and public-API lints; with --baseline only NEW "
               "findings (vs tools/analysis_baseline.json) fail.",
    )
    z.add_argument("--json", action="store_true",
                   help="machine-readable JSON report instead of text")
    z.add_argument("--passes", default="plan,hotpath,concurrency,api",
                   help="comma-separated pass subset to run")
    z.add_argument("--baseline", default=None,
                   help="baseline JSON path; gate only new findings")
    z.add_argument("--extra-source", action="append", default=[],
                   help="additional source file for the lint passes "
                        "(repeatable; used by the CI injected-finding "
                        "fixture)")
    z.add_argument("--verbose", action="store_true",
                   help="include info-severity diagnostics in text output")
    z.add_argument("--full", action="store_true",
                   help="verify the fp32 plans instead of fp16")
    z.add_argument("--stats", action="store_true",
                   help="print each verified plan's plan_stats() summary "
                        "(stage kinds, GEMM formulations, panel/thread "
                        "counts, fold decisions, ulp sites)")
    z.add_argument("--precision", choices=("bit", "ulp"), default="bit",
                   help="compile tier for the plan pass; 'ulp' exercises "
                        "the relaxed-numerics ledger rules (PV050-PV052)")

    return parser


def _load_or_generate(path: str | None, scale: str = "tiny", events: int = 2, seed: int = 0):
    from .tpc import WedgeDataset, generate_wedge_dataset

    if path:
        full = WedgeDataset.load(path)
        n = len(full)
        split = max(1, int(n * 0.8))
        return (
            WedgeDataset(full.wedges[:split], full.geometry),
            WedgeDataset(full.wedges[split:], full.geometry),
        )
    return generate_wedge_dataset(events, geometry=_geometry(scale), seed=seed)


def _model_kwargs(args) -> dict:
    """BCAE-2D structural arguments from CLI flags (d defaults to min(m,n,3))."""

    if args.model != "bcae_2d":
        return {}
    d = args.d if getattr(args, "d", None) is not None else min(args.m, args.n, 3)
    return {"m": args.m, "n": args.n, "d": d}


def _cmd_generate(args) -> int:
    """``generate``: write a synthetic wedge dataset to npz."""

    from .tpc import HijingLikeGenerator, WedgeDataset

    geometry = _geometry(args.scale)
    if args.scale == "paper":
        generator = HijingLikeGenerator()
    else:
        generator = HijingLikeGenerator.calibrated(geometry, seed=args.seed)
    seeds = np.random.SeedSequence(args.seed).spawn(args.events)
    wedges = np.concatenate(
        [generator.wedges(np.random.default_rng(s)) for s in seeds], axis=0
    )
    dataset = WedgeDataset(wedges, geometry)
    out = dataset.save(args.out)
    print(f"wrote {len(dataset)} wedges {dataset.wedges.shape} to {out}")
    print(f"occupancy: {dataset.occupancy():.4f} (paper: ~0.108)")
    return 0


def _cmd_train(args) -> int:
    """``train``: run the paper training loop and save a checkpoint."""

    from .core import build_model
    from .nn import save_checkpoint
    from .train import TrainConfig, Trainer

    train, test = _load_or_generate(args.data, seed=args.seed)
    kwargs = _model_kwargs(args)
    model = build_model(
        args.model, wedge_spatial=train.geometry.wedge_shape, seed=args.seed, **kwargs
    )
    cfg = TrainConfig(epochs=args.epochs, batch_size=args.batch_size, seed=args.seed)
    trainer = Trainer(model, cfg)
    trainer.fit(train, verbose=True)
    metrics = trainer.evaluate(test)
    print(f"test: {metrics}")
    save_checkpoint(model, trainer.optimizer, args.epochs, args.checkpoint,
                    extra={"model": args.model})
    print(f"checkpoint -> {args.checkpoint}")
    return 0


def _cmd_evaluate(args) -> int:
    """``evaluate``: Table-1 metrics of a checkpoint on a dataset."""

    from .core import build_model
    from .nn import load_checkpoint
    from .train import evaluate_model

    _train, test = _load_or_generate(args.data)
    kwargs = _model_kwargs(args)
    model = build_model(args.model, wedge_spatial=test.geometry.wedge_shape, **kwargs)
    meta = load_checkpoint(model, args.checkpoint)
    metrics = evaluate_model(model, test, half=args.half)
    mode = "half" if args.half else "full"
    print(f"checkpoint meta: {meta}")
    print(f"[{mode}] {metrics}")
    return 0


def _cmd_throughput(args) -> int:
    """``throughput``: roofline curves (and optional CPU timing)."""

    from .core import build_model
    from .perf import (
        estimate_throughput,
        measure_encoder_throughput,
        speedup_half,
        trace_encoder,
    )

    batches = [int(b) for b in args.batches.split(",")]
    model = build_model(args.model, wedge_spatial=(16, 192, 249), seed=0)
    trace = trace_encoder(model, (16, 192, 256), name=args.model)
    print(trace.summary())
    print(f"{'batch':>6s} {'half [w/s]':>12s} {'full [w/s]':>12s}")
    for b in batches:
        h = estimate_throughput(trace, b, half=True)
        f = estimate_throughput(trace, b, half=False)
        print(f"{b:6d} {h:12.0f} {f:12.0f}")
    print(f"modeled fp16 speedup @64: {speedup_half(trace, 64):.2f}x")
    if args.measure:
        r = measure_encoder_throughput(model, (16, 192, 256), batch_size=1, repeats=2)
        print(f"measured on this CPU: {r.wedges_per_second:.2f} wedges/s (batch 1)")
    return 0


def _cmd_compare(args) -> int:
    """``compare``: learning-free codec sweep on a wedge dataset."""

    from .baselines import MGARDLikeCodec, SZLikeCodec, ZFPLikeCodec, evaluate_codec
    from .tpc import log_transform

    _train, test = _load_or_generate(args.data)
    wedges = log_transform(test.wedges[: args.wedges])
    print(f"evaluating on {wedges.shape[0]} wedges {wedges.shape[1:]}, "
          f"occupancy {(wedges > 0).mean():.4f}")
    for codec in (
        SZLikeCodec(0.25),
        SZLikeCodec(1.0),
        ZFPLikeCodec(1),
        ZFPLikeCodec(2),
        MGARDLikeCodec(0.25),
        MGARDLikeCodec(1.0),
    ):
        print(evaluate_codec(codec, wedges).row())
    print("(BCAE reference: ratio 31.125 at MAE 0.112–0.152 after training — Table 1)")
    return 0


def _cmd_search(args) -> int:
    """``search``: structural BCAE-2D(m, n, d) architecture ranking."""

    from .core import enumerate_candidates, pareto_front, search, throughput_frontier

    ms = tuple(int(v) for v in args.ms.split(","))
    ns = tuple(int(v) for v in args.ns.split(","))
    cands = enumerate_candidates(ms=ms, ns=ns, ds=(3,))
    throughput_frontier(cands, batch=args.batch)
    ranked = search(cands)
    print(f"{len(cands)} candidates (d=3, ratio 31.125), ranked by modeled throughput:")
    for c in ranked[:10]:
        print("  " + c.row())
    print("pareto frontier (encoder size vs throughput):")
    for c in pareto_front(cands):
        print("  " + c.row())
    print("note: accuracy is the missing axis — pair with training (Figure 7)")
    return 0


def _cmd_daq(args) -> int:
    """``daq``: GPU-farm sizing for the sPHENIX stream."""

    from .daq import (
        SPHENIX_FRAME_RATE_HZ,
        WEDGES_PER_FRAME,
        DAQConfig,
        StreamingCompressionSim,
        gpus_required,
    )

    demand = SPHENIX_FRAME_RATE_HZ * WEDGES_PER_FRAME
    n = gpus_required(args.rate, headroom=args.headroom)
    print(f"offered load: {demand / 1e6:.3f} M wedges/s (77 kHz x 24)")
    print(f"per-GPU rate: {args.rate:.0f} wedges/s -> {n} GPUs "
          f"({args.headroom:.0%} headroom)")
    cfg = DAQConfig(
        frame_rate_hz=SPHENIX_FRAME_RATE_HZ / 1000.0,
        server_rate_wps=args.rate,
        n_servers=max(1, n // 1000 + 1),
    )
    stats = StreamingCompressionSim(cfg, seed=0).run(args.frames)
    print(f"1/1000-scale simulation: {stats.row()}")
    return 0


def _cmd_serve(args) -> int:
    """``serve``: micro-batched streaming compression on synthetic wedges."""

    import asyncio
    import time

    from .core import BCAECompressor, build_model
    from .serve import ServiceConfig, StreamingCompressionService, async_replay_stream
    from .tpc import generate_wedge_stream

    geometry = _geometry(args.scale)
    wedges = generate_wedge_stream(args.wedges, geometry=geometry, seed=args.seed)

    kwargs = _model_kwargs(args)
    model = build_model(args.model, wedge_spatial=geometry.wedge_shape,
                        seed=args.seed, **kwargs)
    # Inference mode: BatchNorm models (the original BCAE) must use their
    # running statistics, or payloads would depend on batch composition.
    model.eval()
    config = ServiceConfig(
        max_batch=args.batch,
        max_delay_s=args.budget_ms / 1e3,
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        shm_slab_mb=args.shm_slab_mb,
        half=not args.full,
        precision=args.precision,
        panel_threads=args.panel_threads,
        unit_timeout_s=args.unit_timeout_s,
        max_retries=args.max_retries,
        rate_policy=args.rate_policy,
        rate_budget_mbps=args.rate_budget_mbps,
    )
    if args.gateway_port is not None or args.shards > 1:
        return _run_gateway(args, model, config, wedges)
    service = StreamingCompressionService(model, config)
    health_server = None
    if args.health_port is not None:
        from .serve import start_health_server

        health_server = start_health_server(service, port=args.health_port)
        print(f"health endpoint: http://127.0.0.1:"
              f"{health_server.server_address[1]}/health")
    if config.workers == 0 or config.backend == "thread":
        # Warm the pooled parent-side compressors.  Pointless for the
        # process backend: its workers live only as long as one stream's
        # pool, so a warm-up run would just fork and discard one.
        service.run(wedges[: min(args.batch, len(wedges))])
    if args.use_async:
        # The asyncio gateway: arrivals replayed on the wall clock from the
        # DAQ process, batches closed by monotonic-deadline budget.
        from .daq import DAQConfig, StreamingCompressionSim

        sim = StreamingCompressionSim(
            DAQConfig(frame_rate_hz=2000.0, wedges_per_frame=4), seed=args.seed
        )
        source = async_replay_stream(sim.wedge_stream(wedges))
        payloads, stats = asyncio.run(service.run_async(source))
    else:
        payloads, stats = service.run(wedges)
    if health_server is not None:
        health_server.shutdown()
    gateway = "async gateway" if args.use_async else "sync service"
    print(f"served {wedges.shape[0]} wedges {wedges.shape[1:]} "
          f"[{args.model}, {'fp32' if args.full else 'fp16'}, {gateway}]")
    print(stats.row())
    if args.use_async:
        print(f"batch latency (wait+compute): {stats.batch_latency().row()}")
    if service.last_shm:
        print(f"process hand-off: {service.last_shm}")
    if stats.n_batches:
        tr = stats.to_throughput_result()
        print(f"best batch: {tr.seconds_per_batch * 1e3:.2f} ms "
              f"(mean {tr.seconds_per_batch_mean * 1e3:.2f} ms)")
    if args.rate_policy:
        _print_rate_summary(payloads, wedges.shape[1:])

    if args.baseline:
        if args.rate_policy:
            from .rate import AdaptiveCompressor, make_policy

            compressor = AdaptiveCompressor(
                BCAECompressor(model, half=not args.full),
                make_policy(args.rate_policy,
                            budget_mbps=args.rate_budget_mbps),
            )
        else:
            compressor = BCAECompressor(model, half=not args.full)
        t0 = time.perf_counter()
        serial = [compressor.compress(w) for w in wedges]
        dt = time.perf_counter() - t0
        serial_wps = wedges.shape[0] / dt
        print(f"serial single-wedge compress: {serial_wps:8.1f} w/s "
              f"-> service speedup {stats.wedges_per_second / serial_wps:.2f}x")
        if args.rate_policy:
            # Mixed payloads have no uniform code view; selection is a
            # pure per-wedge function, so records, codec ids and decision
            # ledgers must match the serial path byte-for-byte.
            parity = (
                b"".join(bytes(p.payload) for p in payloads)
                == b"".join(bytes(p.payload) for p in serial)
                and sum((p.codec_ids for p in payloads), ())
                == sum((p.codec_ids for p in serial), ())
                and sum((p.decisions for p in payloads), ())
                == sum((p.decisions for p in serial), ())
            )
            print(f"adaptive payload/ledger parity with serial path: "
                  f"{'OK' if parity else 'MISMATCH'}")
            if not parity:
                return 1
            if args.archive:
                from .io import concat_compressed, save_compressed

                path = save_compressed(concat_compressed(payloads),
                                       args.archive, model_name=args.model)
                print(f"archived {sum(p.n_wedges for p in payloads)} "
                      f"wedges -> {path}")
            return 0
        got = np.concatenate([np.asarray(p.codes_view()) for p in payloads])
        ref = np.concatenate([np.asarray(p.codes_view()) for p in serial])
        if args.precision == "ulp":
            # The ulp tier's payload bytes may deviate from the module
            # path within the recorded stored-grid bounds; gate on the
            # end-to-end grid-step contract instead of byte equality.
            from .core.fast_plan import ULP_TIER_RECON_GRID_STEPS, grid_steps_at_scale

            steps = grid_steps_at_scale(got, ref, not args.full)
            parity = steps <= ULP_TIER_RECON_GRID_STEPS
            print(f"ulp-tier payload deviation: {steps} grid step(s) at "
                  f"scale (cap {ULP_TIER_RECON_GRID_STEPS}) "
                  f"{'OK' if parity else 'EXCEEDED'}")
        else:
            parity = got.tobytes() == ref.tobytes()
            print(f"payload parity with serial path: "
                  f"{'OK' if parity else 'MISMATCH'}")
        if not parity:
            return 1

    if args.archive:
        from .io import concat_compressed, save_compressed

        path = save_compressed(concat_compressed(payloads), args.archive,
                               model_name=args.model)
        print(f"archived {sum(p.n_wedges for p in payloads)} wedges -> {path}")
    return 0


def _print_rate_summary(payloads, wedge_spatial) -> None:
    """Per-codec routing counts + aggregate ratio of adaptive payloads."""

    from collections import Counter

    from .rate import aggregate_ratio, codec_name

    counts: Counter = Counter()
    for p in payloads:
        counts.update(p.codec_ids or ())
    routed = ", ".join(
        f"{codec_name(cid)}:{n}" for cid, n in sorted(counts.items())
    )
    ratio = aggregate_ratio(payloads, wedge_spatial)
    print(f"rate tier: routed [{routed}] -> aggregate ratio {ratio:.2f}")


def _cmd_compress(args) -> int:
    """``compress``: one-shot (optionally adaptive) archive production."""

    from .core import BCAECompressor, build_model
    from .io import concat_compressed, save_compressed
    from .tpc import generate_wedge_stream

    if args.data:
        from .tpc import WedgeDataset

        dataset = WedgeDataset.load(args.data)
        wedges = dataset.wedges
        spatial = dataset.geometry.wedge_shape
    else:
        geometry = _geometry(args.scale)
        wedges = generate_wedge_stream(args.wedges, geometry=geometry,
                                       seed=args.seed)
        spatial = geometry.wedge_shape
    kwargs = _model_kwargs(args)
    model = build_model(args.model, wedge_spatial=spatial, seed=args.seed,
                        **kwargs)
    model.eval()
    compressor = BCAECompressor(model, half=not args.full)
    if args.rate_policy:
        from .rate import AdaptiveCompressor, make_policy

        compressor = AdaptiveCompressor(
            compressor,
            make_policy(args.rate_policy, budget_mbps=args.rate_budget_mbps),
        )
    payloads = [
        compressor.compress(wedges[start:start + args.batch])
        for start in range(0, wedges.shape[0], max(1, args.batch))
    ]
    combined = concat_compressed(payloads)
    path = save_compressed(combined, args.archive, model_name=args.model)
    print(f"compressed {combined.n_wedges} wedges {wedges.shape[1:]} "
          f"[{args.model}, {'fp32' if args.full else 'fp16'}] -> {path}")
    if args.rate_policy:
        _print_rate_summary(payloads, wedges.shape[1:])
    else:
        ratio = compressor.compression_ratio(wedges.shape[1:])
        print(f"fixed-rate BCAE: compression ratio {ratio:.3f}")
    return 0


def _run_gateway(args, model, config, wedges) -> int:
    """Gateway mode of ``serve``: N shards behind one socket front door,
    fed over loopback by ``--producers`` concurrent wedge-frame clients."""

    import asyncio

    from .serve import (
        GatewayConfig,
        ServingGateway,
        StreamingCompressionService,
        read_wedge_frame,
        write_wedge_frame,
    )

    shards = max(1, args.shards)
    services = [StreamingCompressionService(model, config) for _ in range(shards)]
    gateway = ServingGateway(
        services, GatewayConfig(port=args.gateway_port or 0)
    )
    producers = max(1, args.producers)
    splits = np.array_split(wedges, producers)

    async def produce(port: int, ws) -> int:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for w in ws:
            write_wedge_frame(writer, w)
            await writer.drain()
        writer.write_eof()
        n = 0
        while True:
            frame = await read_wedge_frame(reader)
            if frame is None:
                break
            n += 1
        writer.close()
        return n

    async def run():
        import time as _time

        await gateway.start()
        port = gateway.port
        print(f"gateway listening on 127.0.0.1:{port} "
              f"({shards} shard(s), {producers} producer(s))")
        t0 = _time.perf_counter()
        answered = await asyncio.gather(
            *[produce(port, ws) for ws in splits if len(ws)]
        )
        elapsed = _time.perf_counter() - t0
        await gateway.drain()
        await gateway.aclose()
        return sum(answered), elapsed

    answered, elapsed = asyncio.run(run())
    stats = gateway.stats()
    health = gateway.health()
    print(f"served {answered}/{wedges.shape[0]} wedges in {elapsed:.2f} s "
          f"({answered / max(elapsed, 1e-9):.1f} w/s aggregate)")
    print(f"gateway: {stats.row()}")
    for i, (shard_stats, shard_health) in enumerate(
            zip(stats.per_shard, health.shards)):
        print(f"  shard {i}: state={shard_health.state} "
              f"level={shard_stats.level or 'inline'} "
              f"units={shard_stats.n_batches} wedges={shard_stats.n_wedges}")
    return 0 if answered == wedges.shape[0] else 1


def _cmd_decompress(args) -> int:
    """``decompress``: serve an io.codes archive back to reconstructions."""

    from .core import build_model
    from .io import load_compressed
    from .serve import DecompressionService, ServiceConfig
    from .tpc import inverse_log_transform

    from .core import BCAECompressor

    compressed, model_name = load_compressed(args.archive)
    name = model_name or args.model
    kwargs = _model_kwargs(args) if name == "bcae_2d" else {}
    # Recover the wedge geometry the archive describes (weights are
    # synthetic — the producer and consumer must agree on
    # --model/--m/--n/--d/--seed; the code-shape check below catches
    # family/geometry mismatches loudly).
    if name == "bcae_2d":
        # 2D: the decoder upsamples the code spatial shape by 2^d, the
        # horizontal unpads to the recorded original size.
        d = kwargs.get("d", 3)
        azim = compressed.code_shape[1]
        candidates = [(16, azim * 2 ** d, compressed.original_horizontal)]
    elif len(compressed.code_shape) == 4:
        # 3D: codes are (C, r, a, h) with the radial axis untouched and
        # four ×2 azimuthal stages — a·16 for the padded variants, the
        # legacy-tail inversions (output_padding 0/1) for the original.
        _c, r, a, _h = compressed.code_shape
        candidates = [
            (r, az, compressed.original_horizontal)
            for az in (a * 16, (2 * a - 3) * 8, (2 * a - 2) * 8)
            if az > 0
        ]
    else:
        print(
            f"archive code shape {tuple(compressed.code_shape)} is not a 3D "
            f"code; pass the producer's --model/--m/--n/--d flags"
        )
        return 1
    model = None
    for spatial in candidates:
        try:
            candidate = build_model(name, wedge_spatial=spatial, seed=args.seed,
                                    **kwargs)
            expected = BCAECompressor(candidate).code_shape_for(spatial)
        except ValueError:
            continue
        if tuple(expected) == tuple(compressed.code_shape):
            model = candidate
            # Inference mode: BatchNorm models (the original BCAE) must
            # decode from running statistics, batch-composition-free.
            model.eval()
            break
    if model is None:
        print(
            f"archive code shape {tuple(compressed.code_shape)} does not match "
            f"any {name} geometry (tried wedge shapes "
            f"{', '.join(str(c) for c in candidates)}); pass the producer's "
            "--model/--m/--n/--d flags"
        )
        return 1

    config = ServiceConfig(
        max_batch=args.batch,
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        shm_slab_mb=args.shm_slab_mb,
        half=not args.full,
        precision=args.precision,
        panel_threads=args.panel_threads,
        # Mixed archives need the adaptive tier on the decode side too —
        # the policy itself is irrelevant for decoding, but the wrapper
        # routes each record to its codec.
        rate_policy="occupancy" if compressed.mixed else None,
    )
    service = DecompressionService(model, config)
    recons, stats = service.run(compressed)
    recon = np.concatenate(recons) if recons else np.empty((0,) + spatial, np.float32)
    print(f"decompressed {stats.n_wedges} wedges {recon.shape[1:]} "
          f"[{name}, {'fp32' if args.full else 'fp16'}] from {args.archive}")
    print(stats.row())

    if args.verify:
        reference_compressor = BCAECompressor(model, half=not args.full)
        if compressed.mixed:
            from .rate import AdaptiveCompressor

            reference = AdaptiveCompressor(
                reference_compressor
            ).decompress(compressed)
        else:
            reference = reference_compressor.decompress(compressed)
        if args.precision == "ulp":
            from .core.fast_plan import ULP_TIER_RECON_GRID_STEPS, grid_steps_at_scale

            steps = grid_steps_at_scale(recon, reference, not args.full)
            parity = steps <= ULP_TIER_RECON_GRID_STEPS
            print(f"ulp-tier recon deviation: {steps} grid step(s) at "
                  f"scale (cap {ULP_TIER_RECON_GRID_STEPS}) "
                  f"{'OK' if parity else 'EXCEEDED'}")
        else:
            parity = np.array_equal(reference, recon)
            print(f"parity with module-graph decompress: "
                  f"{'OK' if parity else 'MISMATCH'}")
        if not parity:
            return 1

    if args.out:
        arrays = {"recon_log": recon}
        if args.adc:
            arrays["recon_adc"] = inverse_log_transform(recon)
        np.savez_compressed(args.out, **arrays)
        print(f"reconstructions -> {args.out}")
    return 0


def _print_plan_stats(rec: dict) -> None:
    """Pretty-print one verification record's ``plan_stats()`` summary."""

    stats = rec.get("stats")
    if not stats:
        return
    kinds = " ".join(f"{k}:{v}" for k, v in
                     sorted(stats["stage_kinds"].items()))
    folds = stats["bn_folds"]
    print(f"  stats  precision={stats['precision']} "
          f"half={stats['half']} panel_threads={stats['panel_threads']}")
    print(f"  stats  stages  {kinds}")
    print(f"  stats  bn-folds  {folds['folded']} folded / "
          f"{folds['kept']} kept")
    gemms = stats.get("gemms", {})
    if gemms:
        for key, g in gemms.items():
            print(f"  stats  gemm {key}: {g['formulation']} "
                  f"m={g['m']} K={g['K']} o={g['o']} "
                  f"panels={g['panels']} threads={g['threads']} "
                  f"max_ulp={g['max_ulp']}")
    else:
        print("  stats  gemm  (static verification only — no execution)")
    for s in stats.get("ulp_sites", []):
        where = s.get("placement") or s.get("key") or "?"
        print(f"  stats  ulp-site {s['site']} at {where}: "
              f"max {s['max_ulp']} grid step(s)")


def _cmd_analyze(args) -> int:
    """Run the static analyzer; exit 1 on (new) gating findings."""

    from .analysis import load_baseline, run_analysis

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    report, records = run_analysis(passes=passes,
                                   extra_sources=args.extra_source,
                                   half=not args.full,
                                   precision=args.precision)
    baseline = None if args.baseline is None else load_baseline(args.baseline)
    if args.json:
        print(report.to_json(baseline))
    else:
        if "plan" in passes:
            for rec in records:
                out = rec["out"]
                sites = rec["clip_sites"]
                elided = sum(1 for s in sites if s["clip_elided"])
                status = "ok" if rec["ok"] else "FAIL"
                print(f"plan {rec['label']:24s} {status}  out "
                      f"{out['channels']}x{out['spatial']}  "
                      f"{elided}/{len(sites)} clips elided")
                if args.stats:
                    _print_plan_stats(rec)
        print(report.format_text(baseline, verbose=args.verbose))
    failing = (report.new_findings(baseline) if baseline is not None
               else report.gating())
    return 1 if failing else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-tpc`` console script."""

    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "throughput": _cmd_throughput,
        "compare": _cmd_compare,
        "search": _cmd_search,
        "daq": _cmd_daq,
        "serve": _cmd_serve,
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
