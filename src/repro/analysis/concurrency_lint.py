"""Pass 3 — lease-discipline and async-blocking lint over the serving stack.

Two families of rules, both AST-static:

**Slab-ring lease discipline** (``serve/shm.py``'s one-side-at-a-time
protocol: a slab obtained from ``try_lease`` must be returned by
``release`` on *every* path, including exception edges).  Leases legally
escape the leasing function in this codebase — ``_ProcessTransport.submit``
hands the slab into the work item and stashes it on the future, and the
``finalize``/``fail`` hooks release it — so the rules distinguish local
from escaped leases:

``CL001`` (error)
    A function assigns a ``try_lease()`` result and neither releases it
    locally nor lets it escape (call argument, return value, attribute or
    container store): the slab leaks on every path.
``CL002`` (warning)
    A function releases its lease locally, but no ``release`` call sits
    inside a ``finally`` block: an exception between lease and release
    leaks the slab.
``CL003`` (error)
    A lease escapes, but nowhere in the module is a ``release`` call
    protected by ``finally``: the downstream owner has no
    exception-safe return path.
``CL004`` (warning)
    A lease escapes and the module has exactly one ``release`` call site:
    the protocol needs both a success path *and* a failure hook
    (cf. ``finalize``'s ``finally`` plus ``fail``).

**No blocking calls in async code** (over ``serve/source.py`` /
``serve/batcher.py`` / ``serve/gateway.py``, whose deadline math and
session handling assume the event loop is never stalled):

``CL010`` (error)
    Inside an ``async def``: ``time.sleep``, ``os.system``,
    ``subprocess.*``, ``socket.*`` constructors, ``urllib``/``requests``
    calls, bare ``open()``, or ``Future.result()`` — each blocks the loop;
    use the ``asyncio`` equivalents or hand off to an executor.

**Unbounded pool-future waits** (over every ``serve/*.py`` module; the
supervision layer's per-unit deadlines only work when no wait can block
forever):

``CL020`` (warning)
    A ``.result()`` call with no ``timeout=`` keyword: under a hung
    worker this wait never returns and wedges the stream.  Pass a
    timeout (even a generous one) or route the wait through the
    supervised engine.  Grandfathered call sites live in the baseline.

The scoped serving sources currently lint clean on the first two
families; the compile-time lease orchestration findings (if any) live in
the baseline like every other pass's.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = [
    "default_async_targets",
    "default_lease_targets",
    "default_result_targets",
    "lint_async_paths",
    "lint_async_source",
    "lint_lease_paths",
    "lint_lease_source",
    "lint_result_timeout_paths",
    "lint_result_timeout_source",
]

#: Module-level blocking calls disallowed under ``async def`` (CL010).
BLOCKING_CALLS = frozenset({
    ("time", "sleep"), ("os", "system"), ("os", "wait"), ("os", "waitpid"),
    ("socket", "create_connection"), ("socket", "getaddrinfo"),
    ("urllib", "urlopen"), ("requests", "get"), ("requests", "post"),
    ("requests", "request"), ("shutil", "copyfile"),
})

#: Blocking attribute-call names regardless of receiver (CL010).
BLOCKING_METHODS = frozenset({"check_call", "check_output", "run_sync"})


def default_lease_targets(root: str | Path) -> list[Path]:
    """Files holding lease orchestration: the shm ring and its consumers."""

    root = Path(root)
    return [root / "serve" / "shm.py", root / "serve" / "service.py",
            root / "serve" / "gateway.py"]


def default_async_targets(root: str | Path) -> list[Path]:
    """The async deadline-sensitive files the blocking check covers."""

    root = Path(root)
    return [root / "serve" / "source.py", root / "serve" / "batcher.py",
            root / "serve" / "gateway.py"]


def default_result_targets(root: str | Path) -> list[Path]:
    """Every serving module: any of them may wait on a pool future."""

    root = Path(root)
    return sorted((root / "serve").glob("*.py"))


def lint_lease_paths(paths, rel_to: str | Path | None = None) -> list[Diagnostic]:
    """Lease-discipline rules over source files."""

    out: list[Diagnostic] = []
    for path in paths:
        path = Path(path)
        label = str(path.relative_to(rel_to)) if rel_to else str(path)
        out.extend(lint_lease_source(path.read_text(), label))
    return out


def lint_async_paths(paths, rel_to: str | Path | None = None) -> list[Diagnostic]:
    """Async-blocking rules over source files."""

    out: list[Diagnostic] = []
    for path in paths:
        path = Path(path)
        label = str(path.relative_to(rel_to)) if rel_to else str(path)
        out.extend(lint_async_source(path.read_text(), label))
    return out


def lint_result_timeout_paths(
    paths, rel_to: str | Path | None = None
) -> list[Diagnostic]:
    """Unbounded ``.result()`` rule over source files."""

    out: list[Diagnostic] = []
    for path in paths:
        path = Path(path)
        label = str(path.relative_to(rel_to)) if rel_to else str(path)
        out.extend(lint_result_timeout_source(path.read_text(), label))
    return out


# ----------------------------------------------------------------------
# Lease discipline
# ----------------------------------------------------------------------

def lint_lease_source(source: str, path: str) -> list[Diagnostic]:
    """Run the lease-discipline rules over one module's source."""

    tree = ast.parse(source, filename=path)
    releases_in_finally = _count_finally_releases(tree)
    release_sites = _count_release_sites(tree)

    diags: list[Diagnostic] = []
    escaped_anywhere = False
    for func, qual in _functions(tree):
        leases = _lease_assignments(func)
        if not leases:
            continue
        local_release = _releases_lease(func)
        local_finally = _count_finally_releases(func) > 0
        for name, node in leases:
            escapes = _lease_escapes(func, name)
            escaped_anywhere = escaped_anywhere or escapes
            scope = f"{path}:{qual}"
            if not local_release and not escapes:
                diags.append(Diagnostic(
                    pass_name="concurrency", rule="CL001", severity="error",
                    location=f"{path}:{node.lineno}", scope=scope,
                    message=(f"lease {name!r} is neither released in this "
                             "function nor escapes it — the slab leaks on "
                             "every path"),
                    token=name,
                ))
            elif local_release and not local_finally:
                diags.append(Diagnostic(
                    pass_name="concurrency", rule="CL002", severity="warning",
                    location=f"{path}:{node.lineno}", scope=scope,
                    message=(f"lease {name!r} is released locally but not "
                             "under a finally: an exception between lease "
                             "and release leaks the slab"),
                    token=name,
                ))
    if escaped_anywhere:
        if releases_in_finally == 0:
            diags.append(Diagnostic(
                pass_name="concurrency", rule="CL003", severity="error",
                location=path, scope=f"{path}:<module>",
                message=("leases escape their leasing function but no "
                         "release call in this module is protected by "
                         "finally — no exception-safe return path exists"),
                token="escape",
            ))
        elif release_sites < 2:
            diags.append(Diagnostic(
                pass_name="concurrency", rule="CL004", severity="warning",
                location=path, scope=f"{path}:<module>",
                message=("escaped leases with a single release site: the "
                         "protocol needs both a success path and a failure "
                         "hook"),
                token="escape",
            ))
    return diags


def _functions(tree: ast.AST):
    """Yield ``(node, qualname)`` for every function, nested included."""

    def rec(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield child, qual
                yield from rec(child, qual)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield from rec(child, qual)
            else:
                yield from rec(child, prefix)

    yield from rec(tree, "")


def _is_try_lease(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "try_lease")


def _lease_assignments(func) -> list[tuple[str, ast.AST]]:
    """``name = ....try_lease()`` bindings in a function body (including
    conditional-expression forms like ``x = ring.try_lease() if ok else
    None``)."""

    out = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if isinstance(value, ast.IfExp):
            candidates = (value.body, value.orelse)
        else:
            candidates = (value,)
        if any(_is_try_lease(c) for c in candidates):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.append((target.id, node))
    return out


def _releases_lease(func) -> bool:
    return any(
        isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
        and n.func.attr == "release"
        for n in ast.walk(func)
    )


def _count_finally_releases(tree) -> int:
    count = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for n in ast.walk(stmt):
                    if (isinstance(n, ast.Call)
                            and isinstance(n.func, ast.Attribute)
                            and n.func.attr == "release"):
                        count += 1
    return count


def _count_release_sites(tree) -> int:
    return sum(
        1 for n in ast.walk(tree)
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
        and n.func.attr == "release"
    )


def _lease_escapes(func, name: str) -> bool:
    """Whether the leased ``name`` escapes the function: passed to a call
    (other than ``release``), returned, or stored into an attribute,
    subscript or container.  Comparisons and ``is None`` guards are not
    escapes."""

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            is_release = (isinstance(node.func, ast.Attribute)
                          and node.func.attr == "release")
            if is_release:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                for n in ast.walk(arg):
                    if isinstance(n, ast.Name) and n.id == name:
                        return True
        elif isinstance(node, ast.Return) and node.value is not None:
            for n in ast.walk(node.value):
                if isinstance(n, ast.Name) and n.id == name:
                    return True
        elif isinstance(node, ast.Assign):
            stores_out = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
            if stores_out:
                for n in ast.walk(node.value):
                    if isinstance(n, ast.Name) and n.id == name:
                        return True
    return False


# ----------------------------------------------------------------------
# Async blocking calls
# ----------------------------------------------------------------------

def lint_async_source(source: str, path: str) -> list[Diagnostic]:
    """Run the no-blocking-in-async rules over one module's source."""

    tree = ast.parse(source, filename=path)
    diags: list[Diagnostic] = []
    for func, qual in _functions(tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in _walk_own_body(func):
            if not isinstance(node, ast.Call):
                continue
            token = _blocking_token(node)
            if token is not None:
                diags.append(Diagnostic(
                    pass_name="concurrency", rule="CL010", severity="error",
                    location=f"{path}:{node.lineno}",
                    scope=f"{path}:{qual}",
                    message=(f"{token} blocks the event loop inside "
                             "async def — use the asyncio equivalent or an "
                             "executor"),
                    token=token,
                ))
    return diags


def _walk_own_body(func):
    """Walk a function's nodes without descending into nested defs (sync
    helpers defined inside an async def run in their own scope)."""

    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_token(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open()"
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            pair = (func.value.id, func.attr)
            if pair in BLOCKING_CALLS:
                return f"{pair[0]}.{pair[1]}"
            if func.value.id == "subprocess":
                return f"subprocess.{func.attr}"
        if func.attr in BLOCKING_METHODS:
            return f".{func.attr}"
    return None


# ----------------------------------------------------------------------
# Unbounded pool-future waits
# ----------------------------------------------------------------------

def lint_result_timeout_source(source: str, path: str) -> list[Diagnostic]:
    """Run the unbounded-``.result()`` rule (CL020) over one module.

    Flags every ``something.result()`` call with neither a positional
    argument nor a ``timeout=`` keyword — ``Future.result``'s timeout is
    its only parameter, so any argument bounds the wait.  AST-static, so
    non-future receivers that happen to have a ``result`` method are
    flagged too; baseline such sites rather than weakening the rule.
    """

    tree = ast.parse(source, filename=path)
    diags: list[Diagnostic] = []
    for func, qual in _functions(tree):
        for node in _walk_own_body(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "result"):
                continue
            if node.args or any(kw.arg == "timeout" for kw in node.keywords):
                continue
            receiver = node.func.value
            token = (f"{receiver.id}.result"
                     if isinstance(receiver, ast.Name) else ".result")
            diags.append(Diagnostic(
                pass_name="concurrency", rule="CL020", severity="warning",
                location=f"{path}:{node.lineno}",
                scope=f"{path}:{qual}",
                message=(f"{token}() without a timeout: a hung worker makes "
                         "this wait block forever — pass timeout= or route "
                         "the wait through the supervised engine"),
                token=token,
            ))
    return diags
