"""Analyzer driver: all passes over the code base and the Table-1 plans.

:func:`run_analysis` is what ``repro-tpc analyze`` and ``tools/analyze.py``
call: it compiles all four model-zoo configurations at a smoke geometry,
statically verifies every resulting plan (encoder + both decoder heads)
with :func:`~repro.analysis.plan_verifier.verify_plan`, runs the hot-path
and concurrency lints over the scoped sources and the public-API audit
over the whole package, and returns one
:class:`~repro.analysis.diagnostics.AnalysisReport`.

Plan verification is end-to-end static: the encoder plan's inferred output
shape (channels × spatial) is fed forward as the decoder plans' input —
no tensor is ever materialised, so the whole run costs model construction
plus AST walks.
"""

from __future__ import annotations

from pathlib import Path

from .concurrency_lint import (
    default_async_targets,
    default_lease_targets,
    default_result_targets,
    lint_async_paths,
    lint_lease_paths,
    lint_result_timeout_paths,
)
from .api_lint import audit_package
from .diagnostics import AnalysisReport, Diagnostic
from .hotpath_lint import default_targets as hotpath_targets
from .hotpath_lint import lint_paths as hotpath_lint_paths
from .plan_verifier import verify_plan

__all__ = ["SMOKE_WEDGE", "analyze_model_plans", "run_analysis"]

#: Wedge geometry the plan pass compiles the zoo at — the bench smoke
#: shape: every model family builds and all stage shapes stay non-trivial,
#: while construction takes milliseconds instead of the paper grid's
#: seconds.
SMOKE_WEDGE = (16, 48, 62)


def _package_root() -> Path:
    """``src/repro`` — the root the source lints scan."""

    return Path(__file__).resolve().parent.parent


def analyze_model_plans(names=None, half: bool = True,
                        wedge_spatial: tuple[int, int, int] = SMOKE_WEDGE,
                        precision: str = "bit",
                        ) -> tuple[list[Diagnostic], list[dict]]:
    """Verify encoder + decoder plans of the zoo models; returns
    ``(diagnostics, verification records)``.

    The 2D family's radial axis rides as channels (input ``(B, R, A, H)``
    with the horizontal padded to the encoder's ``2**d`` grid); the 3D
    families consume a single-channel volume at the model's own spatial
    shape.  Decoder inputs are the encoder's *inferred* output — the
    chain is fully static.  Each record additionally carries the plan's
    :meth:`~repro.core.fast_plan.CompiledStagePlan.plan_stats` summary
    under ``"stats"`` (``analyze --stats`` prints it); GEMM execution
    entries stay empty here because verification never runs the plan.
    """

    from repro.core import MODEL_NAMES, build_model
    from repro.core.fast_decode import make_fast_decoder, supports_fast_decode
    from repro.core.fast_encode import (
        LOG_INPUT_BOUND,
        make_fast_encoder,
        supports_fast_encode,
    )
    from repro.core.fast_plan import FP16_MAX

    diags: list[Diagnostic] = []
    records: list[dict] = []
    for name in (MODEL_NAMES if names is None else names):
        model = build_model(name, wedge_spatial=wedge_spatial, seed=0)
        model.eval()
        if not (supports_fast_encode(model) and supports_fast_decode(model)):
            diags.append(Diagnostic(
                pass_name="plan", rule="PV100", severity="error",
                location=name, scope=name,
                message="model is outside the compiled vocabulary — the "
                        "fast path silently falls back to the module graph",
                token="vocabulary",
            ))
            continue
        enc = make_fast_encoder(model, half=half, precision=precision)
        if hasattr(enc, "spatial"):           # 3D: single-channel volume
            in_channels, in_spatial = 1, tuple(enc.spatial)
        else:                                 # 2D: radial axis as channels
            r, a, h = wedge_spatial
            grid = 2 ** enc.d
            in_channels = r
            in_spatial = (a, -(-h // grid) * grid)
        rec = verify_plan(enc.plan, in_channels, in_spatial,
                          LOG_INPUT_BOUND, label=f"{name}.encoder")
        rec["stats"] = enc.plan.plan_stats()
        records.append(rec)
        diags.extend(rec["diagnostic_objects"])

        dec = make_fast_decoder(model, half=half, precision=precision)
        code = rec["out"]
        entry = FP16_MAX if half else rec["out"]["bound"]
        for head, plan in dec.plans.items():
            rec_d = verify_plan(plan, code["channels"], code["spatial"],
                                entry, label=f"{name}.decoder.{head}")
            rec_d["stats"] = plan.plan_stats()
            records.append(rec_d)
            diags.extend(rec_d["diagnostic_objects"])
    return diags, records


def run_analysis(passes=("plan", "hotpath", "concurrency", "api"),
                 extra_sources=(), half: bool = True,
                 precision: str = "bit",
                 ) -> tuple[AnalysisReport, list[dict]]:
    """Run the selected passes; returns ``(report, plan records)``.

    ``extra_sources`` are additional file paths fed to the hot-path and
    concurrency lints — the CI injected-finding fixture uses this to prove
    the gate fails on a fresh finding.  ``precision`` selects the compile
    tier for the plan pass (``"ulp"`` exercises the relaxed-numerics
    ledger rules PV050–PV052).
    """

    root = _package_root()
    diags: list[Diagnostic] = []
    records: list[dict] = []
    extra = [Path(p) for p in extra_sources]
    if "plan" in passes:
        plan_diags, records = analyze_model_plans(half=half,
                                                  precision=precision)
        diags.extend(plan_diags)
    if "hotpath" in passes:
        diags.extend(hotpath_lint_paths(hotpath_targets(root),
                                        rel_to=root.parent))
        if extra:
            diags.extend(hotpath_lint_paths(extra))
    if "concurrency" in passes:
        diags.extend(lint_lease_paths(default_lease_targets(root),
                                      rel_to=root.parent))
        diags.extend(lint_async_paths(default_async_targets(root),
                                      rel_to=root.parent))
        diags.extend(lint_result_timeout_paths(default_result_targets(root),
                                               rel_to=root.parent))
        if extra:
            diags.extend(lint_lease_paths(extra))
            diags.extend(lint_async_paths(extra))
            diags.extend(lint_result_timeout_paths(extra))
    if "api" in passes:
        diags.extend(audit_package(root.parent))
    return AnalysisReport(diags), records
