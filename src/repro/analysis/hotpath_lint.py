"""Pass 2 — hot-path allocation lint over the compiled/serving modules.

The fast-path contract of :mod:`repro.core.fast_plan` and the serving
stack is *steady-state allocation freedom*: every per-wedge buffer comes
from a :class:`~repro.core.fast_plan.Workspace`, ufuncs write through
``out=``, and nothing builds Python lists per stage-execution iteration.
This pass enforces that with a custom AST walk: it flags, **only inside
loops** (``for``/``while`` bodies and comprehensions — the lexical shape
of every stage-execution and batch loop), the constructs that allocate:

``HP001``
    Array-producing ``np.*`` constructor calls (``np.empty``,
    ``np.zeros``, ``np.asarray``, ``np.concatenate`` …).
``HP002``
    Array-returning ``np.*`` ufunc-style calls without an ``out=``
    argument (``np.add``, ``np.clip``, ``np.dot`` … allocate their result
    when ``out`` is omitted).
``HP003``
    Allocating array methods — ``.copy()``, ``.astype()``, ``.flatten()``,
    ``.tolist()``.
``HP004``
    Python list building — ``.append(...)`` calls and list
    comprehensions.
``HP005``
    Workspace slab acquisition (``self._ws.get(...)``) inside a nested
    function — the lexical shape of the panel-executor worker closures.
    :class:`~repro.core.fast_plan.Workspace` is not thread-safe by
    contract: the parallel panel path must acquire every per-slot slab on
    the caller thread *before* the workers start, so a ``_ws.get`` inside
    a closure is a per-call allocation racing the other slots.  Unlike
    HP001–HP004 this rule applies at any loop depth (the closure body is
    the worker's whole run).

Compile-time loops (plan construction, calibration probes) trip these
rules too; those findings are *grandfathered* in the checked-in baseline
(``tools/analysis_baseline.json``) and ratchet down rather than block.
A finding can also be acknowledged in place with a trailing
``# lint: allow-alloc`` comment (used where an allocation is deliberate,
e.g. a cold error path).

Fingerprints are built from ``(rule, module:function, call token,
occurrence)`` — stable under reformatting and unrelated edits.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["default_targets", "lint_paths", "lint_source"]

#: ``np.*`` calls that always allocate a fresh array (HP001).
ALLOCATORS = frozenset({
    "empty", "zeros", "ones", "full", "empty_like", "zeros_like",
    "ones_like", "full_like", "array", "asarray", "ascontiguousarray",
    "asfortranarray", "copy", "concatenate", "stack", "vstack", "hstack",
    "pad", "repeat", "tile", "arange", "linspace", "frombuffer",
})

#: ``np.*`` calls that allocate their result unless ``out=`` is passed
#: (HP002).  ``np.copyto`` writes in place by construction and is exempt.
OUT_CAPABLE = frozenset({
    "add", "subtract", "multiply", "divide", "true_divide", "negative",
    "abs", "absolute", "exp", "log", "log2", "sqrt", "clip", "greater",
    "greater_equal", "less", "less_equal", "equal", "not_equal",
    "maximum", "minimum", "dot", "matmul", "mean", "sum", "nanmax",
    "nanmin", "where",
})

#: Allocating array methods (HP003).
ALLOC_METHODS = frozenset({"copy", "astype", "flatten", "tolist"})

#: In-line acknowledgement comment.
SUPPRESS = "lint: allow-alloc"


def default_targets(root: str | Path) -> list[Path]:
    """The scoped hot-path files: ``core/fast_*.py``, ``serve/*.py`` and
    the adaptive rate tier's serving wrapper."""

    root = Path(root)
    files = sorted((root / "core").glob("fast_*.py"))
    files += sorted(p for p in (root / "serve").glob("*.py")
                    if p.name != "__init__.py")
    tier = root / "rate" / "tier.py"
    if tier.exists():
        files.append(tier)
    return files


def lint_paths(paths, rel_to: str | Path | None = None) -> list[Diagnostic]:
    """Run the lint over source files; returns all findings."""

    out: list[Diagnostic] = []
    for path in paths:
        path = Path(path)
        label = str(path.relative_to(rel_to)) if rel_to else str(path)
        out.extend(lint_source(path.read_text(), label))
    return out


def lint_source(source: str, path: str) -> list[Diagnostic]:
    """Run the lint over one module's source text (``path`` labels it)."""

    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    visitor = _HotPathVisitor(path, lines)
    visitor.visit(tree)
    return visitor.diags


class _HotPathVisitor(ast.NodeVisitor):
    """Tracks lexical function/loop nesting; emits findings inside loops."""

    def __init__(self, path: str, lines: list[str]) -> None:
        self.path = path
        self.lines = lines
        self.diags: list[Diagnostic] = []
        self._funcs: list[str] = []
        self._loop_depth = 0
        self._def_depth = 0  # function-def nesting; ≥2 means a closure

    # -- helpers --------------------------------------------------------
    def _scope(self) -> str:
        qual = ".".join(self._funcs) if self._funcs else "<module>"
        return f"{self.path}:{qual}"

    def _suppressed(self, node: ast.AST) -> bool:
        line = self.lines[node.lineno - 1] if node.lineno <= len(self.lines) else ""
        return SUPPRESS in line

    def _emit(self, rule: str, node: ast.AST, message: str,
              token: str) -> None:
        if self._suppressed(node):
            return
        self.diags.append(Diagnostic(
            pass_name="hotpath", rule=rule, severity="warning",
            location=f"{self.path}:{node.lineno}", scope=self._scope(),
            message=message, token=token,
        ))

    # -- nesting --------------------------------------------------------
    def _visit_func(self, node) -> None:
        self._funcs.append(node.name)
        self._def_depth += 1
        outer_loops = self._loop_depth
        self._loop_depth = 0  # a nested def resets the loop context
        self.generic_visit(node)
        self._loop_depth = outer_loops
        self._def_depth -= 1
        self._funcs.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._funcs.append(node.name)
        self.generic_visit(node)
        self._funcs.pop()

    def _visit_loop(self, node) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def _visit_comp(self, node) -> None:
        # The comprehension *is* a loop: its element expression runs per
        # iteration.  A ListComp additionally builds a list (HP004).
        if isinstance(node, ast.ListComp) and self._loop_depth > 0:
            self._emit("HP004", node,
                       "list comprehension inside a hot loop builds a "
                       "fresh list per iteration", token="listcomp")
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- findings -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func0 = node.func
        if (self._def_depth >= 2
                and isinstance(func0, ast.Attribute)
                and func0.attr == "get"
                and isinstance(func0.value, ast.Attribute)
                and func0.value.attr == "_ws"):
            self._emit("HP005", node,
                       "_ws.get() inside a nested function — the panel "
                       "worker closures run concurrently, so workspace "
                       "slabs must be acquired on the caller thread "
                       "before the workers start", token="_ws.get")
        if self._loop_depth > 0:
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")):
                name = func.attr
                token = f"np.{name}"
                if name in ALLOCATORS:
                    self._emit("HP001", node,
                               f"{token}() allocates a fresh array inside "
                               "a loop — plan a Workspace buffer instead",
                               token=token)
                elif name in OUT_CAPABLE and not any(
                        kw.arg == "out" for kw in node.keywords):
                    self._emit("HP002", node,
                               f"{token}() without out= allocates its "
                               "result inside a loop", token=token)
            elif isinstance(func, ast.Attribute):
                if func.attr in ALLOC_METHODS:
                    self._emit("HP003", node,
                               f".{func.attr}() allocates inside a loop",
                               token=f".{func.attr}")
                elif func.attr == "append":
                    self._emit("HP004", node,
                               ".append() builds a list inside a loop",
                               token=".append")
        self.generic_visit(node)
