"""Pass 1 — static verification of compiled stage plans.

:func:`verify_plan` abstractly interprets a
:class:`~repro.core.fast_plan.CompiledStagePlan` *without running it*: it
walks the compiled op list with a symbolic ``(channels, spatial, bound)``
state — the same state :meth:`CompiledStagePlan.run` threads through its
stages — and checks, per stage, everything that must hold for the runtime
path to be legal and bit-exact:

* **spec integrity** — every cached conv operand has the dtype and memory
  layout the BLAS dispatch was calibrated for (``wt`` fp32 F-contiguous,
  ``wtT`` its C-contiguous transpose, ``bias_col`` an aliasing view of
  ``bias``), every BatchNorm affine's composed ``scale``/``shift`` match a
  recomputation from its raw statistics;
* **shape/channel inference** — GEMM operand widths against the channel
  state, residual-sum and skip-path shape equality inside blocks, pool
  divisibility (the exact-mean reshape requires it), canvas store paddings
  non-negative;
* **epilogue legality** — output heads (``sigmoid``/``regout``) must be
  terminal: :meth:`run` applies them to the *result stream*, so any
  canvas-consuming op after a head would silently drop the head;
* **clip-elision re-derivation** — the magnitude-bound chain is recomputed
  from scratch (conv slopes re-derived from the cached weights in float64)
  and every fp16 quantize site is classified as *clip elided* or *clip
  required*, independently of the values the plan itself cached.  An
  understated cached slope (which could wrongly elide a saturating clip)
  is an error; a decision that flips between the fp32 and float64 chains
  is flagged as boundary-unstable;
* **workspace lifetime** — fold sources (``w_raw``) must have been
  released after BN folding, canvases must stay fp32 across stage
  boundaries (the engine's documented invariant);
* **ulp-tier ledger** — a ``precision="bit"`` plan must carry zero
  relaxed-numerics sites (any entry is an error: a probe-rejected
  formulation ran without the opt-in), and every recorded site's measured
  deviation must stay within ``ULP_TIER_MAX_ULP`` grid steps at stage
  scale; bounded sites on ulp-tier plans are surfaced as ``info``
  diagnostics and summarised under the record's ``"ulp"`` key.

The full record — per-stage state trace, quantize-site intervals,
BN-fold decisions (surfaced as ``info`` diagnostics so calibration-probe
rejections are explainable) and any findings — is attached to the plan as
``plan.verification``, mirroring the ``bn_folds`` decision-record idiom.
"""

from __future__ import annotations

import numpy as np

from repro.core.fast_plan import FP16_MAX, ULP_TIER_MAX_ULP

from .diagnostics import Diagnostic

__all__ = ["verify_plan"]

#: Bound-chain slack: the engine computes slopes in fp32, the re-derivation
#: in float64; disagreements inside one part in 1e5 are rounding, not
#: corruption.
_SLOPE_TOL = 1e-5

#: Stage kinds that produce / transform the result stream but consume no
#: canvas — legal after an output head.
_HEAD_KINDS = ("sigmoid", "regout")


def verify_plan(plan, in_channels: int, in_spatial: tuple[int, ...],
                entry_bound: float, label: str = "plan") -> dict:
    """Statically verify one compiled plan; attach and return the record.

    Parameters
    ----------
    plan:
        The :class:`~repro.core.fast_plan.CompiledStagePlan` to verify.
    in_channels / in_spatial:
        Channel count and spatial shape of the input canvas interior the
        wrapper will prepare (e.g. ``(1, (16, 48, 64))`` for a 3D encoder).
    entry_bound:
        Rigorous magnitude bound on the prepared input values — the same
        bound the wrapper passes to :meth:`run` (``LOG_INPUT_BOUND`` for
        encoders, ``FP16_MAX`` for decoders in half mode).
    label:
        Human-facing plan name used in diagnostic scopes
        (``bcae.encoder``, ``bcae_2d.decoder.seg`` …).

    Returns the verification record (also stored on ``plan.verification``)::

        {"label", "ok", "in", "out", "stages", "clip_sites",
         "ulp", "bn_folds", "diagnostics"}

    ``ok`` is True iff no ``error``-severity diagnostic was produced.
    """

    v = _Verifier(plan, label)
    v.walk(int(in_channels), tuple(int(s) for s in in_spatial),
           float(entry_bound))
    record = v.record()
    plan.verification = record
    return record


class _Verifier:
    """One verification walk over a plan's compiled ops."""

    def __init__(self, plan, label: str) -> None:
        self.plan = plan
        self.label = label
        self.diags: list[Diagnostic] = []
        self.stages: list[dict] = []
        self.clip_sites: list[dict] = []

    # -- diagnostics ----------------------------------------------------
    def _scope(self, i: int | None, kind: str | None) -> str:
        if i is None:
            return self.label
        return f"{self.label}[stage {i}:{kind}]"

    def emit(self, rule: str, severity: str, i: int | None, kind: str | None,
             message: str, token: str = "", **details) -> None:
        self.diags.append(Diagnostic(
            pass_name="plan", rule=rule, severity=severity,
            location=self._scope(i, kind), scope=self._scope(i, kind),
            message=message, token=token, details=details,
        ))

    # -- spec integrity -------------------------------------------------
    def _check_conv_spec(self, spec, i: int, kind: str, part: str) -> float:
        """Integrity checks for one ``_ConvSpec``; returns its re-derived
        float64 bound slope (ℓ1 norm over output channels)."""

        tok = part
        k_rank = len(spec.kernel)
        if not (len(spec.stride) == k_rank == len(spec.padding)):
            self.emit("PV006", "error", i, kind,
                      f"{part}: kernel/stride/padding rank mismatch "
                      f"({spec.kernel} / {spec.stride} / {spec.padding})",
                      token=tok)
        if any(s < 1 for s in spec.stride):
            self.emit("PV006", "error", i, kind,
                      f"{part}: non-positive stride {spec.stride}", token=tok)
        if any(pl < 0 or ph < 0 for pl, ph in spec.padding):
            self.emit("PV030", "error", i, kind,
                      f"{part}: negative canvas padding {spec.padding} — the "
                      "interior view would read outside its canvas",
                      token=tok)

        wt, wtT = spec.wt, spec.wtT
        if wt.dtype != np.float32 or wtT.dtype != np.float32:
            self.emit("PV001", "error", i, kind,
                      f"{part}: GEMM operand dtype {wt.dtype}/{wtT.dtype} — "
                      "the calibrated BLAS path requires float32 across "
                      "every stage boundary", token=tok,
                      wt_dtype=str(wt.dtype), wtT_dtype=str(wtT.dtype))
        if not wt.flags.f_contiguous:
            self.emit("PV002", "error", i, kind,
                      f"{part}: wt is not F-contiguous — BLAS picks its "
                      "kernel by operand layout; a relayouted weight breaks "
                      "bit identity", token=tok)
        if not wtT.flags.c_contiguous:
            self.emit("PV002", "error", i, kind,
                      f"{part}: wtT is not C-contiguous", token=tok)
        if wt.ndim != 2 or wtT.shape != wt.shape[::-1]:
            self.emit("PV003", "error", i, kind,
                      f"{part}: wt {wt.shape} / wtT {wtT.shape} are not "
                      "transposes of each other", token=tok)
        elif not np.array_equal(wtT, wt.T):
            self.emit("PV003", "error", i, kind,
                      f"{part}: wtT values diverge from wt.T — the two GEMM "
                      "orientations would compute different convolutions",
                      token=tok)
        if wt.ndim == 2 and wt.shape[1] != spec.out_channels:
            self.emit("PV003", "error", i, kind,
                      f"{part}: wt has {wt.shape[1]} output columns but the "
                      f"spec claims {spec.out_channels} channels", token=tok)

        if spec.bias is not None:
            if spec.bias.dtype != np.float32:
                self.emit("PV001", "error", i, kind,
                          f"{part}: bias dtype {spec.bias.dtype}", token=tok)
            if spec.bias_col is None or not np.shares_memory(spec.bias,
                                                             spec.bias_col):
                self.emit("PV004", "error", i, kind,
                          f"{part}: bias_col does not alias bias — the "
                          "transposed epilogue would add stale values",
                          token=tok)

        # Clip-elision slope, re-derived from the cached weight in float64.
        if wt.ndim == 2:
            l1_64 = float(np.abs(wt.astype(np.float64)).sum(axis=0).max(
                initial=0.0))
        else:
            l1_64 = float(spec.w_l1)
        if spec.w_l1 < l1_64 * (1.0 - _SLOPE_TOL):
            self.emit("PV005", "error", i, kind,
                      f"{part}: cached bound slope w_l1={spec.w_l1:.6g} "
                      f"understates the re-derived ℓ1 norm {l1_64:.6g} — an "
                      "understated slope can wrongly elide a saturating "
                      "clip", token=tok, w_l1=spec.w_l1, rederived=l1_64)
        if spec.w_raw is not None:
            self.emit("PV031", "info", i, kind,
                      f"{part}: fold source w_raw retained after compile "
                      "(lifetime: plans release it post-fold)", token=tok)
        return l1_64

    def _check_bn_spec(self, bn, i: int, kind: str, part: str) -> None:
        tok = part
        c = bn.num_features
        for name in ("mean", "inv_std", "gamma", "beta", "scale", "shift"):
            a = getattr(bn, name)
            if a.dtype != np.float32:
                self.emit("PV010", "error", i, kind,
                          f"{part}: {name} dtype {a.dtype} (expected "
                          "float32)", token=tok)
            if a.shape != (c,):
                self.emit("PV010", "error", i, kind,
                          f"{part}: {name} shape {a.shape} vs num_features "
                          f"{c}", token=tok)
        scale = (bn.inv_std * bn.gamma).astype(np.float32)
        shift = (bn.beta - bn.mean * scale).astype(np.float32)
        if not (np.array_equal(scale, bn.scale)
                and np.array_equal(shift, bn.shift)):
            self.emit("PV011", "error", i, kind,
                      f"{part}: composed scale/shift diverge from a "
                      "recomputation off mean/inv_std/gamma/beta — the "
                      "folded affine would not match the module chain",
                      token=tok)

    # -- shape helpers --------------------------------------------------
    def _conv_out(self, spec, spatial, i, kind, part) -> tuple[int, ...]:
        out = []
        for s, k, st, (pl, ph) in zip(spatial, spec.kernel, spec.stride,
                                      spec.padding):
            span = s + pl + ph - k
            if span < 0:
                self.emit("PV102", "error", i, kind,
                          f"{part}: kernel {k} does not fit input extent "
                          f"{s} with padding ({pl},{ph})", token=part)
                span = 0
            out.append(span // st + 1)
        return tuple(out)

    def _check_in_channels(self, spec, c, i, kind, part) -> None:
        expect = c * int(np.prod(spec.kernel))
        if spec.wt.ndim == 2 and spec.wt.shape[0] != expect:
            self.emit("PV102", "error", i, kind,
                      f"{part}: GEMM operand expects "
                      f"{spec.wt.shape[0]} input rows but the stream "
                      f"carries {c} channels × kernel {spec.kernel} = "
                      f"{expect}", token=part,
                      rows=int(spec.wt.shape[0]), expected=expect)

    # -- bound chain ----------------------------------------------------
    def _site(self, i: int, kind: str, site: str, bound: float,
              bound64: float) -> float:
        """Record one fp16 quantize site; returns the post-site bound.

        ``bound`` advances the plan's own fp32 chain (what :meth:`run`
        computes), ``bound64`` the independent float64 chain; a clip
        decision that differs between the two is boundary-unstable.
        """

        clip_plan = bound >= FP16_MAX
        clip_64 = bound64 >= FP16_MAX
        self.clip_sites.append({
            "stage": i, "kind": kind, "site": site,
            "bound": float(bound), "bound64": float(bound64),
            "clip_elided": not clip_plan,
        })
        if clip_plan != clip_64:
            self.emit("PV020", "warning", i, kind,
                      f"site {site}: clip-elision decision unstable — the "
                      f"plan chain says bound {bound:.6g}, the float64 "
                      f"re-derivation {bound64:.6g}, straddling ±{FP16_MAX}",
                      token=site, bound=float(bound), bound64=float(bound64))
        return min(bound, FP16_MAX)

    # -- the walk -------------------------------------------------------
    def walk(self, c: int, spatial: tuple[int, ...], bound: float) -> None:
        plan = self.plan
        half = plan.half
        if getattr(plan, "_cdtype", np.float32) != np.float32:
            self.emit("PV033", "error", None, None,
                      f"canvas dtype {plan._cdtype} — stage boundaries "
                      "require fp32 canvases (fp16 grid values stored "
                      "widened)", token="cdtype")

        b64 = float(bound)
        head_seen: int | None = None
        result_exists = False
        ops = plan._ops
        nd = plan._nd
        if nd != len(spatial):
            self.emit("PV101", "error", None, None,
                      f"plan rank {nd} vs input spatial {spatial}",
                      token="rank")
            return

        for i, (kind, op) in enumerate(ops):
            in_state = {"channels": c, "spatial": spatial,
                        "bound": float(bound)}
            if head_seen is not None and kind not in _HEAD_KINDS + ("identity",):
                self.emit("PV105", "error", i, kind,
                          f"canvas-consuming stage after output head at "
                          f"stage {head_seen} — run() applies heads to the "
                          "result stream, so the head would be silently "
                          "dropped", token="placement")

            if kind in ("conv", "conv3d"):
                l1 = self._check_conv_spec(op, i, kind, "conv")
                self._check_in_channels(op, c, i, kind, "conv")
                spatial = self._conv_out(op, spatial, i, kind, "conv")
                c = op.out_channels
                raw = op.out_bound(bound)
                raw64 = l1 * b64 + op.bias_max
                if half:
                    bound = self._site(i, kind, "conv", raw, raw64)
                    b64 = min(raw64, FP16_MAX)
                else:
                    bound, b64 = raw, raw64
                result_exists = True

            elif kind == "convtranspose3d":
                l1 = self._check_conv_spec(op.spec, i, kind, "convt")
                self._check_in_channels(op.spec, c, i, kind, "convt")
                spatial = tuple(op.out_spatial(spatial))
                c = op.out_channels
                raw = op.out_bound(bound)
                raw64 = l1 * b64 + op.spec.bias_max
                if half:
                    bound = self._site(i, kind, "convt", raw, raw64)
                    b64 = min(raw64, FP16_MAX)
                else:
                    bound, b64 = raw, raw64
                result_exists = True

            elif kind in ("pool", "pool3d"):
                kernel = tuple(op)
                for s, k in zip(spatial, kernel):
                    if s % k:
                        self.emit("PV104", "error", i, kind,
                                  f"pool kernel {kernel} does not divide "
                                  f"spatial {spatial} — the exact-mean "
                                  "reshape requires divisibility",
                                  token="divisibility")
                spatial = tuple(s // k for s, k in zip(spatial, kernel))
                # Mean cannot grow the bound; the store re-quantizes.
                if half:
                    bound = self._site(i, kind, "store", bound, b64)
                    b64 = min(b64, FP16_MAX)
                result_exists = True

            elif kind in ("up", "up3d"):
                spatial = tuple(s * f for s, f in zip(spatial, tuple(op)))
                if half:
                    bound = self._site(i, kind, "store", bound, b64)
                    b64 = min(b64, FP16_MAX)
                result_exists = True

            elif kind == "bnorm":
                self._check_bn_spec(op, i, kind, "bnorm")
                if op.num_features != c:
                    self.emit("PV102", "error", i, kind,
                              f"bnorm over {op.num_features} features but "
                              f"the stream carries {c} channels",
                              token="bnorm")
                raw = op.out_bound(bound)
                raw64 = op.out_bound(b64)
                if half:
                    bound = self._site(i, kind, "store", raw, raw64)
                    b64 = min(raw64, FP16_MAX)
                else:
                    bound, b64 = raw, raw64
                result_exists = True

            elif kind == "res":
                spec1, spec2, s1, s2 = op
                l1a = self._check_conv_spec(spec1, i, kind, "conv1")
                l1b = self._check_conv_spec(spec2, i, kind, "conv2")
                self._check_in_channels(spec1, c, i, kind, "conv1")
                mid_sp = self._conv_out(spec1, spatial, i, kind, "conv1")
                if mid_sp != spatial:
                    self.emit("PV103", "error", i, kind,
                              f"conv1 maps spatial {spatial} -> {mid_sp}; a "
                              "residual block must preserve spatial shape "
                              "for the skip sum", token="conv1",
                              stride=spec1.stride)
                self._check_in_channels(spec2, spec1.out_channels, i, kind,
                                        "conv2")
                out_sp = self._conv_out(spec2, mid_sp, i, kind, "conv2")
                if out_sp != spatial:
                    self.emit("PV103", "error", i, kind,
                              f"conv2 maps spatial {mid_sp} -> {out_sp}; "
                              "must match the block input for the skip sum",
                              token="conv2")
                if spec2.out_channels != c:
                    self.emit("PV103", "error", i, kind,
                              f"conv2 emits {spec2.out_channels} channels "
                              f"but the skip carries {c} — the residual sum "
                              "would broadcast or fail", token="channels")
                b1_raw = spec1.out_bound(bound)
                b1_64 = l1a * b64 + spec1.bias_max
                if half:
                    b1 = self._site(i, kind, "conv1", b1_raw, b1_64)
                    b1_64 = min(b1_64, FP16_MAX)
                    # act1 merged with conv2's entry quantize.
                    self._site(i, kind, "act1", b1 * abs(s1),
                               b1_64 * abs(s1))
                else:
                    b1, b1_64 = b1_raw, b1_64
                b2_raw = spec2.out_bound(b1)
                b2_64 = l1b * b1_64 + spec2.bias_max
                if half:
                    b2 = self._site(i, kind, "conv2", b2_raw, b2_64)
                    b2_64 = min(b2_64, FP16_MAX)
                else:
                    b2, b2_64 = b2_raw, b2_64
                carry = bound + b2
                carry64 = b64 + b2_64
                if half:
                    bound = self._site(i, kind, "store", carry, carry64)
                    b64 = min(carry64, FP16_MAX)
                else:
                    bound, b64 = carry, carry64
                result_exists = True

            elif kind in ("down3d", "upblock3d"):
                c, spatial, bound, b64 = self._walk_block3d(
                    i, kind, op, c, spatial, bound, b64, half)
                result_exists = True

            elif kind in _HEAD_KINDS:
                if not result_exists:
                    self.emit("PV105", "error", i, kind,
                              "output head with no preceding result-"
                              "producing stage", token="placement")
                if head_seen is None:
                    head_seen = i
                if kind == "regout":
                    offset, scale, max_exponent = op
                    bound = abs(offset) + abs(scale) * float(
                        np.exp(min(max_exponent, 700.0)))
                    b64 = bound
                else:
                    bound = b64 = 1.0

            # "identity": state unchanged.
            self.stages.append({
                "index": i, "kind": kind, "in": in_state,
                "out": {"channels": c, "spatial": spatial,
                        "bound": float(bound)},
            })

        self._final = {"channels": c, "spatial": spatial,
                       "bound": float(bound)}

    def _walk_block3d(self, i, kind, op, c, spatial, bound, b64, half):
        """Shape/bound interpretation of a down/up residual block,
        mirroring ``_block3d``'s main+skip structure."""

        main, inner, skip, s1, s2, s3, bn1, bn2, bn3 = op
        transposed = kind == "upblock3d"
        if transposed:
            l1m = self._check_conv_spec(main.spec, i, kind, "main")
            self._check_in_channels(main.spec, c, i, kind, "main")
            out_sp = tuple(main.out_spatial(spatial))
            main_bias = main.spec.bias_max
        else:
            l1m = self._check_conv_spec(main, i, kind, "main")
            self._check_in_channels(main, c, i, kind, "main")
            out_sp = self._conv_out(main, spatial, i, kind, "main")
            main_bias = main.bias_max
        l1i = self._check_conv_spec(inner, i, kind, "inner")
        self._check_in_channels(inner, main.out_channels, i, kind, "inner")
        inner_sp = self._conv_out(inner, out_sp, i, kind, "inner")
        if inner_sp != out_sp:
            self.emit("PV103", "error", i, kind,
                      f"inner conv maps spatial {out_sp} -> {inner_sp}; "
                      "must preserve the block's output shape for the "
                      "main+skip sum", token="inner")
        if transposed:
            l1s = self._check_conv_spec(skip.spec, i, kind, "skip")
            self._check_in_channels(skip.spec, c, i, kind, "skip")
            skip_sp = tuple(skip.out_spatial(spatial))
            skip_bias = skip.spec.bias_max
        else:
            l1s = self._check_conv_spec(skip, i, kind, "skip")
            self._check_in_channels(skip, c, i, kind, "skip")
            skip_sp = self._conv_out(skip, spatial, i, kind, "skip")
            skip_bias = skip.bias_max
        if skip_sp != out_sp:
            self.emit("PV103", "error", i, kind,
                      f"skip path spatial {skip_sp} vs main path {out_sp} — "
                      "the block sum requires equality", token="skip")
        if skip.out_channels != inner.out_channels:
            self.emit("PV103", "error", i, kind,
                      f"skip emits {skip.out_channels} channels vs main "
                      f"path {inner.out_channels}", token="channels")
        for part, bn in (("bn1", bn1), ("bn2", bn2), ("bn3", bn3)):
            if bn is not None:
                self._check_bn_spec(bn, i, kind, part)
        if bn1 is not None and bn1.num_features != main.out_channels:
            self.emit("PV102", "error", i, kind,
                      f"bn1 over {bn1.num_features} features vs main conv's "
                      f"{main.out_channels} channels", token="bn1")
        for part, bn in (("bn2", bn2), ("bn3", bn3)):
            if bn is not None and bn.num_features != inner.out_channels:
                self.emit("PV102", "error", i, kind,
                          f"{part} over {bn.num_features} features vs block "
                          f"output {inner.out_channels} channels", token=part)

        # Bound chain (mirrors _block3d in half mode).
        b1_raw = main.out_bound(bound)
        b1_64 = l1m * b64 + main_bias
        if half:
            b1 = self._site(i, kind, "main", b1_raw, b1_64)
            b1_64 = min(b1_64, FP16_MAX)
            if bn1 is None:
                self._site(i, kind, "act1", b1 * abs(s1), b1_64 * abs(s1))
                b_mid, b_mid64 = b1, b1_64
            else:
                bn_b, bn_b64 = bn1.out_bound(b1), bn1.out_bound(b1_64)
                self._site(i, kind, "bn1", bn_b, bn_b64)
                b_mid = min(bn_b, FP16_MAX)
                b_mid64 = min(bn_b64, FP16_MAX)
        else:
            b_mid = b1_raw if bn1 is None else bn1.out_bound(b1_raw)
            b_mid64 = b1_64 if bn1 is None else bn1.out_bound(b1_64)
        b2_raw = inner.out_bound(b_mid)
        b2_64 = l1i * b_mid64 + inner.bias_max
        if half:
            b2 = self._site(i, kind, "inner", b2_raw, b2_64)
            b2_64 = min(b2_64, FP16_MAX)
        else:
            b2 = b2_raw
        b_l2 = b2 if bn2 is None else bn2.out_bound(b2)
        b_l2_64 = b2_64 if bn2 is None else bn2.out_bound(b2_64)
        b3_raw = skip.out_bound(bound)
        b3_64 = l1s * b64 + skip_bias
        if half:
            b3 = self._site(i, kind, "skip", b3_raw, b3_64)
            b3_64 = min(b3_64, FP16_MAX)
        else:
            b3 = b3_raw
        b_l3 = b3 if bn3 is None else bn3.out_bound(b3)
        b_l3_64 = b3_64 if bn3 is None else bn3.out_bound(b3_64)
        carry = b_l2 + b_l3
        carry64 = b_l2_64 + b_l3_64
        if half:
            out_bound = self._site(i, kind, "store", carry, carry64)
            out_b64 = min(carry64, FP16_MAX)
        else:
            out_bound, out_b64 = carry, carry64
        return inner.out_channels, out_sp, out_bound, out_b64

    # -- ulp-tier bound chain -------------------------------------------
    def _check_ulp_sites(self) -> list[dict]:
        """Verify the plan's relaxed-numerics ledger against its tier.

        A ``precision="bit"`` plan must carry an empty ``ulp_sites`` list —
        any entry means a probe-rejected formulation ran without the opt-in
        (PV050, error).  Under ``precision="ulp"`` every recorded site must
        stay within :data:`ULP_TIER_MAX_ULP` grid steps at stage scale —
        the cap is part of the tier's contract, so an over-cap record means
        the compile-time gate is broken (PV051, error).  Well-bounded sites
        are surfaced as PV052 info diagnostics so the relaxations stay
        explainable, mirroring the PV040 bn-fold decision records.
        """

        sites = [dict(s) for s in getattr(self.plan, "ulp_sites", [])]
        precision = getattr(self.plan, "precision", "bit")
        if precision == "bit" and sites:
            self.emit("PV050", "error", None, None,
                      f"bit-precision plan carries {len(sites)} ulp site(s) "
                      "— relaxed-numerics formulations may only engage "
                      "under the opt-in ulp tier", token="ulp_sites",
                      sites=sites)
        for s in sites:
            u = int(s.get("max_ulp", 0))
            where = s.get("placement") or s.get("key") or "?"
            if u > ULP_TIER_MAX_ULP:
                self.emit("PV051", "error", s.get("stage"), s.get("site"),
                          f"ulp site {s.get('site')} at {where}: recorded "
                          f"bound {u} grid step(s) exceeds the tier cap "
                          f"{ULP_TIER_MAX_ULP} — the compile-time gate "
                          "failed to refuse this formulation",
                          token="ulp_bound", site=dict(s))
            elif precision == "ulp":
                self.emit("PV052", "info", s.get("stage"), s.get("site"),
                          f"ulp site {s.get('site')} at {where}: measured "
                          f"max {u} grid step(s) at stage scale (cap "
                          f"{ULP_TIER_MAX_ULP})", token="ulp_site",
                          site=dict(s))
        return sites

    # -- record ---------------------------------------------------------
    def record(self) -> dict:
        ulp_sites = self._check_ulp_sites()
        for entry in getattr(self.plan, "bn_folds", []):
            self.diags.append(Diagnostic(
                pass_name="plan", rule="PV040", severity="info",
                location=self._scope(entry.get("stage"), entry.get("site")),
                scope=self._scope(entry.get("stage"), entry.get("site")),
                message=(f"bn-fold {'applied' if entry.get('folded') else 'rejected'}"
                         f": {entry.get('reason')}"),
                token="bn_fold", details=dict(entry),
            ))
        ok = not any(d.severity == "error" for d in self.diags)
        return {
            "label": self.label,
            "ok": ok,
            "out": getattr(self, "_final", None),
            "stages": self.stages,
            "clip_sites": self.clip_sites,
            "ulp": {"precision": getattr(self.plan, "precision", "bit"),
                    "sites": ulp_sites,
                    "max_ulp": max((int(s.get("max_ulp", 0))
                                    for s in ulp_sites), default=0),
                    "cap": ULP_TIER_MAX_ULP},
            "bn_folds": list(getattr(self.plan, "bn_folds", [])),
            "diagnostics": [d.as_dict() for d in self.diags],
            "diagnostic_objects": self.diags,
        }
