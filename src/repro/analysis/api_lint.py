"""Public-API audit: ``__all__`` consistency and cross-module privacy.

A purely syntactic pass over the package's module sources (no imports —
the CI job must be able to audit modules whose runtime deps are gated):

``AP001`` (warning)
    A module imports an underscore-private name from *another* repro
    module (``from .fast_plan import _FP16_MAX``).  Private names are a
    module-local contract; cross-module use should be promoted to a
    public export or the dependency inverted.  Existing offenders live in
    the baseline and ratchet down.
``AP002`` (error)
    A name listed in a module's ``__all__`` is not bound anywhere in that
    module (the drift :mod:`repro.core.fast_plan` had with
    ``entry_kinds_ok``): ``from module import name`` would raise.
``AP003`` (info)
    A public (non-underscore) top-level function/class is missing from a
    module's declared ``__all__`` — intentional for internal helpers, so
    informational only.

The runtime complement (``tests/test_public_api.py``) re-checks AP002
against the *imported* modules and asserts the exports are documented.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["audit_package", "audit_source"]


def audit_package(src_root: str | Path,
                  package: str = "repro") -> list[Diagnostic]:
    """Audit every module under ``src_root/package`` (recursively)."""

    src_root = Path(src_root)
    out: list[Diagnostic] = []
    for path in sorted((src_root / package).rglob("*.py")):
        label = str(path.relative_to(src_root))
        submodules: set[str] = set()
        if path.name == "__init__.py":
            # A package __init__ may legitimately list submodules in
            # __all__: `from pkg import sub` binds them implicitly.
            submodules = {
                p.stem for p in path.parent.iterdir()
                if p.suffix == ".py" and p.name != "__init__.py"
            } | {
                p.name for p in path.parent.iterdir()
                if (p / "__init__.py").exists()
            }
        out.extend(audit_source(path.read_text(), label,
                                submodules=submodules))
    return out


def audit_source(source: str, path: str,
                 submodules: set[str] = frozenset()) -> list[Diagnostic]:
    """Audit one module's source text (``path`` labels it;
    ``submodules`` are implicitly importable names for a package
    ``__init__``)."""

    tree = ast.parse(source, filename=path)
    diags: list[Diagnostic] = []
    bound = _module_bindings(tree) | set(submodules)
    declared = _declared_all(tree)

    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom) and node.level == 0
                and node.module is not None
                and not node.module.startswith("repro")):
            continue
        if isinstance(node, ast.ImportFrom) and (
                node.level > 0 or (node.module or "").startswith("repro")):
            for alias in node.names:
                if alias.name.startswith("_") and alias.name != "__version__":
                    diags.append(Diagnostic(
                        pass_name="api", rule="AP001", severity="warning",
                        location=f"{path}:{node.lineno}",
                        scope=f"{path}:<module>",
                        message=(f"cross-module import of private name "
                                 f"{alias.name!r} from "
                                 f"{node.module or '.' * node.level} — "
                                 "promote it to a public export or invert "
                                 "the dependency"),
                        token=alias.name,
                    ))

    if declared is not None:
        for name in declared:
            if name not in bound:
                diags.append(Diagnostic(
                    pass_name="api", rule="AP002", severity="error",
                    location=path, scope=f"{path}:<module>",
                    message=(f"__all__ lists {name!r} but the module never "
                             "binds it — `from module import` would raise"),
                    token=name,
                ))
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if not node.name.startswith("_") and node.name not in declared:
                    diags.append(Diagnostic(
                        pass_name="api", rule="AP003", severity="info",
                        location=f"{path}:{node.lineno}",
                        scope=f"{path}:<module>",
                        message=(f"public top-level {node.name!r} is not in "
                                 "__all__ (fine if internal; underscore it "
                                 "to silence)"),
                        token=node.name,
                    ))
    return diags


def _declared_all(tree: ast.Module) -> list[str] | None:
    """The module's literal ``__all__`` list, or None if not declared."""

    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return [
                            elt.value for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
    return None


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names a module binds at import time (top level, including inside
    ``if``/``try``/``with`` blocks but not inside functions/classes)."""

    bound: set[str] = set()

    def visit(stmts):
        for node in stmts:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    _bind_target(target, bound)
            elif isinstance(node, ast.AnnAssign):
                _bind_target(node.target, bound)
            elif isinstance(node, ast.AugAssign):
                _bind_target(node.target, bound)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)
            elif isinstance(node, ast.With):
                visit(node.body)
            elif isinstance(node, (ast.For, ast.While)):
                if isinstance(node, ast.For):
                    _bind_target(node.target, bound)
                visit(node.body)
                visit(node.orelse)

    def _bind_target(target, bound):
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                _bind_target(elt, bound)

    visit(tree.body)
    return bound
