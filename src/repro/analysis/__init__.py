"""Static analysis for the compiled fast path and the serving stack.

Three passes plus an API audit, one diagnostic currency, one CI ratchet:

* :mod:`~repro.analysis.plan_verifier` — abstract interpretation over
  :class:`~repro.core.fast_plan.CompiledStagePlan` stages (shape/dtype/
  layout integrity, epilogue legality, independent clip-elision
  re-derivation); results attach to the plan as ``plan.verification``.
* :mod:`~repro.analysis.hotpath_lint` — AST lint flagging per-iteration
  allocations inside the hot loops of ``core/fast_*.py`` / ``serve/*.py``.
* :mod:`~repro.analysis.concurrency_lint` — slab-ring lease/release
  discipline and no-blocking-calls-in-async checks over the serving stack.
* :mod:`~repro.analysis.api_lint` — ``__all__`` consistency and
  cross-module privacy audit.

Entry points: ``repro-tpc analyze`` (human text / ``--json``) and
``tools/analyze.py`` (CI gate against ``tools/analysis_baseline.json``).
See ``docs/ARCHITECTURE.md`` § Static analysis for the baseline-ratchet
workflow.
"""

from .diagnostics import (
    AnalysisReport,
    Diagnostic,
    GATING_SEVERITIES,
    load_baseline,
    write_baseline,
)
from .plan_verifier import verify_plan
from .runner import SMOKE_WEDGE, analyze_model_plans, run_analysis

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "GATING_SEVERITIES",
    "SMOKE_WEDGE",
    "analyze_model_plans",
    "load_baseline",
    "run_analysis",
    "verify_plan",
    "write_baseline",
]
