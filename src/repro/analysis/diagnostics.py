"""Diagnostic / report / baseline model shared by every analysis pass.

All three static passes (plan verifier, hot-path allocation lint,
concurrency lint) and the public-API audit emit the same currency: a
:class:`Diagnostic` with a *pass*, a *rule* id, a *severity*, a *scope*
(what part of the code or plan it is about) and a line-number-stable
*fingerprint*.  :class:`AnalysisReport` aggregates them, renders the human
text / machine JSON forms ``repro-tpc analyze`` prints, and diffs against a
checked-in :func:`load_baseline` so CI can ratchet: existing findings are
grandfathered, new ones fail the build, and fixing one shrinks the
baseline (``tools/analyze.py --write-baseline``).

Severity semantics
------------------
``error``
    A legality violation — a corrupted plan, an unbalanced slab lease.
``warning``
    A finding worth ratcheting down — a hot-loop allocation, a private
    cross-module import.  Gates through the baseline like ``error``.
``info``
    Explanatory record only (BN-fold decisions, clip-elision intervals).
    Never gates, never enters the baseline.

Fingerprints deliberately exclude line numbers: they hash the pass, rule,
lexical scope (``module:function`` or ``plan[stage]``), the offending
source token and an occurrence index, so reformatting or adding unrelated
lines does not churn the baseline.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "GATING_SEVERITIES",
    "load_baseline",
    "write_baseline",
]

#: Severities that participate in baseline gating (``info`` never gates).
GATING_SEVERITIES = frozenset({"warning", "error"})

_SEVERITIES = ("info", "warning", "error")


@dataclasses.dataclass
class Diagnostic:
    """One finding from one analysis pass.

    Parameters
    ----------
    pass_name:
        Which pass produced it (``plan`` / ``hotpath`` / ``concurrency`` /
        ``api``).
    rule:
        Stable rule id (``PV102``, ``HP001``, ``CL002``, ``AP001``).
    severity:
        ``info`` | ``warning`` | ``error`` — see the module docstring.
    location:
        Human-facing anchor, e.g. ``src/repro/core/fast_plan.py:1432`` or
        ``bcae.encoder[stage 3:conv3d]``.  *Not* part of the fingerprint.
    scope:
        Lexical scope the finding belongs to — ``module:qualname`` for AST
        lints, ``label[stage i:kind]`` for plan findings.  Fingerprint key.
    message:
        One-sentence statement of the finding.
    token:
        Short source/operand token identifying the finding inside its
        scope (``np.empty``, ``try_lease``, a spec field name).
    occurrence:
        Index among identical ``(rule, scope, token)`` findings, so two
        ``np.empty`` calls in one loop get distinct fingerprints.
    details:
        Free-form structured payload for the JSON report.
    """

    pass_name: str
    rule: str
    severity: str
    location: str
    scope: str
    message: str
    token: str = ""
    occurrence: int = 0
    details: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Line-number-stable identity used for baseline gating."""

        return (f"{self.pass_name}:{self.rule}:{self.scope}:"
                f"{self.token}#{self.occurrence}")

    def as_dict(self) -> dict:
        """JSON-ready form (fingerprint included)."""

        d = dataclasses.asdict(self)
        d["fingerprint"] = self.fingerprint
        return d

    def format(self) -> str:
        """One human-readable report line."""

        return (f"{self.severity.upper():7s} {self.rule} [{self.pass_name}] "
                f"{self.location}: {self.message}")


def assign_occurrences(diags: list[Diagnostic]) -> list[Diagnostic]:
    """Number identical ``(rule, scope, token)`` findings in emission order.

    Passes emit diagnostics with ``occurrence=0``; this post-pass makes
    fingerprints unique without the passes having to coordinate.
    """

    seen: dict[tuple[str, str, str], int] = {}
    for d in diags:
        key = (d.rule, d.scope, d.token)
        d.occurrence = seen.get(key, 0)
        seen[key] = d.occurrence + 1
    return diags


class AnalysisReport:
    """Aggregated findings of one analyzer run, with rendering and gating.

    >>> report = AnalysisReport([])
    >>> report.counts()
    {'info': 0, 'warning': 0, 'error': 0}
    >>> report.new_findings(set())
    []
    """

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = assign_occurrences(list(diagnostics))

    # -- queries --------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Finding counts per severity."""

        out = {s: 0 for s in _SEVERITIES}
        for d in self.diagnostics:
            out[d.severity] += 1
        return out

    def gating(self) -> list[Diagnostic]:
        """Findings that participate in baseline gating (warning+error)."""

        return [d for d in self.diagnostics if d.severity in GATING_SEVERITIES]

    def new_findings(self, baseline: set[str]) -> list[Diagnostic]:
        """Gating findings whose fingerprint is not grandfathered."""

        return [d for d in self.gating() if d.fingerprint not in baseline]

    def fixed_fingerprints(self, baseline: set[str]) -> list[str]:
        """Baseline entries no longer reported — candidates for ratcheting."""

        live = {d.fingerprint for d in self.gating()}
        return sorted(baseline - live)

    # -- rendering ------------------------------------------------------
    def to_json(self, baseline: set[str] | None = None) -> str:
        """Machine-readable report (one JSON document)."""

        payload: dict = {
            "counts": self.counts(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
        if baseline is not None:
            payload["baseline"] = {
                "size": len(baseline),
                "new": [d.fingerprint for d in self.new_findings(baseline)],
                "fixed": self.fixed_fingerprints(baseline),
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def format_text(self, baseline: set[str] | None = None,
                    verbose: bool = False) -> str:
        """Human-readable report.

        Without a baseline every finding prints.  With one, only *new*
        gating findings print (plus ``info`` lines under ``verbose``) —
        the shape CI consumes.
        """

        lines: list[str] = []
        if baseline is None:
            shown = [d for d in self.diagnostics
                     if verbose or d.severity != "info"]
        else:
            shown = self.new_findings(baseline)
            if verbose:
                shown = shown + [d for d in self.diagnostics
                                 if d.severity == "info"]
        lines.extend(d.format() for d in shown)
        counts = self.counts()
        summary = (f"{counts['error']} error(s), {counts['warning']} "
                   f"warning(s), {counts['info']} info")
        if baseline is not None:
            new = self.new_findings(baseline)
            fixed = self.fixed_fingerprints(baseline)
            summary += (f"; baseline {len(baseline)} entries, "
                        f"{len(new)} new, {len(fixed)} fixed")
        lines.append(summary)
        return "\n".join(lines)


def load_baseline(path: str | Path) -> set[str]:
    """Grandfathered fingerprints from a baseline JSON file.

    A missing file is an empty baseline (useful for bootstrap and for the
    CI fixture that must fail on its injected finding).
    """

    path = Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return set(data.get("fingerprints", []))


def write_baseline(path: str | Path, report: AnalysisReport) -> None:
    """Write the report's gating fingerprints as the new baseline."""

    payload = {
        "version": 1,
        "comment": "Grandfathered static-analysis findings. Ratchet only "
                   "downward: remove entries as they are fixed; never add "
                   "by hand (run tools/analyze.py --write-baseline).",
        "fingerprints": sorted({d.fingerprint for d in report.gating()}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
