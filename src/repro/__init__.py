"""Reproduction of *Fast 2D Bicephalous Convolutional Autoencoder for
Compressing 3D Time Projection Chamber Data* (Huang, Ren, Yoo, Huang —
SC-W 2023, DOI 10.1145/3624062.3625127).

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate (autograd,
  2D/3D convolutions, AdamW, AMP emulation);
* :mod:`repro.tpc` — synthetic sPHENIX TPC data (HIJING/Geant4 substitute);
* :mod:`repro.core` — BCAE / BCAE++ / BCAE-HT / BCAE-2D and the compressor;
* :mod:`repro.train` — the paper's training procedure;
* :mod:`repro.baselines` — SZ/ZFP/MGARD-like learning-free codecs;
* :mod:`repro.metrics` — MAE / PSNR / precision / recall;
* :mod:`repro.perf` — per-layer FLOP traces, A6000 roofline model, timing;
* :mod:`repro.serve` — micro-batching streaming compression service.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "tpc",
    "core",
    "train",
    "baselines",
    "metrics",
    "perf",
    "serve",
    "io",
]
