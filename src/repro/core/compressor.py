"""End-to-end compression interface around a trained BCAE (paper §3.1).

The deployable artifact is the *encoder* running in the counting house: raw
zero-suppressed wedges come in, fp16 codes go out to permanent storage.  The
decoders run offline at analysis time.  The paper computes the compression
ratio treating both the input and the code as 16-bit floats:

    ratio = (wedge voxels) / (code elements) = 764928 / 24576 = 31.125

for BCAE++/HT/2D on the paper grid, and 27.041 for the original BCAE.

Both directions of the loop expose a reference path and a compiled hot
path, bit-identical to each other:

``compress`` / ``decompress``
    the reference paths through the autograd module graph — simple,
    allocation-heavy, one batch at a time;
``compress_into`` / ``compress_stream``
    the serving hot path: persistent workspaces (no per-batch ``np.pad`` /
    im2col / fp16-cast reallocation) via the compiled encoders of
    :mod:`~repro.core.fast_encode` — :class:`FastEncoder2D` for the 2D
    family, :class:`FastEncoder3D` for every 3D variant including the
    original BCAE (eval-mode BatchNorm compiles to folded convolutions or
    exact affine stages) — with a reusable-buffer fallback through the
    module graph only for genuinely unknown stage stacks (custom modules,
    or BatchNorm still in training mode).  Output bytes are identical to
    ``compress`` for the same input;
``decompress_into`` / ``decompress_stream``
    the analysis hot path: both decoder heads and the masked combine
    compiled by :class:`~repro.core.fast_decode.FastDecoder2D` /
    :class:`~repro.core.fast_decode.FastDecoder3D` (same stage-plan
    engine, same bit-identity contract), with the same
    unknown-stack-only fallback.  Both fast paths re-fingerprint their
    weights per call and recompile after any parameter update.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

import numpy as np

from .. import nn
from ..nn import Tensor
from ..tpc.transforms import (
    log_transform,
    inverse_log_transform,
    pad_horizontal,
    padded_length,
    unpad_horizontal,
)
from .fast_decode import make_fast_decoder, supports_fast_decode
from .fast_encode import Workspace, make_fast_encoder, supports_fast_encode
from .fast_plan import PRECISIONS
from .heads import BicephalousAutoencoder

__all__ = ["CompressedWedges", "BCAECompressor"]


@dataclasses.dataclass
class CompressedWedges:
    """A batch of compressed wedges.

    Attributes
    ----------
    payload:
        The fp16 code bytes — what would be written to storage.
    code_shape:
        Per-wedge code shape (without the batch axis).
    n_wedges:
        Number of wedges in the payload.
    original_horizontal:
        Unpadded horizontal size, needed to clip the reconstruction.
    half:
        Precision mode of the compressor that produced the payload
        (``None`` for payloads from before this field existed).  Decoding
        with a compressor in the other mode would silently produce wrong
        reconstructions, so :meth:`BCAECompressor.decompress` validates it.
    code_dtype:
        dtype string of the stored codes (``"<f2"`` — kept explicit so
        archives are self-describing and validated on load).
    codec_ids:
        Per-wedge codec ids (see :mod:`repro.rate.registry`) when the
        batch was produced by the adaptive tier; ``None`` (default) means
        the legacy fixed-size all-BCAE layout.
    record_sizes:
        Per-wedge record sizes in bytes (paired with ``codec_ids``): the
        payload is the concatenation of ``n_wedges`` variable-size
        records.  ``None`` for the legacy layout.
    decisions:
        Per-wedge :class:`repro.rate.RateDecision` ledger (``None`` when
        absent).  Typed loosely here so :mod:`repro.core` never imports
        the rate tier.
    """

    payload: bytes
    code_shape: tuple[int, ...]
    n_wedges: int
    original_horizontal: int
    half: bool | None = None
    code_dtype: str = "<f2"
    codec_ids: tuple[int, ...] | None = None
    record_sizes: tuple[int, ...] | None = None
    decisions: tuple | None = None

    def __post_init__(self) -> None:
        if (self.codec_ids is None) != (self.record_sizes is None):
            raise ValueError(
                "codec_ids and record_sizes must be given together "
                "(both None for the fixed-size BCAE layout)"
            )
        if self.codec_ids is not None:
            if len(self.codec_ids) != self.n_wedges:
                raise ValueError(
                    f"codec_ids has {len(self.codec_ids)} entries for "
                    f"{self.n_wedges} wedges"
                )
            if len(self.record_sizes) != self.n_wedges:
                raise ValueError(
                    f"record_sizes has {len(self.record_sizes)} entries "
                    f"for {self.n_wedges} wedges"
                )
            if (self.decisions is not None
                    and len(self.decisions) != self.n_wedges):
                raise ValueError(
                    f"decisions has {len(self.decisions)} entries for "
                    f"{self.n_wedges} wedges"
                )

    @property
    def nbytes(self) -> int:
        """Stored payload size in bytes."""

        return len(self.payload)

    @property
    def mixed(self) -> bool:
        """True when the payload holds records from more than one codec
        (variable-size layout; ``codes_view`` refuses such payloads)."""

        return self.codec_ids is not None and any(
            c != 0 for c in self.codec_ids
        )

    def codes(self) -> np.ndarray:
        """The payload as a *writable* fp16 code array.

        Returns a fresh copy: callers may scale, mask or otherwise edit
        codes (e.g. latent-space studies) without tripping over the
        read-only buffer backing ``payload``.  Use :meth:`codes_view` for
        zero-copy read access.
        """

        return self.codes_view().copy()

    def codes_view(self) -> np.ndarray:
        """Zero-copy *read-only* view of the payload as fp16 codes.

        Only meaningful while every record is a BCAE code (the fixed-size
        layout, or an adaptive batch that routed everything to the BCAE);
        a genuinely mixed payload has no single code grid to view and
        raises — decode it through :class:`repro.rate.AdaptiveCompressor`.
        """

        if self.mixed:
            raise ValueError(
                "payload mixes per-wedge codecs "
                f"(ids {sorted(set(self.codec_ids))}) — there is no "
                "uniform code view; decompress it through "
                "repro.rate.AdaptiveCompressor instead"
            )
        count = self.n_wedges * int(np.prod(self.code_shape))
        # count= tolerates payload buffers larger than the codes (e.g. a
        # caller-owned ring buffer passed to compress_into(out=...)).
        arr = np.frombuffer(self.payload, dtype=np.dtype(self.code_dtype), count=count)
        arr = arr.reshape((self.n_wedges,) + tuple(self.code_shape))
        arr.flags.writeable = False  # frombuffer of a bytearray is writable
        return arr


class BCAECompressor:
    """Compress/decompress raw ADC wedges with a trained bicephalous model.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder` (any variant).
    half:
        Run inference in the paper's half-precision mode (default True —
        "the most likely computation model for future deployment", §3.3).
    precision:
        Compiled-plan numerics tier: ``"bit"`` (default — fast paths are
        probe-proven bit-identical to the module graph) or the opt-in
        ``"ulp"`` serving tier (bounded-ulp relaxations kept for speed;
        see :class:`~repro.core.fast_plan.CompiledStagePlan`).  The
        reference :meth:`compress`/:meth:`decompress` module paths are
        unaffected — only the compiled ``*_into`` hot paths change.
    panel_threads:
        Intra-plan panel executor width for the compiled fast paths
        (None → the ``REPRO_PANEL_THREADS`` environment knob, default 1).
        Payload/reconstruction bits are identical at every width.
    """

    def __init__(self, model: BicephalousAutoencoder, half: bool = True,
                 precision: str = "bit",
                 panel_threads: int | None = None) -> None:
        self.model = model
        self.half = bool(half)
        if precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        self.precision = precision
        self.panel_threads = panel_threads
        self._fast = None
        self._fast_signature: tuple = ()
        self._fast_dec = None
        self._fast_dec_signature: tuple = ()
        self._scratch = Workspace()

    # ------------------------------------------------------------------
    def _horizontal_target(self, horizontal: int) -> int:
        """Padded horizontal length the encoder consumes."""

        if hasattr(self.model.encoder, "spatial"):
            # 3D models carry their exact input spatial shape.
            return int(self.model.encoder.spatial[-1])
        # 2D models only need divisibility by 2^d.
        return padded_length(horizontal, 2 ** self.model.encoder.d)

    def _prepare(self, wedges: np.ndarray) -> tuple[np.ndarray, int]:
        """Raw ADC (B, R, A, H) → padded log-transformed network input."""

        if wedges.ndim == 3:
            wedges = wedges[None]
        horizontal = wedges.shape[-1]
        x = log_transform(wedges)
        target = self._horizontal_target(horizontal)
        if target != horizontal:
            x = pad_horizontal(x, target)
        return x, horizontal

    # ------------------------------------------------------------------
    def compress(self, wedges: np.ndarray) -> CompressedWedges:
        """Compress raw ADC wedges ``(B, R, A, H)`` (or a single wedge).

        Returns the fp16 code payload — the storage unit of the paper.
        This is the reference path; :meth:`compress_into` produces identical
        bytes without the per-call allocations.
        """

        x, horizontal = self._prepare(wedges)
        with nn.no_grad(), nn.amp.autocast(self.half):
            code = self.model.encode(Tensor(x))
        code16 = code.data.astype(np.float16)
        return CompressedWedges(
            payload=code16.tobytes(),
            code_shape=code16.shape[1:],
            n_wedges=code16.shape[0],
            original_horizontal=horizontal,
            half=self.half,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _state_signature(*modules) -> tuple:
        """Cheap content fingerprint of module parameters *and* buffers.

        Two float64 reductions per array (~0.1 ms for paper-sized
        encoders) — any realistic state update (optimizer step, checkpoint
        load, manual edit, BatchNorm running-statistics refresh) perturbs
        them, so a stale compiled fast path is detected and rebuilt instead
        of silently serving old weights.  Buffers matter since the original
        BCAE compiles: its folded/affine BatchNorm stages snapshot
        ``running_mean``/``running_var``.
        """

        sig = []
        for module in modules:
            for p in module.parameters():
                a = p.data
                sig.append((
                    a.shape,
                    float(a.sum(dtype=np.float64)),
                    float(np.abs(a).sum(dtype=np.float64)),
                ))
            for _name, b in module.named_buffers():
                a = np.asarray(b)
                sig.append((
                    a.shape,
                    float(a.sum(dtype=np.float64)),
                    float(np.abs(a).sum(dtype=np.float64)),
                ))
        return tuple(sig)

    def _weights_signature(self) -> tuple:
        """Encoder state fingerprint (see :meth:`_state_signature`)."""

        return self._state_signature(self.model.encoder)

    def _fast_encoder(self):
        # Support is re-checked per call (an isinstance scan, trivial next
        # to the signature reductions below): eval()/train() flips move
        # BatchNorm models on and off the compiled path.
        if not supports_fast_encode(self.model):
            return None
        signature = self._weights_signature()
        if self._fast is None or signature != self._fast_signature:
            self._fast = make_fast_encoder(self.model, half=self.half,
                                           precision=self.precision,
                                           panel_threads=self.panel_threads)
            self._fast_signature = signature
        return self._fast

    def _log_into(self, wedges: np.ndarray) -> np.ndarray:
        """``log_transform`` into a persistent scratch buffer.

        Replicates ``log2(adc.astype(float32) + 1)`` cast-for-cast so the
        values match the reference path for any input dtype.
        """

        buf = self._scratch.get("log", wedges.shape)
        np.copyto(buf, wedges, casting="unsafe")  # the astype(float32)
        buf += 1.0
        np.log2(buf, out=buf)
        return buf

    def compress_into(self, wedges: np.ndarray, out: bytearray | None = None) -> CompressedWedges:
        """Compress through persistent workspaces — the serving hot path.

        Byte-identical to :meth:`compress`; no im2col / padding / fp16-cast
        reallocation on repeated same-shape calls.  ``out``, when given,
        must be a writable buffer of at least the payload size; the payload
        then aliases it (zero extra copy for callers that own ring buffers).

        One compressor instance's workspaces are not thread-safe — use one
        instance per worker (as :mod:`repro.serve` does).
        """

        if wedges.ndim == 3:
            wedges = wedges[None]
        horizontal = wedges.shape[-1]
        fast = self._fast_encoder()
        if fast is not None:
            x = self._log_into(wedges)
            code16 = fast.encode(x, horizontal_target=self._horizontal_target(horizontal))
        else:
            # Module-graph fallback (genuinely unknown stage stacks, or
            # training-mode BatchNorm — every zoo model in eval mode
            # compiles): still avoids the per-call log/pad allocations of
            # the reference path.
            x = self._log_into(wedges)
            target = self._horizontal_target(horizontal)
            if target != horizontal:
                xp = self._scratch.get("pad", x.shape[:-1] + (target,))
                xp[..., horizontal:] = 0
                np.copyto(xp[..., :horizontal], x)
                x = xp
            with nn.no_grad(), nn.amp.autocast(self.half):
                code = self.model.encode(Tensor(x))
            code16 = self._scratch.get("code16", code.data.shape, np.float16)
            np.copyto(code16, code.data, casting="unsafe")

        if out is None:
            payload: bytes | memoryview = code16.tobytes()
        else:
            view = np.frombuffer(out, dtype=np.float16, count=code16.size)
            np.copyto(view.reshape(code16.shape), code16)
            # Size the payload exactly (out may be a larger ring buffer);
            # it still aliases the caller's memory — no extra copy.
            payload = memoryview(out)[: code16.nbytes]
        return CompressedWedges(
            payload=payload,
            code_shape=code16.shape[1:],
            n_wedges=code16.shape[0],
            original_horizontal=horizontal,
            half=self.half,
        )

    def compress_stream(
        self, wedges: Iterable[np.ndarray], batch_size: int = 8
    ) -> Iterator[CompressedWedges]:
        """Compress a stream of single wedges ``(R, A, H)`` in micro-batches.

        Chunks the iterable into batches of ``batch_size`` (the tail batch
        may be smaller), stacking into a persistent staging buffer; each
        chunk is compressed with :meth:`compress_into`.  Wedge order is
        preserved.
        """

        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        staged: np.ndarray | None = None
        fill = 0
        for wedge in wedges:
            wedge = np.asarray(wedge)
            if wedge.ndim != 3:
                raise ValueError(f"expected single wedges (R, A, H), got {wedge.shape}")
            if staged is None or staged.shape[1:] != wedge.shape or staged.dtype != wedge.dtype:
                if fill:
                    yield self.compress_into(staged[:fill])
                    fill = 0
                staged = self._scratch.get(
                    ("stage", wedge.dtype.str), (batch_size,) + wedge.shape, wedge.dtype
                )
            staged[fill] = wedge
            fill += 1
            if fill == batch_size:
                yield self.compress_into(staged)
                fill = 0
        if fill:
            yield self.compress_into(staged[:fill])

    # ------------------------------------------------------------------
    def _check_compressed(self, compressed: CompressedWedges) -> None:
        """Validate payload metadata against this compressor.

        A payload produced in the other precision mode decodes *silently
        wrong* (the codes are valid fp16 either way); the recorded ``half``
        flag turns that into a loud error.  Legacy payloads (``half is
        None``) are accepted unchecked.
        """

        if compressed.half is not None and bool(compressed.half) != self.half:
            raise ValueError(
                f"payload was compressed in "
                f"{'half' if compressed.half else 'full'} precision but this "
                f"compressor decodes in {'half' if self.half else 'full'}; "
                "rebuild the compressor with the matching half= flag"
            )
        if np.dtype(compressed.code_dtype) != np.float16:
            raise ValueError(
                f"unsupported code dtype {compressed.code_dtype!r}; "
                "BCAE payloads store fp16 codes"
            )

    def decompress(self, compressed: CompressedWedges) -> np.ndarray:
        """Decompress codes to log-ADC reconstructions ``(B, R, A, H)``.

        The horizontal padding is clipped (paper §2.3: metrics are computed
        on the unpadded region only).  This is the reference path;
        :meth:`decompress_into` produces bit-identical values without the
        per-call allocations.
        """

        self._check_compressed(compressed)
        codes = compressed.codes_view().astype(np.float32)
        with nn.no_grad(), nn.amp.autocast(self.half):
            seg, reg = self.model.decode(Tensor(codes))
        recon = reg.data * (seg.data > self.model.threshold)
        return unpad_horizontal(recon, compressed.original_horizontal)

    def decompress_adc(self, compressed: CompressedWedges) -> np.ndarray:
        """Decompress all the way back to integer ADC counts."""

        return inverse_log_transform(self.decompress(compressed))

    # ------------------------------------------------------------------
    def _decoder_signature(self) -> tuple:
        """Content fingerprint of both decoder heads plus the threshold.

        Same two-reduction scheme as :meth:`_state_signature` (parameters
        *and* buffers — the compiled BatchNorm stages snapshot running
        statistics); the threshold is included because the compiled combine
        snapshots it.
        """

        return (("threshold", float(self.model.threshold)),) + \
            self._state_signature(self.model.seg_decoder, self.model.reg_decoder)

    def _fast_decoder(self):
        # Re-checked per call, like the encoder side: eval()/train() flips
        # move BatchNorm models on and off the compiled path.
        if not supports_fast_decode(self.model):
            return None
        signature = self._decoder_signature()
        if self._fast_dec is None or signature != self._fast_dec_signature:
            self._fast_dec = make_fast_decoder(self.model, half=self.half,
                                               precision=self.precision,
                                               panel_threads=self.panel_threads)
            self._fast_dec_signature = signature
        return self._fast_dec

    def decompress_into(
        self, compressed: CompressedWedges, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Decompress through persistent workspaces — the analysis hot path.

        Bit-identical to :meth:`decompress`; no per-call pad / im2col /
        quantize-cast allocations on repeated same-shape calls.  ``out``,
        when given, must be a writable float32 array of the reconstruction
        shape ``(B, R, A, H_orig)``; the result is copied into it and
        ``out`` returned.  Without ``out`` the returned array is a view of
        a reused workspace buffer — copy it before the next call on this
        compressor.  Falls back to the module graph (fresh allocations,
        same values) for models without a compiled decode path.

        One compressor instance's workspaces are not thread-safe — use one
        instance per worker (as :mod:`repro.serve` does).
        """

        self._check_compressed(compressed)
        fast = self._fast_decoder()
        if fast is None:
            # Module-graph fallback (genuinely unknown stage stacks, or
            # training-mode BatchNorm — every zoo model in eval mode
            # compiles, the original BCAE included).
            recon = self.decompress(compressed)
        else:
            recon = fast.decompress(
                compressed.codes_view(), compressed.original_horizontal
            )
        if out is None:
            return recon
        np.copyto(out, recon)
        return out

    def decompress_stream(
        self, compressed: Iterable[CompressedWedges]
    ) -> Iterator[np.ndarray]:
        """Decompress a stream of payload batches to owned recon arrays.

        Each yielded ``(B, R, A, H)`` array is a fresh copy (safe to
        accumulate), produced through the reused fast-path workspaces.
        """

        for batch in compressed:
            yield np.array(self.decompress_into(batch))

    # ------------------------------------------------------------------
    def roundtrip(self, wedges: np.ndarray) -> tuple[np.ndarray, CompressedWedges]:
        """Compress + decompress; returns (reconstruction, compressed)."""

        compressed = self.compress(wedges)
        return self.decompress(compressed), compressed

    # ------------------------------------------------------------------
    def code_shape_for(self, wedge_spatial: tuple[int, int, int]) -> tuple[int, ...]:
        """Per-wedge code shape for a raw wedge shape — *no model execution*.

        Derived from the encoder's stage arithmetic (divisibility for the 2D
        family, the solved stage plans for the 3D family), so it is cheap
        enough for sizing arithmetic at import time.
        """

        r, a, h = (int(v) for v in wedge_spatial)
        encoder = self.model.encoder
        if hasattr(encoder, "spatial"):
            er, ea, eh = encoder.spatial
            if (r, a) != (er, ea) or h > eh:
                raise ValueError(
                    f"wedge spatial {wedge_spatial} incompatible with "
                    f"encoder input {encoder.spatial}"
                )
            return tuple(encoder.code_shape)
        target = padded_length(h, 2 ** encoder.d)
        return tuple(encoder.code_shape((a, target)))

    def compression_ratio(self, wedge_spatial: tuple[int, int, int]) -> float:
        """Paper §3.1 ratio: input elements / code elements (both fp16).

        For the paper grid this is 31.125 (BCAE++/HT/2D) or 27.041 (BCAE).
        Computed analytically from the encoder geometry — no forward pass.
        """

        n_in = int(np.prod(wedge_spatial))
        n_code = int(np.prod(self.code_shape_for(wedge_spatial)))
        return n_in / n_code
