"""End-to-end compression interface around a trained BCAE (paper §3.1).

The deployable artifact is the *encoder* running in the counting house: raw
zero-suppressed wedges come in, fp16 codes go out to permanent storage.  The
decoders run offline at analysis time.  The paper computes the compression
ratio treating both the input and the code as 16-bit floats:

    ratio = (wedge voxels) / (code elements) = 764928 / 24576 = 31.125

for BCAE++/HT/2D on the paper grid, and 27.041 for the original BCAE.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..nn import Tensor
from ..tpc.transforms import (
    log_transform,
    inverse_log_transform,
    pad_horizontal,
    padded_length,
    unpad_horizontal,
)
from .heads import BicephalousAutoencoder

__all__ = ["CompressedWedges", "BCAECompressor"]


@dataclasses.dataclass
class CompressedWedges:
    """A batch of compressed wedges.

    Attributes
    ----------
    payload:
        The fp16 code bytes — what would be written to storage.
    code_shape:
        Per-wedge code shape (without the batch axis).
    n_wedges:
        Number of wedges in the payload.
    original_horizontal:
        Unpadded horizontal size, needed to clip the reconstruction.
    """

    payload: bytes
    code_shape: tuple[int, ...]
    n_wedges: int
    original_horizontal: int

    @property
    def nbytes(self) -> int:
        """Stored payload size in bytes."""

        return len(self.payload)

    def codes(self) -> np.ndarray:
        """Decode the payload back into an fp16 code array."""

        arr = np.frombuffer(self.payload, dtype=np.float16)
        return arr.reshape((self.n_wedges,) + self.code_shape)


class BCAECompressor:
    """Compress/decompress raw ADC wedges with a trained bicephalous model.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder` (any variant).
    half:
        Run inference in the paper's half-precision mode (default True —
        "the most likely computation model for future deployment", §3.3).
    """

    def __init__(self, model: BicephalousAutoencoder, half: bool = True) -> None:
        self.model = model
        self.half = bool(half)

    # ------------------------------------------------------------------
    def _prepare(self, wedges: np.ndarray) -> tuple[np.ndarray, int]:
        """Raw ADC (B, R, A, H) → padded log-transformed network input."""

        if wedges.ndim == 3:
            wedges = wedges[None]
        horizontal = wedges.shape[-1]
        x = log_transform(wedges)
        if hasattr(self.model.encoder, "spatial"):
            # 3D models carry their exact input spatial shape.
            target = self.model.encoder.spatial[-1]
        else:
            # 2D models only need divisibility by 2^d.
            target = padded_length(horizontal, 2 ** self.model.encoder.d)
        if target != horizontal:
            x = pad_horizontal(x, target)
        return x, horizontal

    # ------------------------------------------------------------------
    def compress(self, wedges: np.ndarray) -> CompressedWedges:
        """Compress raw ADC wedges ``(B, R, A, H)`` (or a single wedge).

        Returns the fp16 code payload — the storage unit of the paper.
        """

        x, horizontal = self._prepare(wedges)
        with nn.no_grad(), nn.amp.autocast(self.half):
            code = self.model.encode(Tensor(x))
        code16 = code.data.astype(np.float16)
        return CompressedWedges(
            payload=code16.tobytes(),
            code_shape=code16.shape[1:],
            n_wedges=code16.shape[0],
            original_horizontal=horizontal,
        )

    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedWedges) -> np.ndarray:
        """Decompress codes to log-ADC reconstructions ``(B, R, A, H)``.

        The horizontal padding is clipped (paper §2.3: metrics are computed
        on the unpadded region only).
        """

        codes = compressed.codes().astype(np.float32)
        with nn.no_grad(), nn.amp.autocast(self.half):
            seg, reg = self.model.decode(Tensor(codes))
        recon = reg.data * (seg.data > self.model.threshold)
        return unpad_horizontal(recon, compressed.original_horizontal)

    def decompress_adc(self, compressed: CompressedWedges) -> np.ndarray:
        """Decompress all the way back to integer ADC counts."""

        return inverse_log_transform(self.decompress(compressed))

    # ------------------------------------------------------------------
    def roundtrip(self, wedges: np.ndarray) -> tuple[np.ndarray, CompressedWedges]:
        """Compress + decompress; returns (reconstruction, compressed)."""

        compressed = self.compress(wedges)
        return self.decompress(compressed), compressed

    # ------------------------------------------------------------------
    def compression_ratio(self, wedge_spatial: tuple[int, int, int]) -> float:
        """Paper §3.1 ratio: input elements / code elements (both fp16).

        For the paper grid this is 31.125 (BCAE++/HT/2D) or 27.041 (BCAE).
        """

        x = np.zeros((1,) + tuple(wedge_spatial), dtype=np.uint16)
        compressed = self.compress(x)
        n_in = int(np.prod(wedge_spatial))
        n_code = int(np.prod(compressed.code_shape))
        return n_in / n_code
