"""BCAE-2D(m, n, d) — the paper's fast 2D model (§2.4).

``m`` encoder blocks (Algorithm 1), ``n`` decoder blocks per head
(Algorithm 2), ``d`` down/up-samplings.  The paper keeps ``d = 3`` so the
code shape ``(32, A/8, H/8)`` matches the 3D variants' 31.125 compression
ratio, and selects ``BCAE-2D(m=4, n=8, d=3)`` as the default after the
Figure 6E/7 grid search.  Both decoders share ``n`` for simplicity (§2.4).
"""

from __future__ import annotations

from .decoder2d import BCAEDecoder2D
from .encoder2d import BCAEEncoder2D
from .heads import BicephalousAutoencoder

__all__ = ["BCAE2D", "build_bcae2d"]


class BCAE2D(BicephalousAutoencoder):
    """The BCAE-2D(m, n, d) model.

    Parameters
    ----------
    m, n, d:
        Encoder blocks, decoder blocks (each head), down/up-samplings.
    in_channels:
        Radial layers treated as image channels (paper: 16).
    width:
        Trunk width (paper: 32).
    threshold:
        Classification threshold ``h`` for the masked combination.
    """

    def __init__(
        self,
        m: int = 4,
        n: int = 8,
        d: int = 3,
        in_channels: int = 16,
        width: int = 32,
        threshold: float = 0.5,
        activation: str = "leaky_relu",
    ) -> None:
        encoder = BCAEEncoder2D(
            m=m, d=d, in_channels=in_channels, width=width,
            code_channels=width, activation=activation,
        )
        seg = BCAEDecoder2D(
            n=n, d=d, out_channels=in_channels, width=width,
            output_activation="sigmoid", activation=activation,
        )
        reg = BCAEDecoder2D(
            n=n, d=d, out_channels=in_channels, width=width,
            output_activation="identity", activation=activation,
        )
        super().__init__(encoder, seg, reg, threshold=threshold, name=f"bcae2d(m={m},n={n},d={d})")
        self.m, self.n, self.d = int(m), int(n), int(d)

    def code_shape(self, spatial: tuple[int, int]) -> tuple[int, int, int]:
        """Code shape for ``(azim, horiz)`` input — paper: (32, 24, 32)."""

        return self.encoder.code_shape(spatial)


def build_bcae2d(m: int = 4, n: int = 8, d: int = 3, **kwargs) -> BCAE2D:
    """Factory mirroring the paper's ``BCAE-2D(m, n, d)`` notation."""

    return BCAE2D(m=m, n=n, d=d, **kwargs)
