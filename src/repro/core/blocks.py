"""Residual building blocks of the BCAE family (paper Figure 4).

Figure 4 shows both the encoder and the decoders assembled from residual
blocks whose main path is two Conv/deConv→Activation→(Normalization) stages
and whose skip path is a single Conv/deConv→Activation→(Normalization); the
two paths are summed.

* The 3D variants use the strided (down/up-sampling) convolution as the
  first main-path layer and on the skip path.  BCAE++ removes the
  normalization layers (§2.3); the original-BCAE baseline keeps them.
* The 2D variant (Algorithms 1–2) uses plain two-convolution residual
  blocks with identity skips — resolution changes are handled outside the
  block by ``AvgPool2d`` / ``Upsample``.
"""

from __future__ import annotations

from .. import nn

__all__ = ["ResBlock2d", "DownBlock3d", "UpBlock3d", "make_activation"]


def make_activation(name: str = "leaky_relu") -> nn.Module:
    """Instantiate an activation by name (default: LeakyReLU 0.01)."""

    table = {
        "relu": nn.ReLU,
        "leaky_relu": nn.LeakyReLU,
        "sigmoid": nn.Sigmoid,
        "tanh": nn.Tanh,
        "identity": nn.Identity,
    }
    if name not in table:
        raise ValueError(f"unknown activation {name!r}; options: {sorted(table)}")
    return table[name]()


class ResBlock2d(nn.Module):
    """Two 3×3 convolutions with an identity skip (Algorithm 1/2's ``Res``).

    ``Res(i=32, o=32, k=3, p=1)`` in the paper's notation.  Channel counts
    are equal on both ends so the skip is the identity; the per-block
    parameter increment (2 · 32·32·3·3 weights ≈ 36.1k per pair of blocks)
    matches the encoder-size ladder of Figure 6E.
    """

    def __init__(self, channels: int, kernel_size: int = 3, activation: str = "leaky_relu") -> None:
        super().__init__()
        pad = kernel_size // 2
        self.conv1 = nn.Conv2d(channels, channels, kernel_size, padding=pad)
        self.act1 = make_activation(activation)
        self.conv2 = nn.Conv2d(channels, channels, kernel_size, padding=pad)
        self.act2 = make_activation(activation)

    def forward(self, x):
        """act(conv(act(conv(x)))) + x."""

        y = self.act1(self.conv1(x))
        y = self.act2(self.conv2(y))
        return y + x


class DownBlock3d(nn.Module):
    """3D residual downsampling block (Figure 4, encoder side).

    Main path: strided conv → act → (norm) → 3³ conv → act → (norm);
    skip path: strided conv → act → (norm); outputs summed.

    The stride is ``(1, 2, 2)``: the paper's 3D encoders halve only the
    azimuthal and horizontal axes, never the 16-layer radial axis (that is
    how BCAE++'s code keeps 16 radial planes: ``(8, 16, 12, 16)``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel=(3, 4, 4),
        stride=(1, 2, 2),
        padding=(1, 1, 1),
        norm: bool = False,
        activation: str = "leaky_relu",
    ) -> None:
        super().__init__()
        self.down = nn.Conv3d(in_channels, out_channels, kernel, stride=stride, padding=padding)
        self.act1 = make_activation(activation)
        self.norm1 = nn.BatchNorm3d(out_channels) if norm else nn.Identity()
        self.conv = nn.Conv3d(out_channels, out_channels, 3, stride=1, padding=1)
        self.act2 = make_activation(activation)
        self.norm2 = nn.BatchNorm3d(out_channels) if norm else nn.Identity()
        self.skip = nn.Conv3d(in_channels, out_channels, kernel, stride=stride, padding=padding)
        self.act3 = make_activation(activation)
        self.norm3 = nn.BatchNorm3d(out_channels) if norm else nn.Identity()

    def forward(self, x):
        """Strided main path + strided skip, summed (Figure 4)."""

        main = self.norm1(self.act1(self.down(x)))
        main = self.norm2(self.act2(self.conv(main)))
        skip = self.norm3(self.act3(self.skip(x)))
        return main + skip


class UpBlock3d(nn.Module):
    """3D residual upsampling block (Figure 4, decoder side).

    Mirror of :class:`DownBlock3d` with transposed convolutions;
    ``output_padding`` recovers the exact (possibly odd) encoder input sizes
    of the unpadded original BCAE.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel=(3, 4, 4),
        stride=(1, 2, 2),
        padding=(1, 1, 1),
        output_padding=(0, 0, 0),
        norm: bool = False,
        activation: str = "leaky_relu",
    ) -> None:
        super().__init__()
        self.up = nn.ConvTranspose3d(
            in_channels, out_channels, kernel, stride=stride, padding=padding,
            output_padding=output_padding,
        )
        self.act1 = make_activation(activation)
        self.norm1 = nn.BatchNorm3d(out_channels) if norm else nn.Identity()
        self.conv = nn.Conv3d(out_channels, out_channels, 3, stride=1, padding=1)
        self.act2 = make_activation(activation)
        self.norm2 = nn.BatchNorm3d(out_channels) if norm else nn.Identity()
        self.skip = nn.ConvTranspose3d(
            in_channels, out_channels, kernel, stride=stride, padding=padding,
            output_padding=output_padding,
        )
        self.act3 = make_activation(activation)
        self.norm3 = nn.BatchNorm3d(out_channels) if norm else nn.Identity()

    def forward(self, x):
        """Transposed main path + transposed skip, summed (Figure 4)."""

        main = self.norm1(self.act1(self.up(x)))
        main = self.norm2(self.act2(self.conv(main)))
        skip = self.norm3(self.act3(self.skip(x)))
        return main + skip
