"""3D BCAE variants: original BCAE, BCAE++, BCAE-HT (paper §2.2–2.3).

All three share the same residual topology (Figure 4) with four
downsampling stages that halve the azimuthal and horizontal axes while
leaving the 16 radial layers untouched.  They differ in:

================  ==================  ======================  ==============
variant           encoder features    input horizontal        normalization
================  ==================  ======================  ==============
BCAE (original)   (8, 16, 32, 32)     unpadded (249)          BatchNorm
BCAE++            (8, 16, 32, 32)     zero-padded to 256      none
BCAE-HT           (2, 4, 4, 8)        zero-padded to 256      none
================  ==================  ======================  ==============

Padding to 256 lets every stage use kernel 4 / stride 2 / padding 1
uniformly and shrinks the code from ``(8, 17, 13, 16)`` to
``(8, 16, 12, 16)``, lifting the compression ratio from 27.041 to 31.125
(§2.3).  The original BCAE's odd code sizes are reproduced with a final
stage of kernel 3 / padding 2 (the exact 2021 hyper-parameters are not
restated in this paper; this choice lands on the published code shape).
"""

from __future__ import annotations

import dataclasses

from .. import nn
from .blocks import DownBlock3d, UpBlock3d

__all__ = ["StagePlan", "plan_stages", "BCAEEncoder3D", "BCAEDecoder3D"]


@dataclasses.dataclass(frozen=True)
class StagePlan:
    """Geometry of one down/up-sampling stage.

    ``kernel``/``stride``/``padding`` are per-axis (radial, azim, horiz);
    ``in_spatial``/``out_spatial`` are the encoder-direction sizes and
    ``output_padding`` is what the mirrored transposed convolution needs to
    reproduce ``in_spatial`` exactly.
    """

    kernel: tuple[int, int, int]
    stride: tuple[int, int, int]
    padding: tuple[tuple[int, int], ...]
    in_spatial: tuple[int, int, int]
    out_spatial: tuple[int, int, int]
    output_padding: tuple[int, int, int]


def _conv_out(size: int, k: int, s: int, p: tuple[int, int]) -> int:
    return (size + p[0] + p[1] - k) // s + 1


def plan_stages(
    spatial: tuple[int, int, int],
    n_stages: int = 4,
    legacy_tail: bool = False,
) -> list[StagePlan]:
    """Plan the downsampling stages for a 3D BCAE encoder.

    Parameters
    ----------
    spatial:
        Input spatial shape (radial, azimuthal, horizontal).
    n_stages:
        Number of ×2 stages (paper: 4).
    legacy_tail:
        If True, the last stage uses kernel 3 / padding 2 on the
        downsampled axes — the original-BCAE configuration that produces
        the odd ``(…, 13, 17)`` code sizes from unpadded inputs.

    Returns
    -------
    One :class:`StagePlan` per stage, with the transposed-convolution
    ``output_padding`` that makes the decoder invert sizes exactly.
    """

    plans: list[StagePlan] = []
    cur = tuple(int(s) for s in spatial)
    for stage in range(n_stages):
        legacy = legacy_tail and stage == n_stages - 1
        if legacy:
            kernel, padding = (3, 3, 3), ((1, 1), (2, 2), (2, 2))
        else:
            kernel, padding = (3, 4, 4), ((1, 1), (1, 1), (1, 1))
        stride = (1, 2, 2)
        out = tuple(
            _conv_out(c, k, s, p) for c, k, s, p in zip(cur, kernel, stride, padding)
        )
        if min(out) < 1:
            raise ValueError(f"spatial {spatial} too small for {n_stages} stages")
        base = tuple(
            (o - 1) * s - p[0] - p[1] + k
            for o, k, s, p in zip(out, kernel, stride, padding)
        )
        op = tuple(c - b for c, b in zip(cur, base))
        for o, s in zip(op, stride):
            if not (0 <= o < max(s, 1) or (o == 0 and s == 1)):
                raise ValueError(f"cannot invert stage sizes {cur} -> {out} (op={op})")
        plans.append(
            StagePlan(
                kernel=kernel,
                stride=stride,
                padding=padding,
                in_spatial=cur,
                out_spatial=out,
                output_padding=op,
            )
        )
        cur = out
    return plans


class BCAEEncoder3D(nn.Module):
    """3D BCAE encoder (original / ++ / HT depending on features & plan).

    Input tensors are ``(B, radial, azim, horiz)`` wedges; a singleton
    channel axis is inserted internally, so the public shape convention
    matches the 2D models.
    """

    def __init__(
        self,
        spatial: tuple[int, int, int] = (16, 192, 256),
        features: tuple[int, ...] = (8, 16, 32, 32),
        code_channels: int = 8,
        norm: bool = False,
        legacy_tail: bool = False,
        activation: str = "leaky_relu",
    ) -> None:
        super().__init__()
        self.spatial = tuple(int(s) for s in spatial)
        self.features = tuple(int(f) for f in features)
        self.code_channels = int(code_channels)
        self.plans = plan_stages(self.spatial, len(features), legacy_tail)

        blocks = nn.Sequential()
        in_ch = 1
        for feat, plan in zip(self.features, self.plans):
            blocks.append(
                DownBlock3d(
                    in_ch,
                    feat,
                    kernel=plan.kernel,
                    stride=plan.stride,
                    padding=plan.padding,
                    norm=norm,
                    activation=activation,
                )
            )
            in_ch = feat
        blocks.append(nn.Conv3d(in_ch, code_channels, 1))
        self.blocks = blocks

    @property
    def code_shape(self) -> tuple[int, int, int, int]:
        """Code shape (channels, radial, azim, horiz) — paper: (8, 16, 12, 16)."""

        return (self.code_channels,) + self.plans[-1].out_spatial

    def forward(self, x):
        """Encode ``(B, radial, azim, horiz)`` wedges into 3D codes."""

        if x.ndim != 4:
            raise ValueError(f"expected (B, radial, azim, horiz), got {x.shape}")
        b = x.shape[0]
        vol = x.reshape(b, 1, *x.shape[1:])
        return self.blocks(vol)


class BCAEDecoder3D(nn.Module):
    """3D BCAE decoder mirroring :class:`BCAEEncoder3D`.

    The channel chain reverses the encoder features and the transposed
    convolutions consume the stage plans in reverse with the solved
    ``output_padding``, so decoded wedges have exactly the encoder's input
    spatial shape (odd sizes included).
    """

    def __init__(
        self,
        encoder: BCAEEncoder3D,
        output_activation: nn.Module | None = None,
        norm: bool = False,
        activation: str = "leaky_relu",
    ) -> None:
        super().__init__()
        feats = encoder.features
        plans = encoder.plans
        self.out_spatial = encoder.spatial

        stages = nn.Sequential(nn.Conv3d(encoder.code_channels, feats[-1], 1))
        in_ch = feats[-1]
        # Walk stages in reverse; output channels mirror the encoder chain.
        rev_out = list(feats[-2::-1]) + [feats[0]]
        for plan, out_ch in zip(reversed(plans), rev_out):
            stages.append(
                UpBlock3d(
                    in_ch,
                    out_ch,
                    kernel=plan.kernel,
                    stride=plan.stride,
                    padding=plan.padding,
                    output_padding=plan.output_padding,
                    norm=norm,
                    activation=activation,
                )
            )
            in_ch = out_ch
        stages.append(nn.Conv3d(in_ch, 1, 1))
        self.stages = stages
        self.output_activation = output_activation if output_activation is not None else nn.Identity()

    def forward(self, code):
        """Decode codes back to ``(B, radial, azim, horiz)`` maps."""

        y = self.stages(code)
        y = self.output_activation(y)
        # Drop the singleton channel: back to (B, radial, azim, horiz).
        return y.reshape(y.shape[0], *y.shape[2:])
