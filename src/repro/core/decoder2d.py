"""BCAE-2D decoder — Algorithm 2 of the paper.

Algorithm 2 (verbatim structure)::

    for i in 1..n:
        if i <= d: Upsample(scale_factor=2)
        2 × Res(i=32, o=32, k=3, p=1)
    L_out = Conv2D(i=32, o=16, k=1)
    A (output activation)

The decoder *must* perform the same number of upsampling steps ``d`` as the
encoder's downsamplings (paper note in Algorithm 2).  The segmentation
decoder uses a Sigmoid output activation; the regression decoder uses the
identity (§2.4).  ``n`` may exceed ``m`` — the unbalanced-autoencoder study
of Figure 7 shows deeper decoders buy accuracy without touching encoder-side
(real-time) throughput.
"""

from __future__ import annotations

from .. import nn
from .blocks import ResBlock2d, make_activation

__all__ = ["BCAEDecoder2D"]


class BCAEDecoder2D(nn.Module):
    """Algorithm 2: 2D decoder with ``n`` blocks and ``d`` upsamplings.

    Parameters
    ----------
    n:
        Number of decoder blocks (paper grid: 3–11; default 8).
    d:
        Number of ×2 upsamplings; must equal the encoder's ``d``.
    out_channels:
        Output radial layers (paper: 16).
    width:
        Trunk channel count (paper: 32); also the code channel count.
    output_activation:
        ``"sigmoid"`` for the segmentation head, ``"identity"`` for the
        regression head (paper §2.4).
    """

    def __init__(
        self,
        n: int = 8,
        d: int = 3,
        out_channels: int = 16,
        width: int = 32,
        output_activation: str = "identity",
        activation: str = "leaky_relu",
    ) -> None:
        super().__init__()
        if d > n:
            raise ValueError(f"upsamplings d={d} cannot exceed blocks n={n}")
        self.n = int(n)
        self.d = int(d)
        self.out_channels = int(out_channels)
        self.width = int(width)

        stages = nn.Sequential()
        for i in range(1, n + 1):
            if i <= d:
                stages.append(nn.Upsample2d(2))
            stages.append(ResBlock2d(width, activation=activation))
            stages.append(ResBlock2d(width, activation=activation))
        stages.append(nn.Conv2d(width, out_channels, 1))
        stages.append(make_activation(output_activation))
        self.stages = stages

    def forward(self, code):
        """Decode ``(B, 32, a, h)`` codes into ``(B, 16, a·2^d, h·2^d)`` maps."""

        return self.stages(code)
