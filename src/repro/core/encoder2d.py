"""BCAE-2D encoder — Algorithm 1 of the paper.

The 16 radial TPC layers become the *channel* dimension of a 2D image
(azimuthal × horizontal).  The paper motivates this with the broken
translation invariance along the radial direction: within a layer group all
layers share the azimuthal bin count, so the physical bin pitch grows with
radius and a 3D convolution's radial weight sharing is ill-posed (§2.4).

Algorithm 1 (verbatim structure)::

    L_in  = Conv2D(i=16, o=32, k=7, p=3)
    for i in 1..m:
        if i <= d: AvgPool2D(k=2, s=2)
        2 × Res(i=32, o=32, k=3, p=1)
    L_out = Conv2D(i=32, o=32, k=1)

Deviation note: the paper's listing prints ``o=16`` for ``L_out``, which
contradicts the stated code shape ``(32, 24, 32)`` and the compression ratio
31.125 (§3.1); we use ``o=32``, consistent with §3.1 (see DESIGN.md).
"""

from __future__ import annotations

from .. import nn
from .blocks import ResBlock2d

__all__ = ["BCAEEncoder2D"]


class BCAEEncoder2D(nn.Module):
    """Algorithm 1: 2D encoder with ``m`` blocks and ``d`` downsamplings.

    Parameters
    ----------
    m:
        Number of encoder blocks (paper grid: 3–7; default 4).
    d:
        Number of AvgPool downsamplings (paper fixes d=3 so the compression
        ratio matches the 3D variants).
    in_channels:
        Radial layers treated as channels (paper: 16).
    width:
        Trunk channel count (paper: 32).
    code_channels:
        Channels of the produced code (paper: 32 — see deviation note).
    """

    def __init__(
        self,
        m: int = 4,
        d: int = 3,
        in_channels: int = 16,
        width: int = 32,
        code_channels: int = 32,
        activation: str = "leaky_relu",
    ) -> None:
        super().__init__()
        if d > m:
            raise ValueError(f"downsamplings d={d} cannot exceed blocks m={m}")
        self.m = int(m)
        self.d = int(d)
        self.in_channels = int(in_channels)
        self.width = int(width)
        self.code_channels = int(code_channels)

        stages = nn.Sequential(nn.Conv2d(in_channels, width, 7, padding=3))
        for i in range(1, m + 1):
            if i <= d:
                stages.append(nn.AvgPool2d(2))
            stages.append(ResBlock2d(width, activation=activation))
            stages.append(ResBlock2d(width, activation=activation))
        stages.append(nn.Conv2d(width, code_channels, 1))
        self.stages = stages

    def forward(self, x):
        """Encode ``(B, 16, A, H)`` log-ADC wedges into ``(B, 32, A/2^d, H/2^d)`` codes."""

        return self.stages(x)

    def code_shape(self, spatial: tuple[int, int]) -> tuple[int, int, int]:
        """Code shape (channels, azim, horiz) for a given input spatial size."""

        a, h = spatial
        f = 2**self.d
        if a % f or h % f:
            raise ValueError(f"spatial {spatial} not divisible by 2^d = {f}")
        return (self.code_channels, a // f, h // f)
