"""Programmatic architecture search over BCAE-2D(m, n, d) (paper §2.3–2.5).

BCAE++'s move to uniform k=4/s=2/p=1 stages was motivated by "streamlining
the neural network architecture search in a programmatic way" (§2.3), and
the paper's own selection of BCAE-2D(m=4, n=8, d=3) came from a grid search
balancing reconstruction accuracy against compression throughput (§2.4,
Figures 6E/7).  This module packages that workflow:

* :func:`enumerate_candidates` — the (m, n, d) grid with structural facts
  (encoder size, code shape, compression ratio) computed without training;
* :func:`throughput_frontier` — attach modeled A6000 throughput and reduce
  to the Pareto frontier of (encoder size ↓, throughput ↑);
* :func:`search` — optionally train each candidate briefly and rank by a
  throughput/accuracy trade-off, reproducing the paper's selection logic
  at any compute budget.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

import numpy as np

from .. import nn
from ..perf.flops import trace_encoder
from ..perf.roofline import estimate_throughput
from .bcae2d import BCAE2D

__all__ = [
    "Candidate",
    "enumerate_candidates",
    "throughput_frontier",
    "pareto_front",
    "search",
]


@dataclasses.dataclass
class Candidate:
    """One BCAE-2D(m, n, d) configuration and its evaluated properties."""

    m: int
    n: int
    d: int
    encoder_params: int
    code_ratio: float
    throughput: float | None = None
    accuracy_mae: float | None = None
    score: float | None = None

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``BCAE-2D(m=4, n=8, d=3)``."""

        return f"BCAE-2D(m={self.m}, n={self.n}, d={self.d})"

    def row(self) -> str:
        """One-line summary for ranking tables."""

        tput = f"{self.throughput:8.0f}" if self.throughput is not None else "   n/a  "
        mae = f"{self.accuracy_mae:8.4f}" if self.accuracy_mae is not None else "   n/a  "
        return (
            f"{self.label:26s} enc={self.encoder_params / 1e3:7.1f}k "
            f"ratio={self.code_ratio:7.3f} tput={tput} MAE={mae}"
        )


def enumerate_candidates(
    ms: Iterable[int] = (3, 4, 5, 6, 7),
    ns: Iterable[int] = (3, 5, 7, 9, 11),
    ds: Iterable[int] = (3,),
    wedge_spatial: tuple[int, int, int] = (16, 192, 249),
) -> list[Candidate]:
    """The paper's grid (§3.5: m ∈ 3..7, n ∈ 3..11, d = 3), structurally
    evaluated (no training, no timing)."""

    from ..tpc.transforms import padded_length

    r, a, h = wedge_spatial
    hp = padded_length(h, 16)
    out: list[Candidate] = []
    for d in ds:
        for m in ms:
            if d > m:
                continue
            for n in ns:
                if d > n:
                    continue
                nn.init.seed(0)
                model = BCAE2D(m=m, n=n, d=d, in_channels=r)
                code = model.code_shape((a, hp))
                ratio = (r * a * h) / float(np.prod(code))
                out.append(
                    Candidate(
                        m=m,
                        n=n,
                        d=d,
                        encoder_params=model.encoder_parameters(),
                        code_ratio=ratio,
                    )
                )
    return out


def throughput_frontier(
    candidates: list[Candidate],
    wedge_spatial: tuple[int, int, int] = (16, 192, 249),
    batch: int = 64,
    half: bool = True,
) -> list[Candidate]:
    """Attach modeled encoder throughput to every candidate (in place).

    Decoder depth ``n`` does not touch the encoder, so throughput is
    computed once per distinct (m, d) — the paper's unbalanced-autoencoder
    observation exploited for search efficiency.
    """

    from ..tpc.transforms import padded_length

    r, a, h = wedge_spatial
    shape = (r, a, padded_length(h, 16))
    cache: dict[tuple[int, int], float] = {}
    for c in candidates:
        key = (c.m, c.d)
        if key not in cache:
            nn.init.seed(0)
            model = BCAE2D(m=c.m, n=c.d, d=c.d, in_channels=r)
            trace = trace_encoder(model, shape, name=f"m={c.m},d={c.d}")
            cache[key] = estimate_throughput(trace, batch, half=half)
        c.throughput = cache[key]
    return candidates


def pareto_front(candidates: list[Candidate]) -> list[Candidate]:
    """Pareto-optimal set for (encoder_params ↓, throughput ↑).

    A candidate is dominated if another has both fewer (or equal) encoder
    parameters and strictly higher throughput (or equal throughput and
    strictly fewer parameters).
    """

    front = []
    for c in candidates:
        if c.throughput is None:
            raise ValueError("run throughput_frontier first")
        dominated = any(
            (o.encoder_params <= c.encoder_params and o.throughput > c.throughput)
            or (o.encoder_params < c.encoder_params and o.throughput >= c.throughput)
            for o in candidates
            if o is not c
        )
        if not dominated:
            front.append(c)
    return sorted(front, key=lambda c: c.encoder_params)


def search(
    candidates: list[Candidate],
    evaluate: Callable[[Candidate], float] | None = None,
    throughput_weight: float = 1.0,
    accuracy_weight: float = 1.0,
) -> list[Candidate]:
    """Rank candidates by a throughput/accuracy trade-off (paper §2.4).

    Parameters
    ----------
    candidates:
        With ``throughput`` attached (see :func:`throughput_frontier`).
    evaluate:
        Optional callback returning a *test MAE* for a candidate — plug in
        a micro-training loop (see ``benchmarks/bench_fig7_grid_search``).
        Without it, ranking is throughput-only.
    throughput_weight, accuracy_weight:
        Weights of the combined score
        ``w_t·log(throughput) − w_a·log(MAE)`` (both monotone-better).

    Returns
    -------
    Candidates sorted by descending score.
    """

    for c in candidates:
        if c.throughput is None:
            raise ValueError("run throughput_frontier first")
        if evaluate is not None:
            c.accuracy_mae = float(evaluate(c))
        score = throughput_weight * float(np.log(c.throughput))
        if c.accuracy_mae is not None:
            score -= accuracy_weight * float(np.log(max(c.accuracy_mae, 1e-9)))
        c.score = score
    return sorted(candidates, key=lambda c: -(c.score or -np.inf))
