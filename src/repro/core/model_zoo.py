"""Model registry and factories for every BCAE variant in the paper.

``build_model(name, ...)`` produces ready-to-train models with the paper's
architecture hyper-parameters; spatial sizes default to the paper's wedge
``(16, 192, 249→256)`` but accept any geometry (the CPU-scaled experiments
use smaller grids).

Encoder sizes for reference (paper Table 1 / Figure 6E vs this code):

=============  ============  =====================
variant        paper         this implementation
=============  ============  =====================
BCAE-2D (m=4)  169.0k        ~174k
BCAE++         226.2k        ~225k
BCAE-HT        9.8k          ~8.4k
BCAE           201.7k        ~183k
=============  ============  =====================

Differences (≤10%) stem from per-layer details the paper does not restate
(documented in DESIGN.md §2); the *ordering* and the size ratios that drive
every conclusion are preserved.
"""

from __future__ import annotations

from .. import nn
from ..tpc.transforms import padded_length
from .bcae2d import BCAE2D
from .bcae3d import BCAEDecoder3D, BCAEEncoder3D
from .heads import BicephalousAutoencoder

__all__ = [
    "MODEL_NAMES",
    "build_model",
    "build_bcae",
    "build_bcae_pp",
    "build_bcae_ht",
    "network_input_spatial",
]

#: Encoder feature ladders (paper §2.3).
_FEATURES_PP = (8, 16, 32, 32)
_FEATURES_HT = (2, 4, 4, 8)

MODEL_NAMES = ("bcae", "bcae_pp", "bcae_ht", "bcae_2d")


def network_input_spatial(
    wedge_spatial: tuple[int, int, int], pad: bool
) -> tuple[int, int, int]:
    """Spatial shape the network consumes for a raw wedge shape.

    Padded variants round the horizontal axis up to a multiple of 16
    (249 → 256); the original BCAE takes the raw size.
    """

    r, a, h = wedge_spatial
    return (r, a, padded_length(h, 16) if pad else h)


def _build_3d(
    spatial: tuple[int, int, int],
    features: tuple[int, ...],
    norm: bool,
    legacy_tail: bool,
    threshold: float,
    name: str,
) -> BicephalousAutoencoder:
    encoder = BCAEEncoder3D(
        spatial=spatial,
        features=features,
        code_channels=8,
        norm=norm,
        legacy_tail=legacy_tail,
    )
    seg = BCAEDecoder3D(encoder, output_activation=nn.Sigmoid(), norm=norm)
    reg = BCAEDecoder3D(encoder, output_activation=nn.RegOutputTransform(), norm=norm)
    return BicephalousAutoencoder(encoder, seg, reg, threshold=threshold, name=name)


def build_bcae(
    wedge_spatial: tuple[int, int, int] = (16, 192, 249),
    threshold: float = 0.5,
) -> BicephalousAutoencoder:
    """The original BCAE baseline [Huang et al. 2021].

    Unpadded input, normalization layers kept, legacy last stage — code
    element count 8·16·13·17 = 28,288 (ratio 27.041 on the paper grid).
    """

    return _build_3d(
        network_input_spatial(wedge_spatial, pad=False),
        _FEATURES_PP,
        norm=True,
        legacy_tail=True,
        threshold=threshold,
        name="bcae",
    )


def build_bcae_pp(
    wedge_spatial: tuple[int, int, int] = (16, 192, 249),
    threshold: float = 0.5,
) -> BicephalousAutoencoder:
    """BCAE++ (paper §2.3): padded input, no normalization, uniform k=4/s=2/p=1."""

    return _build_3d(
        network_input_spatial(wedge_spatial, pad=True),
        _FEATURES_PP,
        norm=False,
        legacy_tail=False,
        threshold=threshold,
        name="bcae_pp",
    )


def build_bcae_ht(
    wedge_spatial: tuple[int, int, int] = (16, 192, 249),
    threshold: float = 0.5,
) -> BicephalousAutoencoder:
    """BCAE-HT (paper §2.3): BCAE++ with encoder features (2, 4, 4, 8) — 5% the size."""

    return _build_3d(
        network_input_spatial(wedge_spatial, pad=True),
        _FEATURES_HT,
        norm=False,
        legacy_tail=False,
        threshold=threshold,
        name="bcae_ht",
    )


def build_model(
    name: str,
    wedge_spatial: tuple[int, int, int] = (16, 192, 249),
    threshold: float = 0.5,
    seed: int | None = None,
    **kwargs,
) -> BicephalousAutoencoder:
    """Build any paper model by name.

    Parameters
    ----------
    name:
        One of ``bcae``, ``bcae_pp``, ``bcae_ht``, ``bcae_2d``.
    wedge_spatial:
        Raw wedge shape ``(radial, azim, horiz)`` — paper: (16, 192, 249).
    seed:
        Optional seed for deterministic weight initialization.
    kwargs:
        Forwarded to the 2D constructor (``m``, ``n``, ``d``, …).
    """

    if seed is not None:
        nn.init.seed(seed)
    if name == "bcae":
        return build_bcae(wedge_spatial, threshold)
    if name == "bcae_pp":
        return build_bcae_pp(wedge_spatial, threshold)
    if name == "bcae_ht":
        return build_bcae_ht(wedge_spatial, threshold)
    if name == "bcae_2d":
        return BCAE2D(in_channels=wedge_spatial[0], threshold=threshold, **kwargs)
    raise ValueError(f"unknown model {name!r}; options: {MODEL_NAMES}")
