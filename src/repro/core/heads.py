"""Bicephalous head assembly (paper §2.2, Figure 4).

A BCAE couples one encoder with *two* decoders:

* the **segmentation decoder** ``D_seg`` classifies each voxel zero/nonzero
  (trained with focal loss — the data are ~89% zeros);
* the **regression decoder** ``D_reg`` predicts the log-ADC value.

The reconstruction is the masked combination ``ṽ = v̂ · 1[l̂ > h]`` with
classification threshold ``h`` (0.5 throughout the paper): zeros come from
the segmentation mask, values above the zero-suppression edge come from the
regression head (optionally through the output transform ``T``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["BCAEOutput", "BicephalousAutoencoder"]


@dataclasses.dataclass
class BCAEOutput:
    """Everything a forward pass produces.

    Attributes
    ----------
    code:
        Latent code tensor (what would be stored, as fp16).
    seg:
        Voxelwise nonzero probabilities from ``D_seg``.
    reg:
        Regression output from ``D_reg`` (post output-transform).
    """

    code: Tensor
    seg: Tensor
    reg: Tensor

    def reconstruction(self, threshold: float = 0.5) -> np.ndarray:
        """Masked reconstruction ``ṽ`` as a plain array (inference path)."""

        mask = self.seg.data > threshold
        return self.reg.data * mask


class BicephalousAutoencoder(nn.Module):
    """Encoder + two decoders with the masked-combination convention.

    Wraps any (encoder, seg decoder, reg decoder) triple that follows the
    ``(B, radial, azim, horiz)`` tensor convention; used for both the 2D and
    3D families.
    """

    def __init__(
        self,
        encoder: nn.Module,
        seg_decoder: nn.Module,
        reg_decoder: nn.Module,
        threshold: float = 0.5,
        name: str = "bcae",
    ) -> None:
        super().__init__()
        self.encoder = encoder
        self.seg_decoder = seg_decoder
        self.reg_decoder = reg_decoder
        self.threshold = float(threshold)
        self.model_name = name

    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tensor:
        """Compress: wedges ``(B, R, A, H)`` → latent codes."""

        return self.encoder(x)

    def decode(self, code: Tensor) -> tuple[Tensor, Tensor]:
        """Decompress: latent codes → (segmentation probs, regression values)."""

        return self.seg_decoder(code), self.reg_decoder(code)

    def forward(self, x: Tensor) -> BCAEOutput:
        """Encode then decode; returns code + both head outputs."""

        code = self.encode(x)
        seg, reg = self.decode(code)
        return BCAEOutput(code=code, seg=seg, reg=reg)

    # ------------------------------------------------------------------
    def reconstruct(self, x: Tensor) -> np.ndarray:
        """Full round trip returning the masked reconstruction array."""

        out = self.forward(x)
        return out.reconstruction(self.threshold)

    def encoder_parameters(self) -> int:
        """Trainable encoder size — the paper's model-size metric (Table 1)."""

        return self.encoder.num_parameters()

    def decoder_parameters(self) -> int:
        """Combined size of both decoders."""

        return self.seg_decoder.num_parameters() + self.reg_decoder.num_parameters()
