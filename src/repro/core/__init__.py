"""``repro.core`` — the paper's contribution: the BCAE model family.

* :class:`BCAE2D` — Algorithm 1/2 models ``BCAE-2D(m, n, d)`` (§2.4);
* :func:`build_bcae_pp` / :func:`build_bcae_ht` — improved 3D models (§2.3);
* :func:`build_bcae` — the original-BCAE baseline [10];
* :class:`BCAECompressor` — fp16 code round-trip with the paper's
  compression-ratio accounting (§3.1).
"""

from .bcae2d import BCAE2D, build_bcae2d
from .bcae3d import BCAEDecoder3D, BCAEEncoder3D, StagePlan, plan_stages
from .blocks import DownBlock3d, ResBlock2d, UpBlock3d, make_activation
from .compressor import BCAECompressor, CompressedWedges
from .decoder2d import BCAEDecoder2D
from .encoder2d import BCAEEncoder2D
from .fast_plan import CompiledStagePlan, fold_batchnorm, stage_kinds
from .fast_encode import (
    FastEncoder2D,
    FastEncoder3D,
    make_fast_encoder,
    supports_fast_encode,
)
from .fast_decode import (
    FastDecoder2D,
    FastDecoder3D,
    make_fast_decoder,
    supports_fast_decode,
)
from .heads import BCAEOutput, BicephalousAutoencoder
from .search import Candidate, enumerate_candidates, pareto_front, search, throughput_frontier
from .model_zoo import (
    MODEL_NAMES,
    build_bcae,
    build_bcae_ht,
    build_bcae_pp,
    build_model,
    network_input_spatial,
)

__all__ = [
    "BCAE2D",
    "build_bcae2d",
    "BCAEEncoder2D",
    "BCAEDecoder2D",
    "BCAEEncoder3D",
    "BCAEDecoder3D",
    "StagePlan",
    "plan_stages",
    "ResBlock2d",
    "DownBlock3d",
    "UpBlock3d",
    "make_activation",
    "BCAEOutput",
    "BicephalousAutoencoder",
    "BCAECompressor",
    "CompressedWedges",
    "CompiledStagePlan",
    "fold_batchnorm",
    "stage_kinds",
    "FastEncoder2D",
    "FastEncoder3D",
    "make_fast_encoder",
    "supports_fast_encode",
    "FastDecoder2D",
    "FastDecoder3D",
    "make_fast_decoder",
    "supports_fast_decode",
    "Candidate",
    "enumerate_candidates",
    "throughput_frontier",
    "pareto_front",
    "search",
    "MODEL_NAMES",
    "build_model",
    "build_bcae",
    "build_bcae_pp",
    "build_bcae_ht",
    "network_input_spatial",
]
