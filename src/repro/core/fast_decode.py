"""Allocation-free batched decoder execution — the analysis-side fast path.

The deployment loop is bicephalous end to end (§1, §3.1): the counting
house compresses the wedge stream online, and offline analysis must
decompress it at comparable throughput.  ``BCAECompressor.decompress`` runs
both decoder heads through the autograd module graph — re-padding,
re-quantizing weights and allocating im2col buffers on every call, exactly
the costs :class:`~repro.core.fast_encode.FastEncoder2D` eliminated on the
encoder side.

:class:`FastDecoder2D` compiles **both** decoder heads of a 2D BCAE through
the shared stage-plan engine of :mod:`repro.core.fast_plan` (Algorithm 2:
``Upsample2d`` + residual stacks, then a 1×1 conv under a sigmoid or
identity head); :class:`FastDecoder3D` does the same for the 3D decoders —
BCAE++/HT and the original BCAE's eval-mode BatchNorm stacks
(transposed-convolution residual up blocks over persistent dilated
canvases, then a 1×1 conv under the sigmoid / ``RegOutputTransform`` head,
with blocked im2col gathers at paper-scale geometry and the BatchNorm
fold/affine machinery of :mod:`repro.core.fast_plan`).  In both wrappers the
two plans share one workspace *and* one key namespace: the heads are
structurally identical (only weights and the output activation differ), so
every buffer the regression pass reads is fully rewritten before use and
the workspace is paid for once, not twice.  Use :func:`make_fast_decoder`
to build the right wrapper for a model.

The contract mirrors the encoder's, *bit-identical output*:

* ``decode`` returns exactly the ``(seg, reg)`` arrays ``model.decode``
  under ``nn.amp.autocast`` produces;
* ``decompress`` additionally replicates the segmentation-gated
  regression combine ``ṽ = v̂ · 1[l̂ > h]`` and the horizontal unpadding of
  ``BCAECompressor.decompress`` (§2.3).

The test suite enforces this across 2D and 3D model-zoo variants, batch
sizes and both precision modes.
"""

from __future__ import annotations

import numpy as np

from .bcae3d import BCAEDecoder3D
from .decoder2d import BCAEDecoder2D
from .fast_plan import (
    CompiledStagePlan,
    DECODE_ENTRY_KINDS,
    FP16_MAX,
    Workspace,
    entry_kinds_ok,
    stage_kinds,
)

__all__ = [
    "FastDecoder2D",
    "FastDecoder3D",
    "make_fast_decoder",
    "supports_fast_decode",
]

_DECODER2D_KINDS = {"conv", "up", "res", "bnorm", "sigmoid", "identity"}
_DECODER3D_KINDS = {
    "conv3d", "convtranspose3d", "upblock3d", "pool3d", "up3d", "bnorm",
    "sigmoid", "regout", "identity",
}


def _decoder3d_stages(decoder: BCAEDecoder3D) -> list:
    """A 3D decoder's full stage list: its stack plus the output head."""

    return list(decoder.stages) + [decoder.output_activation]


def supports_fast_decode(model) -> bool:
    """Whether ``model``'s decoders have a compiled fast path.

    Covers the BCAE-2D family (Algorithm 2 decoders built from
    nearest-neighbour upsampling, leaky-ReLU residual blocks and a final
    convolution under a sigmoid/identity head) and the 3D family — the
    norm-free BCAE++/HT transposed-convolution up blocks (§2.3) *and* the
    original BCAE's eval-mode BatchNorm up blocks (folded conv or exact
    affine stage), both under a sigmoid / ``RegOutputTransform`` head.  A
    model whose BatchNorm layers are in training mode stays on the module
    path: call ``model.eval()``.
    """

    seg = getattr(model, "seg_decoder", None)
    reg = getattr(model, "reg_decoder", None)
    if isinstance(seg, BCAEDecoder2D) and isinstance(reg, BCAEDecoder2D):
        return all(
            entry_kinds_ok(stage_kinds(d.stages), _DECODER2D_KINDS,
                           entry=DECODE_ENTRY_KINDS)
            for d in (seg, reg)
        )
    if isinstance(seg, BCAEDecoder3D) and isinstance(reg, BCAEDecoder3D):
        return all(
            entry_kinds_ok(stage_kinds(_decoder3d_stages(d)),
                           _DECODER3D_KINDS, entry=DECODE_ENTRY_KINDS)
            for d in (seg, reg)
        )
    return False


def make_fast_decoder(model, half: bool = True, precision: str = "bit",
                      panel_threads: int | None = None):
    """Build the compiled decoder pair for a model that passes
    :func:`supports_fast_decode` (2D and 3D families dispatch to their
    wrapper).  ``precision`` and ``panel_threads`` forward to both head
    plans (:class:`~repro.core.fast_plan.CompiledStagePlan`)."""

    if isinstance(getattr(model, "seg_decoder", None), BCAEDecoder2D):
        return FastDecoder2D(model, half=half, precision=precision,
                             panel_threads=panel_threads)
    return FastDecoder3D(model, half=half, precision=precision,
                         panel_threads=panel_threads)


class FastDecoder2D:
    """Compiled, buffer-reusing twin of both decoder heads of a 2D BCAE.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder` whose decoders are 2D and pass
        :func:`supports_fast_decode`.  Weights and the classification
        threshold are snapshot at construction — rebuild after training
        (``BCAECompressor`` does this automatically via its weight
        fingerprint).
    half:
        Replicate the fp16 autocast numerics (§3.3 deployment mode); False
        replicates the full-precision module path.
    """

    def __init__(self, model, half: bool = True, precision: str = "bit",
                 panel_threads: int | None = None) -> None:
        if not (isinstance(getattr(model, "seg_decoder", None), BCAEDecoder2D)
                and supports_fast_decode(model)):
            raise TypeError(
                f"FastDecoder2D cannot compile {type(model).__name__}'s decoders; "
                "use supports_fast_decode() / make_fast_decoder() to guard"
            )
        self.half = bool(half)
        self.threshold = float(model.threshold)
        self.d = model.seg_decoder.d
        ws = Workspace()
        # Shared workspace + shared prefix: the heads are structurally
        # identical, so the sequential seg → reg runs reuse every buffer
        # (each op fully rewrites what it reads; see CompiledStagePlan).
        self._seg = CompiledStagePlan(model.seg_decoder.stages, half=self.half,
                                      workspace=ws, prefix="d",
                                      precision=precision,
                                      panel_threads=panel_threads)
        self._reg = CompiledStagePlan(model.reg_decoder.stages, half=self.half,
                                      workspace=ws, prefix="d",
                                      precision=precision,
                                      panel_threads=panel_threads)
        self._ws = ws

    # ------------------------------------------------------------------
    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._ws.nbytes()

    @property
    def bn_folds(self) -> list[dict]:
        """Per-BatchNorm fold decisions of both head plans (seg then reg)."""

        return list(self._seg.bn_folds) + list(self._reg.bn_folds)

    @property
    def plans(self) -> dict[str, CompiledStagePlan]:
        """Both head plans keyed ``seg`` / ``reg`` (used by repro.analysis)."""

        return {"seg": self._seg, "reg": self._reg}

    # ------------------------------------------------------------------
    def _input_canvas(self, codes: np.ndarray) -> tuple[np.ndarray, tuple[int, int], float]:
        if codes.ndim != 4:
            raise ValueError(f"expected codes (B, C, a, h), got shape {codes.shape}")
        n, c, a, h = codes.shape
        canvas, interior = self._seg.input_canvas(n, c, (a, h))
        np.copyto(interior, codes.transpose(1, 0, 2, 3))
        return canvas, (a, h), _entry_bound(interior, self.half)

    def decode(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode fp16/fp32 codes ``(B, C, a, h)`` into ``(seg, reg)`` maps.

        Bit-identical values to ``model.decode`` under autocast.  Both
        returned arrays are zero-copy views of reused workspace buffers
        (transposed from the engine's channel-major layout) — copy before
        the next call.
        """

        canvas, spatial, bound = self._input_canvas(codes)
        seg = self._seg.run(canvas, spatial, bound)
        reg = self._reg.run(canvas, spatial, bound)
        return seg.transpose(1, 0, 2, 3), reg.transpose(1, 0, 2, 3)

    # ------------------------------------------------------------------
    def decompress(self, codes: np.ndarray, original_horizontal: int) -> np.ndarray:
        """Codes → masked log-ADC reconstruction ``(B, R, A, H_orig)``.

        Replicates ``BCAECompressor.decompress`` exactly: the regression
        output gated by ``seg > threshold`` (§2.2), horizontal padding
        clipped (§2.3).  Returns a (transposed) view of a reused fp32
        workspace buffer — copy before the next call.
        """

        canvas, spatial, bound = self._input_canvas(codes)
        seg = self._seg.run(canvas, spatial, bound)
        reg = self._reg.run(canvas, spatial, bound)
        mask = self._ws.get("mask", seg.shape, np.bool_)
        np.greater(seg, self.threshold, out=mask)
        recon = self._ws.get("recon", reg.shape)
        # dtype pins the product to fp32 over the fp16-stored grid values —
        # exactly the module path's ``reg.data * (seg.data > threshold)``.
        np.multiply(reg, mask, out=recon, dtype=np.float32)
        return recon.transpose(1, 0, 2, 3)[..., :int(original_horizontal)]


class FastDecoder3D:
    """Compiled, buffer-reusing twin of both decoder heads of a 3D BCAE.

    Same contract and workspace-sharing scheme as :class:`FastDecoder2D`;
    the decoded volume's singleton channel is dropped exactly like the
    module path's final ``reshape``, so ``decode`` / ``decompress`` return
    ``(B, R, A, H)`` arrays.

    Parameters
    ----------
    model:
        A :class:`BicephalousAutoencoder` whose decoders are
        :class:`BCAEDecoder3D` and pass :func:`supports_fast_decode`.
    half:
        Replicate the fp16 autocast numerics (§3.3 deployment mode); False
        replicates the full-precision module path.
    """

    def __init__(self, model, half: bool = True, precision: str = "bit",
                 panel_threads: int | None = None) -> None:
        if not (isinstance(getattr(model, "seg_decoder", None), BCAEDecoder3D)
                and supports_fast_decode(model)):
            raise TypeError(
                f"FastDecoder3D cannot compile {type(model).__name__}'s decoders; "
                "use supports_fast_decode() / make_fast_decoder() to guard"
            )
        self.half = bool(half)
        self.threshold = float(model.threshold)
        ws = Workspace()
        self._seg = CompiledStagePlan(_decoder3d_stages(model.seg_decoder),
                                      half=self.half, workspace=ws, prefix="d",
                                      precision=precision,
                                      panel_threads=panel_threads)
        self._reg = CompiledStagePlan(_decoder3d_stages(model.reg_decoder),
                                      half=self.half, workspace=ws, prefix="d",
                                      precision=precision,
                                      panel_threads=panel_threads)
        self._ws = ws

    # ------------------------------------------------------------------
    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._ws.nbytes()

    @property
    def bn_folds(self) -> list[dict]:
        """Per-BatchNorm fold decisions of both head plans (seg then reg)."""

        return list(self._seg.bn_folds) + list(self._reg.bn_folds)

    @property
    def plans(self) -> dict[str, CompiledStagePlan]:
        """Both head plans keyed ``seg`` / ``reg`` (used by repro.analysis)."""

        return {"seg": self._seg, "reg": self._reg}

    # ------------------------------------------------------------------
    def _input_canvas(self, codes: np.ndarray):
        if codes.ndim != 5:
            raise ValueError(f"expected codes (B, C, r, a, h), got shape {codes.shape}")
        n, c = codes.shape[:2]
        spatial = codes.shape[2:]
        canvas, interior = self._seg.input_canvas(n, c, spatial)
        np.copyto(interior, codes.transpose(1, 0, 2, 3, 4))
        return canvas, spatial, _entry_bound(interior, self.half)

    def decode(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode fp16/fp32 codes ``(B, C, r, a, h)`` into ``(seg, reg)``.

        Bit-identical values to ``model.decode`` under autocast, shaped
        ``(B, R, A, H)`` like the module path (channel dropped).  Both
        returned arrays are zero-copy views of reused workspace buffers —
        copy before the next call.
        """

        canvas, spatial, bound = self._input_canvas(codes)
        seg = self._seg.run(canvas, spatial, bound)
        reg = self._reg.run(canvas, spatial, bound)
        return seg[0], reg[0]

    # ------------------------------------------------------------------
    def decompress(self, codes: np.ndarray, original_horizontal: int) -> np.ndarray:
        """Codes → masked log-ADC reconstruction ``(B, R, A, H_orig)``.

        Replicates ``BCAECompressor.decompress`` exactly: the regression
        output gated by ``seg > threshold`` (§2.2), horizontal padding
        clipped (§2.3).  Returns a view of a reused fp32 workspace buffer —
        copy before the next call.
        """

        canvas, spatial, bound = self._input_canvas(codes)
        seg = self._seg.run(canvas, spatial, bound)
        reg = self._reg.run(canvas, spatial, bound)
        mask = self._ws.get("mask", seg.shape, np.bool_)
        np.greater(seg, self.threshold, out=mask)
        recon = self._ws.get("recon", reg.shape)
        np.multiply(reg, mask, out=recon, dtype=np.float32)
        return recon[0][..., :int(original_horizontal)]


def _entry_bound(interior: np.ndarray, half: bool) -> float:
    """Exact magnitude bound of the decode entry values (post-clip).

    fp16 payload values are already on the grid, so the first conv's entry
    quantize reduces to the saturating clip — and only ±inf codes (a
    full-precision payload overflow) can move.  The code tensor is tiny
    (spatial / 4^d), so an exact entry bound is nearly free — and it is
    what lets the interval analysis elide the early saturating clips (a
    pessimistic ±65504 entry would never elide anything downstream).
    """

    if half:
        np.clip(interior, -FP16_MAX, FP16_MAX, out=interior)
    with np.errstate(invalid="ignore"):
        bound = float(np.nanmax(np.abs(interior))) if interior.size else 0.0
    if np.isnan(bound):
        bound = 0.0  # all-NaN codes: the clip is the identity on NaN
    return bound
