"""Allocation-free batched encoder execution for deployment (§3.2–3.3).

``BCAECompressor.compress`` runs the encoder through the autograd module
graph: every convolution re-pads its input, re-quantizes its weights and its
input, and allocates fresh im2col / output arrays.  That is the right
reference implementation, but it is not how the counting-house hot loop
should spend its time — the paper's deployment story is a resident encoder
compressing an endless wedge stream, where every buffer can be planned once
and reused.

:class:`FastEncoder2D` compiles a :class:`~repro.core.encoder2d.BCAEEncoder2D`
into a flat list of array passes over preplanned workspaces:

* weights are quantized to the fp16 grid and transposed into GEMM layout
  **once** (the module path pays clip + two casts per convolution per call);
* activations are stored as fp32 values that already sit **on** the fp16
  grid, inside zero-bordered padded canvases: the per-convolution ``np.pad``
  disappears, and the module path's quantize-on-entry becomes a provable
  no-op that is skipped entirely — quantization happens exactly once, where
  a value is produced, not on every consumption;
* the GEMM is the exact ``tensordot`` contraction of
  :func:`repro.nn.convolution.conv_forward` — same operand values and
  layouts, same BLAS call — executed into a reused output buffer;
* the saturating clip of :func:`repro.nn.amp.quantize_fp16` is elided
  wherever interval analysis over the quantized weights proves activations
  cannot reach ±65504 (when the bound fails, the clip runs — behaviour is
  never traded for speed).

The contract is *bit-identical output*: for every input accepted by the
module path, :meth:`FastEncoder2D.encode` returns exactly the code bytes
that ``model.encode`` under ``nn.amp.autocast`` (followed by the fp16
payload cast of ``BCAECompressor.compress``) produces.  The test suite
enforces this across model variants, batch sizes and both precision modes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import nn
from ..nn.amp import quantize_fp16
from .blocks import ResBlock2d
from .encoder2d import BCAEEncoder2D

__all__ = ["FastEncoder2D", "Workspace", "supports_fast_encode"]

#: Largest finite fp16 magnitude — the saturation point of quantize_fp16.
_FP16_MAX = 65504.0

#: Rigorous magnitude bound on ``log2`` of any positive finite float
#: (float32 denormals bottom out at 2^-149), i.e. on any network input
#: produced by the log transform.
_LOG_INPUT_BOUND = 150.0


def supports_fast_encode(model) -> bool:
    """Whether ``model``'s encoder can be compiled by :class:`FastEncoder2D`.

    The fast path covers the BCAE-2D family (Algorithm 1 encoders built from
    convolutions, non-overlapping average pooling and leaky-ReLU residual
    blocks).  The 3D variants fall back to the module path.
    """

    encoder = getattr(model, "encoder", model)
    if not isinstance(encoder, BCAEEncoder2D):
        return False
    for stage in encoder.stages:
        if isinstance(stage, (nn.Conv2d, nn.AvgPool2d)):
            continue
        if isinstance(stage, ResBlock2d):
            if not isinstance(stage.act1, nn.LeakyReLU) or not isinstance(
                stage.act2, nn.LeakyReLU
            ):
                return False
            continue
        return False
    return True


@dataclasses.dataclass
class _ConvSpec:
    """One convolution with its weight pre-transposed into GEMM layout."""

    wt: np.ndarray  # (C*kh*kw, O) contiguous — tensordot's right operand
    bias: np.ndarray | None
    kernel: tuple[int, int]
    stride: tuple[int, int]
    padding: tuple[tuple[int, int], ...]
    out_channels: int
    w_l1: float     # max over output channels of Σ|w| — bound slope
    bias_max: float

    @classmethod
    def from_module(cls, conv: nn.Conv2d, half: bool) -> "_ConvSpec":
        w = quantize_fp16(conv.weight.data) if half else np.asarray(conv.weight.data)
        o = w.shape[0]
        k = int(np.prod(conv.kernel_size))
        # tensordot reshapes the transposed kernel into an F-contiguous
        # (K, O) view; BLAS picks its kernel by operand layout, so the
        # cached weight must keep that exact layout to stay bit-identical.
        wt = np.asfortranarray(
            w.transpose(1, 2, 3, 0).reshape(w.shape[1] * k, o), dtype=np.float32
        )
        bias = None if conv.bias is None else conv.bias.data.astype(np.float32)
        return cls(
            wt=wt,
            bias=bias,
            kernel=conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
            out_channels=o,
            w_l1=float(np.abs(w.reshape(o, -1)).sum(axis=1).max()),
            bias_max=0.0 if bias is None else float(np.abs(bias).max()),
        )

    def out_bound(self, in_bound: float) -> float:
        """Rigorous |output| bound given an |input| magnitude bound."""

        return self.w_l1 * in_bound + self.bias_max


class Workspace:
    """Named, shape-checked reusable buffers (compiled-encoder/compressor scratch)."""

    def __init__(self) -> None:
        self._bufs: dict = {}

    def get(self, key, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf

    def canvas(self, key, n: int, c: int, spatial: tuple[int, int],
               padding) -> tuple[np.ndarray, np.ndarray]:
        """Zero-bordered fp32 activation canvas and its interior view.

        The border is zeroed once at allocation; every later pass writes
        only the interior, so the zeros (= the padding the module path
        re-creates with ``np.pad`` on every call) persist.
        """

        (plh, phh), (plw, phw) = padding
        shape = (n, c, spatial[0] + plh + phh, spatial[1] + plw + phw)
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape:
            buf = np.zeros(shape, dtype=np.float32)
            self._bufs[key] = buf
        return buf, buf[:, :, plh:plh + spatial[0], plw:plw + spatial[1]]

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values())


class FastEncoder2D:
    """Compiled, buffer-reusing twin of a 2D BCAE encoder.

    Parameters
    ----------
    encoder:
        The :class:`BCAEEncoder2D` to compile.  Weights are snapshot at
        construction — rebuild after further training.
    half:
        Replicate the fp16 autocast numerics (the deployment mode, §3.3).
        When False the full-precision module path is replicated instead.
    """

    def __init__(self, encoder: BCAEEncoder2D, half: bool = True) -> None:
        if not supports_fast_encode(encoder):
            raise TypeError(
                f"FastEncoder2D cannot compile {type(encoder).__name__}; "
                "use supports_fast_encode() to guard"
            )
        self.half = bool(half)
        self.d = encoder.d
        self.code_channels = encoder.code_channels
        self._ops: list[tuple[str, object]] = []
        for stage in encoder.stages:
            if isinstance(stage, nn.Conv2d):
                self._ops.append(("conv", _ConvSpec.from_module(stage, self.half)))
            elif isinstance(stage, nn.AvgPool2d):
                self._ops.append(("pool", stage.kernel_size))
            else:
                spec = (
                    _ConvSpec.from_module(stage.conv1, self.half),
                    _ConvSpec.from_module(stage.conv2, self.half),
                    float(stage.act1.negative_slope),
                )
                self._ops.append(("res", spec))
        self._ws = Workspace()

    # ------------------------------------------------------------------
    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._ws.nbytes()

    # ------------------------------------------------------------------
    def _gemm(self, key, spec: _ConvSpec, canvas: np.ndarray):
        """The exact ``conv_forward`` contraction out of a padded canvas.

        Returns the GEMM result ``(B·oh·ow, O)`` (bias added) and the output
        spatial shape.  The im2col gather follows tensordot's element order,
        so ``np.dot`` here sees the same operand matrices ``conv_forward``
        builds internally — identical BLAS call, identical bits.  The
        canvas holds quantized (grid) values, so the module path's
        quantize-on-entry is a no-op and is skipped.
        """

        n, c = canvas.shape[:2]
        kh, kw = spec.kernel
        sh, sw = spec.stride
        oh = (canvas.shape[2] - kh) // sh + 1
        ow = (canvas.shape[3] - kw) // sw + 1
        m = n * oh * ow

        win = sliding_window_view(canvas, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        at = self._ws.get((key, "at"), (m, c * kh * kw))
        np.copyto(at.reshape(n, oh, ow, c, kh, kw), win.transpose(0, 2, 3, 1, 4, 5))
        y2 = self._ws.get((key, "y2"), (m, spec.out_channels))
        # Per-sample GEMM blocks, matching conv_forward: every wedge's rows
        # come from a batch-of-one-shaped BLAS call, so payload bits are
        # invariant to micro-batch composition.
        rows = oh * ow
        for i in range(n):
            np.dot(at[i * rows:(i + 1) * rows], spec.wt,
                   out=y2[i * rows:(i + 1) * rows])
        if spec.bias is not None:
            y2 += spec.bias
        return y2, (oh, ow)

    @staticmethod
    def _nchw(rows: np.ndarray, n: int, spatial: tuple[int, int]) -> np.ndarray:
        """(B·oh·ow, O) GEMM rows as a strided (B, O, oh, ow) view."""

        oh, ow = spatial
        return np.moveaxis(rows.reshape(n, oh, ow, -1), -1, 1)

    # ------------------------------------------------------------------
    def _snap(self, key, src: np.ndarray, bound: float,
              mutable: bool = False) -> tuple[np.ndarray, float]:
        """``quantize_fp16`` replica: snap fp32 values onto the fp16 grid.

        Returns a contiguous fp32 array of grid values and the stored
        bound.  The clip runs only when ``bound`` says fp16 saturation is
        reachable — elsewhere it is provably the identity.  ``src`` is
        mutated only when ``mutable`` (scratch GEMM rows); the residual
        stream keeps its unclipped fp32 values.
        """

        if bound >= _FP16_MAX:
            if mutable:
                clipped = np.clip(src, -_FP16_MAX, _FP16_MAX, out=src)
            else:
                clipped = np.clip(
                    src, -_FP16_MAX, _FP16_MAX,
                    out=self._ws.get((key, "clip"), src.shape),
                )
            src, bound = clipped, _FP16_MAX
        s16 = self._ws.get((key, "s16"), src.shape, np.float16)
        np.copyto(s16, src, casting="unsafe")
        q32 = self._ws.get((key, "q32"), src.shape)
        np.copyto(q32, s16)
        return q32, bound

    # ------------------------------------------------------------------
    def _conv_store(self, key, spec, canvas, bound, out_padding):
        """Convolve and store the (quantized) output into the next canvas."""

        n = canvas.shape[0]
        y2, out_spatial = self._gemm(key, spec, canvas)
        out_bound = spec.out_bound(bound)
        if self.half:
            y2, out_bound = self._snap(key, y2, out_bound, mutable=True)
        out_canvas, dest = self._ws.canvas(
            (key, "out"), n, spec.out_channels, out_spatial, out_padding
        )
        np.copyto(dest, self._nchw(y2, n, out_spatial))
        return out_canvas, dest, out_spatial, out_bound

    # ------------------------------------------------------------------
    def _pool(self, key, kernel, src, spatial, bound):
        """AvgPool2d replica: fp32 mean of the exact unquantized values.

        For the ubiquitous 2×2 pool the multi-axis ``mean`` reduction is
        replicated with slice adds in numpy's pairwise order
        ``((x00+x01) + (x10+x11)) / 4`` — bit-equal (the full-encoder
        identity tests guard this against numpy reduction-order changes)
        and ~3× faster than the strided ``mean`` kernel.
        """

        kh, kw = kernel
        n, c = src.shape[:2]
        a, h = spatial
        out = self._ws.get((key, "poolout"), (n, c, a // kh, h // kw))
        if (kh, kw) == (2, 2):
            v = src.reshape(n, c, a // 2, 2, h // 2, 2)
            t1 = self._ws.get((key, "pt1"), out.shape)
            np.add(v[:, :, :, 0, :, 0], v[:, :, :, 0, :, 1], out=t1)
            np.add(v[:, :, :, 1, :, 0], v[:, :, :, 1, :, 1], out=out)
            np.add(t1, out, out=out)
            np.divide(out, np.float32(4.0), out=out)
        else:  # pragma: no cover - encoder uses 2x2 pools
            src.reshape(n, c, a // kh, kh, h // kw, kw).mean(axis=(3, 5), out=out)
        return out, bound  # mean cannot grow the magnitude bound

    # ------------------------------------------------------------------
    def _res(self, key, op, canvas, spatial, bound, carry, carry_bound, out_padding):
        """ResBlock2d replica: ``act2(conv2(act1(conv1(x)))) + x``.

        ``carry`` is the unquantized fp32 block input the skip needs (None
        when the block input came straight from a conv, whose stored grid
        values are already exact).
        """

        spec1, spec2, slope = op
        n = canvas.shape[0]
        slope32 = np.float32(slope)

        # conv1 → act1, stored (re-quantized) as conv2's input.
        y2, out_spatial = self._gemm((key, 0), spec1, canvas)
        mid_canvas, mid_dest = self._ws.canvas(
            (key, "mid"), n, spec1.out_channels, out_spatial, spec2.padding
        )
        if self.half:
            v, b1 = self._snap((key, "v1"), y2, spec1.out_bound(bound), mutable=True)
            neg = self._ws.get((key, "neg"), v.shape)
            np.multiply(v, slope32, out=neg)      # fp32, exactly like x * scale
            negq, _ = self._snap((key, "negq"), neg, b1)  # conv2-entry quantize
            mask = self._ws.get((key, "m1"), v.shape, np.bool_)
            np.less_equal(v, np.float32(0), out=mask)
            np.copyto(v, negq, where=mask)        # merge contiguously...
            np.copyto(mid_dest, self._nchw(v, n, out_spatial))  # ...one layout pass
        else:
            b1 = 0.0
            scale = np.where(y2 > 0, 1.0, slope).astype(np.float32)
            np.copyto(mid_dest, self._nchw(y2 * scale, n, out_spatial))

        # conv2 → act2 kept unquantized fp32 (the module path does not
        # re-quantize before the residual sum).
        y2b, _ = self._gemm((key, 1), spec2, mid_canvas)
        if self.half:
            v2, b2 = self._snap((key, "v2"), y2b, spec2.out_bound(b1), mutable=True)
            l2 = self._ws.get((key, "l2"), v2.shape)
            np.multiply(v2, slope32, out=l2)
            mask2 = self._ws.get((key, "m2"), v2.shape, np.bool_)
            np.greater(v2, np.float32(0), out=mask2)
            np.copyto(l2, v2, where=mask2)
            l2_bound = b2
        else:
            scale2 = np.where(y2b > 0, 1.0, slope).astype(np.float32)
            l2 = y2b * scale2
            l2_bound = 0.0

        if carry is None:
            # Block input was a stored conv output: grid values are exact.
            carry = self._ws.get(
                (key, "skip32"), (n, canvas.shape[1]) + tuple(spatial)
            )
            np.copyto(carry, _interior(canvas, spec1.padding, spatial))
            carry_bound = bound
        carry += self._nchw(l2, n, out_spatial)
        carry_bound = carry_bound + l2_bound

        out_canvas, dest, stored_bound = self._store_stream(
            (key, "store"), carry, carry_bound, out_spatial, out_padding
        )
        return out_canvas, dest, stored_bound, carry, carry_bound

    # ------------------------------------------------------------------
    def _store_stream(self, key, src, bound, spatial, padding):
        """Store the unquantized fp32 stream into a conv-input canvas."""

        n, c = src.shape[:2]
        canvas, dest = self._ws.canvas((key, "canvas"), n, c, spatial, padding)
        if self.half:
            q32, bound = self._snap(key, src, bound)
            np.copyto(dest, q32)
        else:
            np.copyto(dest, src)
        return canvas, dest, bound

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray, horizontal_target: int | None = None) -> np.ndarray:
        """Encode log-transformed wedges ``(B, C, A, H)`` into fp16 codes.

        ``horizontal_target`` zero-pads the last axis inside the first
        convolution's canvas (the 249→256 padding of §2.3) without a
        separate ``pad_horizontal`` allocation.  The returned fp16 array is
        a reused buffer — copy or ``tobytes`` it before the next call.
        """

        if x.ndim != 4:
            raise ValueError(f"expected (B, C, A, H), got shape {x.shape}")
        n, c, a, h = x.shape
        target = h if horizontal_target is None else int(horizontal_target)
        if target < h:
            raise ValueError(f"horizontal target {target} < input horizontal {h}")

        ops = self._ops
        first: _ConvSpec = ops[0][1]
        canvas, interior = self._ws.canvas("in", n, c, (a, target), first.padding)
        if target != h:
            interior[..., h:] = 0
        if self.half:
            # Entry quantize.  |log2| of any positive float is < 65504, so
            # the clip is the identity and the grid snap is the whole job.
            s16 = self._ws.get(("in", "s16"), x.shape, np.float16)
            np.copyto(s16, x, casting="unsafe")
            np.copyto(interior[..., :h], s16)
        else:
            np.copyto(interior[..., :h], x)
        bound = _LOG_INPUT_BOUND

        spatial = (a, target)
        carry: np.ndarray | None = None
        carry_bound = 0.0
        code: np.ndarray | None = None

        for i, (kind, op) in enumerate(ops):
            out_padding = _next_padding(ops, i)
            if kind == "conv":
                canvas, code, spatial, bound = self._conv_store(
                    i, op, canvas, bound, out_padding
                )
                carry = None
            elif kind == "pool":
                kh, kw = op
                if carry is None:
                    # Input came from a conv: stored grid values are the
                    # exact fp32 values the module path pools.
                    src, src_bound = (
                        _interior(canvas, _canvas_padding(canvas, spatial), spatial),
                        bound,
                    )
                else:
                    # The module path pools the *unquantized* fp32 stream.
                    src, src_bound = carry, carry_bound
                carry, carry_bound = self._pool(i, op, src, spatial, src_bound)
                spatial = (spatial[0] // kh, spatial[1] // kw)
                canvas, _dest, bound = self._store_stream(
                    i, carry, carry_bound, spatial, out_padding
                )
            else:
                canvas, code, bound, carry, carry_bound = self._res(
                    i, op, canvas, spatial, bound, carry, carry_bound, out_padding
                )

        assert code is not None
        out16 = self._ws.get("code16", code.shape, np.float16)
        # Stored grid values cast exactly; this is compress()'s payload
        # astype.  (In full mode overflow to ±inf matches astype too.)
        np.copyto(out16, code, casting="unsafe")
        return out16


def _interior(canvas: np.ndarray, padding, spatial: tuple[int, int]) -> np.ndarray:
    (plh, _phh), (plw, _phw) = padding
    return canvas[:, :, plh:plh + spatial[0], plw:plw + spatial[1]]


def _canvas_padding(canvas: np.ndarray, spatial) -> tuple[tuple[int, int], ...]:
    """Recover the (symmetric) padding a canvas was allocated with."""

    ph = canvas.shape[2] - spatial[0]
    pw = canvas.shape[3] - spatial[1]
    return ((ph // 2, ph - ph // 2), (pw // 2, pw - pw // 2))


def _next_padding(ops, i) -> tuple[tuple[int, int], ...]:
    """Padding the next convolution consumer needs its input stored with."""

    for kind, op in ops[i + 1:]:
        if kind == "conv":
            return op.padding
        if kind == "res":
            return op[0].padding
        if kind == "pool":
            return ((0, 0), (0, 0))
    return ((0, 0), (0, 0))
