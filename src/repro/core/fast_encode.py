"""Allocation-free batched encoder execution for deployment (§3.2–3.3).

``BCAECompressor.compress`` runs the encoder through the autograd module
graph: every convolution re-pads its input, re-quantizes its weights and its
input, and allocates fresh im2col / output arrays.  That is the right
reference implementation, but it is not how the counting-house hot loop
should spend its time — the paper's deployment story is a resident encoder
compressing an endless wedge stream, where every buffer can be planned once
and reused.

:class:`FastEncoder2D` compiles a :class:`~repro.core.encoder2d.BCAEEncoder2D`
and :class:`FastEncoder3D` a :class:`~repro.core.bcae3d.BCAEEncoder3D`
(BCAE++/HT norm-free residual stacks *and* the original BCAE's eval-mode
BatchNorm stacks) through the shared stage-plan engine of
:mod:`repro.core.fast_plan` (see that module's docstring for the vocabulary,
the canvas/carry execution model, the blocked im2col gathers and the
clip-elision interval analysis).  These wrappers own only what is
encoder-specific: the entry quantize of the log-transformed input and the
249→256 horizontal padding of §2.3, folded into the first convolution's
canvas so no separate ``pad_horizontal`` allocation exists.  Use
:func:`make_fast_encoder` to build the right wrapper for a model.

The contract is *bit-identical output*: for every input accepted by the
module path, ``encode`` returns exactly the code bytes that ``model.encode``
under ``nn.amp.autocast`` (followed by the fp16 payload cast of
``BCAECompressor.compress``) produces.  The test suite enforces this across
2D and 3D model variants, batch sizes and both precision modes.
"""

from __future__ import annotations

import numpy as np

from .bcae3d import BCAEEncoder3D
from .encoder2d import BCAEEncoder2D
from .fast_plan import CompiledStagePlan, Workspace, entry_kinds_ok, stage_kinds

__all__ = [
    "FastEncoder2D",
    "FastEncoder3D",
    "LOG_INPUT_BOUND",
    "Workspace",
    "make_fast_encoder",
    "supports_fast_encode",
]

#: Rigorous magnitude bound on ``log2`` of any positive finite float
#: (float32 denormals bottom out at 2^-149), i.e. on any network input
#: produced by the log transform.  Public: the static plan verifier
#: (:mod:`repro.analysis.plan_verifier`) re-derives the encoder plans'
#: clip-elision intervals from this same entry bound.
LOG_INPUT_BOUND = 150.0

#: Stage kinds an encoder plan may contain (no output heads: the payload
#: cast expects the stored grid values of the final convolution).
_ENCODER2D_KINDS = {"conv", "pool", "res", "bnorm"}
_ENCODER3D_KINDS = {"conv3d", "down3d", "pool3d", "up3d", "bnorm"}


def supports_fast_encode(model) -> bool:
    """Whether ``model``'s encoder has a compiled fast path.

    Covers the BCAE-2D family (Algorithm 1 encoders built from
    convolutions, non-overlapping average pooling and leaky-ReLU residual
    blocks) and the 3D family — the norm-free BCAE++/HT residual stacks
    (§2.3) *and* the original BCAE's BatchNorm stacks in eval mode (the
    norm compiles to a folded conv or an exact affine stage).  A model
    whose BatchNorm layers are in training mode stays on the module path
    (batch statistics are not a compilable graph): call ``model.eval()``.
    """

    encoder = getattr(model, "encoder", model)
    if isinstance(encoder, BCAEEncoder2D):
        return entry_kinds_ok(stage_kinds(encoder.stages), _ENCODER2D_KINDS)
    if isinstance(encoder, BCAEEncoder3D):
        return entry_kinds_ok(stage_kinds(encoder.blocks), _ENCODER3D_KINDS)
    return False


def make_fast_encoder(model, half: bool = True, precision: str = "bit",
                      panel_threads: int | None = None):
    """Build the compiled encoder for a model that passes
    :func:`supports_fast_encode` (2D and 3D families dispatch to their
    wrapper).  ``precision`` and ``panel_threads`` forward to
    :class:`~repro.core.fast_plan.CompiledStagePlan` (the opt-in ulp tier
    and the intra-plan panel executor)."""

    encoder = getattr(model, "encoder", model)
    if isinstance(encoder, BCAEEncoder2D):
        return FastEncoder2D(encoder, half=half, precision=precision,
                             panel_threads=panel_threads)
    return FastEncoder3D(encoder, half=half, precision=precision,
                         panel_threads=panel_threads)


class FastEncoder2D:
    """Compiled, buffer-reusing twin of a 2D BCAE encoder.

    Parameters
    ----------
    encoder:
        The :class:`BCAEEncoder2D` to compile.  Weights are snapshot at
        construction — rebuild after training.
    half:
        Replicate the fp16 autocast numerics (the deployment mode, §3.3).
        When False the full-precision module path is replicated instead.
    precision:
        ``"bit"`` (default) or the opt-in ``"ulp"`` serving tier — see
        :class:`~repro.core.fast_plan.CompiledStagePlan`.
    panel_threads:
        Intra-plan panel executor width (None → ``REPRO_PANEL_THREADS``).
    """

    def __init__(self, encoder: BCAEEncoder2D, half: bool = True,
                 precision: str = "bit",
                 panel_threads: int | None = None) -> None:
        if not (isinstance(encoder, BCAEEncoder2D) and supports_fast_encode(encoder)):
            raise TypeError(
                f"FastEncoder2D cannot compile {type(encoder).__name__}; "
                "use supports_fast_encode() / make_fast_encoder() to guard"
            )
        self.half = bool(half)
        self.d = encoder.d
        self.code_channels = encoder.code_channels
        self._plan = CompiledStagePlan(encoder.stages, half=self.half,
                                       precision=precision,
                                       panel_threads=panel_threads)
        self._ws = self._plan.workspace

    @property
    def bn_folds(self) -> list[dict]:
        """Per-BatchNorm fold decisions of the compiled plan (see fast_plan)."""

        return list(self._plan.bn_folds)

    @property
    def plan(self) -> CompiledStagePlan:
        """The compiled stage plan (read-only; used by repro.analysis)."""

        return self._plan

    # ------------------------------------------------------------------
    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._plan.workspace_bytes

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray, horizontal_target: int | None = None) -> np.ndarray:
        """Encode log-transformed wedges ``(B, C, A, H)`` into fp16 codes.

        ``horizontal_target`` zero-pads the last axis inside the first
        convolution's canvas (the 249→256 padding of §2.3) without a
        separate ``pad_horizontal`` allocation.  The returned fp16 array is
        a reused buffer — copy or ``tobytes`` it before the next call.
        """

        if x.ndim != 4:
            raise ValueError(f"expected (B, C, A, H), got shape {x.shape}")
        n, c, a, h = x.shape
        target = h if horizontal_target is None else int(horizontal_target)
        if target < h:
            raise ValueError(f"horizontal target {target} < input horizontal {h}")

        canvas, interior = self._plan.input_canvas(n, c, (a, target))
        if target != h:
            interior[..., h:] = 0
        if self.half:
            # Entry quantize.  |log2| of any positive float is < 65504, so
            # the clip is the identity and the grid snap is the whole job
            # (one snap pass, then the layout pass to channel-major).
            q32, _b = self._plan._grid("in", x, LOG_INPUT_BOUND)
            np.copyto(interior[..., :h], q32.transpose(1, 0, 2, 3))
        else:
            np.copyto(interior[..., :h], x.transpose(1, 0, 2, 3))

        code = self._plan.run(canvas, (a, target), LOG_INPUT_BOUND)
        out16 = self._ws.get(
            "code16", (code.shape[1], code.shape[0]) + code.shape[2:], np.float16
        )
        # Stored grid values cast exactly; this is compress()'s payload
        # astype.  (In full mode overflow to ±inf matches astype too.)
        np.copyto(out16, code.transpose(1, 0, 2, 3), casting="unsafe")
        return out16


class FastEncoder3D:
    """Compiled, buffer-reusing twin of a 3D BCAE encoder (original/++/HT).

    The wedge's radial axis is spatial here (the network input is a
    single-channel ``(B, 1, R, A, H)`` volume — §2.2), so the wrapper
    differs from :class:`FastEncoder2D` only in the canvas rank and the
    singleton channel insertion the module path does with ``reshape``.

    Parameters
    ----------
    encoder:
        The :class:`BCAEEncoder3D` to compile (must pass
        :func:`supports_fast_encode` — BCAE++/HT norm-free stacks, or the
        original BCAE's eval-mode BatchNorm stacks).
    half:
        Replicate the fp16 autocast numerics (§3.3 deployment mode).
    precision:
        ``"bit"`` (default) or the opt-in ``"ulp"`` serving tier — see
        :class:`~repro.core.fast_plan.CompiledStagePlan`.
    panel_threads:
        Intra-plan panel executor width (None → ``REPRO_PANEL_THREADS``).
    """

    def __init__(self, encoder: BCAEEncoder3D, half: bool = True,
                 precision: str = "bit",
                 panel_threads: int | None = None) -> None:
        if not (isinstance(encoder, BCAEEncoder3D) and supports_fast_encode(encoder)):
            raise TypeError(
                f"FastEncoder3D cannot compile {type(encoder).__name__}; "
                "use supports_fast_encode() / make_fast_encoder() to guard"
            )
        self.half = bool(half)
        self.spatial = tuple(encoder.spatial)
        self.code_channels = encoder.code_channels
        self._plan = CompiledStagePlan(encoder.blocks, half=self.half,
                                       precision=precision,
                                       panel_threads=panel_threads)
        self._ws = self._plan.workspace

    @property
    def bn_folds(self) -> list[dict]:
        """Per-BatchNorm fold decisions of the compiled plan (see fast_plan)."""

        return list(self._plan.bn_folds)

    @property
    def plan(self) -> CompiledStagePlan:
        """The compiled stage plan (read-only; used by repro.analysis)."""

        return self._plan

    # ------------------------------------------------------------------
    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._plan.workspace_bytes

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray, horizontal_target: int | None = None) -> np.ndarray:
        """Encode log-transformed wedges ``(B, R, A, H)`` into fp16 codes.

        ``horizontal_target`` zero-pads the last axis inside the first
        block's canvas (the 249→256 padding of §2.3).  The returned fp16
        ``(B, C, r, a, h)`` array is a reused buffer — copy or ``tobytes``
        it before the next call.
        """

        if x.ndim != 4:
            raise ValueError(f"expected (B, R, A, H), got shape {x.shape}")
        n, r, a, h = x.shape
        target = h if horizontal_target is None else int(horizontal_target)
        if target < h:
            raise ValueError(f"horizontal target {target} < input horizontal {h}")

        canvas, interior = self._plan.input_canvas(n, 1, (r, a, target))
        if target != h:
            interior[..., h:] = 0
        if self.half:
            q32, _b = self._plan._grid("in", x, LOG_INPUT_BOUND)
            np.copyto(interior[..., :h], q32[None])
        else:
            np.copyto(interior[..., :h], x[None])

        code = self._plan.run(canvas, (r, a, target), LOG_INPUT_BOUND)
        out16 = self._ws.get(
            "code16", (code.shape[1], code.shape[0]) + code.shape[2:], np.float16
        )
        np.copyto(out16, code.transpose(1, 0, 2, 3, 4), casting="unsafe")
        return out16
