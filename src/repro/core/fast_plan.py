"""Compiled stage-plan engine — the shared fast path for encode *and* decode.

:mod:`repro.core.fast_encode` proved the deployment thesis for the encoder
(§3.2–3.3): compile the module graph once into a flat list of array passes
over preplanned workspaces and the per-call ``np.pad`` / im2col / fp16-cast
allocations disappear, with **bit-identical** output.  The analysis side of
the loop needs the same treatment for the decoders, and every future variant
would otherwise grow its own 500-line kernel file.  This module is that
machinery extracted into a reusable engine: a *stage-vocabulary compiler*
plus an executor, shared by :class:`~repro.core.fast_encode.FastEncoder2D`,
:class:`~repro.core.fast_decode.FastDecoder2D` and their 3D twins
:class:`~repro.core.fast_encode.FastEncoder3D` /
:class:`~repro.core.fast_decode.FastDecoder3D`.

Stage vocabulary
----------------

:func:`stage_kinds` classifies a stage sequence (``nn.Sequential`` or any
iterable of modules); :class:`CompiledStagePlan` compiles it.  The vocabulary
is the union of the BCAE-2D encoder/decoder stages (Algorithms 1–2) and the
3D BCAE++/BCAE-HT residual stacks (paper §2.2–2.3, Figure 4):

=================  ==========================================  =============
kind               module                                      family
=================  ==========================================  =============
``conv``           :class:`repro.nn.Conv2d`                    2D
``conv3d``         :class:`repro.nn.Conv3d`                    3D
``convtranspose3d``:class:`repro.nn.ConvTranspose3d`           3D
``pool``           :class:`repro.nn.AvgPool2d` (k == stride)   2D
``pool3d``         :class:`repro.nn.AvgPool3d` (k == stride)   3D
``up``             :class:`repro.nn.Upsample2d`                2D
``up3d``           :class:`repro.nn.Upsample3d`                3D
``res``            :class:`repro.core.blocks.ResBlock2d`       2D
``down3d``         :class:`repro.core.blocks.DownBlock3d`      3D
``upblock3d``      :class:`repro.core.blocks.UpBlock3d`        3D
``bnorm``          :class:`repro.nn.norm.BatchNormNd` (eval)   2D + 3D
``sigmoid``        :class:`repro.nn.Sigmoid` (head)            2D + 3D
``regout``         :class:`repro.nn.RegOutputTransform` (head) 3D
``identity``       :class:`repro.nn.Identity`                  2D + 3D
=================  ==========================================  =============

Eval-mode BatchNorm (the original BCAE's normalization — arXiv:2111.05423
keeps it, §2.3 of this paper removes it) is a per-channel affine transform
``y = ((x − μ)·(1/σ))·γ + β``, so the residual blocks accept it after each
activation (``down3d`` / ``upblock3d`` with norms) and a standalone
``bnorm`` stage covers any other placement.  A *training-mode* BatchNorm is
not a compilable graph (its output depends on batch statistics) and keeps
the whole stack on the module path — call ``model.eval()`` before
compiling.  See *BatchNorm folding* below for when the affine disappears
into an adjacent convolution entirely.

Convolutions have their weights quantized to the fp16 grid and transposed
into GEMM layout **once**; at run time the exact contraction of
:func:`repro.nn.convolution.conv_forward` executes out of a zero-bordered
padded canvas into a reused buffer.  A transposed convolution is compiled as
the stride-1 convolution :func:`repro.nn.convolution.conv_input_grad`
actually runs: the input is scattered into a persistent *dilated* canvas
(stride-1 zeros between elements, ``k-1`` border — the ``_dilate``/``pad``
arrays the module path reallocates every call), the full correlation runs
through the same GEMM machinery, and the module path's crop happens during
the store.  The 3D residual blocks (``down3d`` / ``upblock3d``) compile to
three conv specs sharing one input canvas (main and skip paths consume the
same quantized store) with the LeakyReLU merges of the 2D ``res`` handler.
``sigmoid`` / ``regout`` compile only as the final stage directly after a
conv-like stage; the plan must end in a conv-like stage (plus an optional
head) so that :meth:`CompiledStagePlan.run` returns exactly what the module
graph returns.

Execution model
---------------

The executor threads two value streams through the ops:

* a padded fp32 **canvas** in channel-major ``(C, B, *spatial)`` layout
  whose interior holds values already snapped onto the fp16 grid — what the
  next convolution consumes.  Channel-major matches the transposed-GEMM
  result orientation, so conv outputs, residual accumulates and canvas
  stores are (semi-)contiguous reshapes instead of 4-byte-strided
  transposes.  The zero border is the padding the module path re-creates
  with ``np.pad`` on every call, allocated and zeroed once (for transposed
  convolutions the persistent zeros also include the dilation gaps);
* an unquantized fp32 **carry** stream — what residual skips, pools and
  upsamples consume (the module path never re-quantizes before those).

``carry is None`` means the canvas interior *is* the exact stream (its
values came straight from a convolution, whose stored grid values are
exact).  Interval analysis over the quantized weights tracks a rigorous
magnitude bound along both streams; the saturating clip of
:func:`repro.nn.amp.quantize_fp16` runs only where the bound says ±65504 is
reachable — behaviour is never traded for speed.  Wherever an op reads fp16
storage into fp32 math, the ufunc loop is forced to fp32 (``dtype=`` /
promotion by a typed scalar), so the arithmetic is exactly the module
path's fp32 arithmetic on the same grid values.

Blocked im2col gathers
----------------------

At paper-scale geometry the monolithic im2col buffer of a 3D convolution no
longer fits any cache (hundreds of MB for a ``(16, 192, 256)`` volume), and
the gather's write traffic dominates the GEMM.  Above
``_BLOCKED_MIN_BYTES`` the executor therefore tiles the output spatial
domain into cache-sized panels of whole innermost-axis rows: each panel is
gathered into a small reusable ``(K, P)`` workspace, multiplied with one
``(O, K) @ (K, P)`` GEMM, and the bias / saturating-clip / fp16-grid-snap
epilogue runs on the panel while it is cache-hot.  Only the ``(O, M)``
result ever touches main memory.  A per-shape calibration probe
(:func:`_blocked_gemm_matches`) proves the panel GEMMs reproduce the
module path's per-sample contraction bit for bit before the formulation is
used — behaviour is never traded for speed.

BatchNorm folding
-----------------

In eval mode a BatchNorm is the fixed per-channel affine ``s_c·x + t_c``
with ``s_c = γ_c/σ_c`` and ``t_c = β_c − μ_c·γ_c/σ_c``, and an affine
directly adjacent to a convolution folds into it algebraically: for
``BatchNorm → Conv`` the scale multiplies the conv's prequantized weight
*columns* (input-channel axis) and the shift collapses into the bias
epilogue ``b'_o = b_o + Σ_{c,k} W_{o,c,k}·t_c``; for ``Conv → BatchNorm``
the scale multiplies the weight *rows* (output-channel axis) and
``b'_o = b_o·s_o + t_o``.  :func:`fold_batchnorm` implements both
orientations; at compile time every ``BatchNorm → Conv`` adjacency is
fused *speculatively* and kept only where a calibration probe
(:func:`_bn_fold_matches`) proves the folded stage reproduces the exact
module chain — affine, entry quantize, contraction — bit for bit.  That
proof usually fails: the module computes ``Σ q(W)·q(s·x + t)`` while the
fold computes ``Σ (q(W)·s)·x + const``, a reassociation that changes fp32
rounding (and, in half mode, moves the fp16 grid snap across the affine)
for any non-trivial statistics.  Exactly as PR 3 did for the two huge
transposed-conv GEMM shapes, the stage then falls back — here to the
standalone ``bnorm`` affine pass, which replicates the module's eval-mode
ufunc chain verbatim and is therefore *always* bit-identical — and the
decision is recorded on :attr:`CompiledStagePlan.bn_folds` with the
reason.  ``Conv → BatchNorm`` pairs always run as conv + affine stage: the
folded conv's output would be off the fp16 grid, breaking the canvas
invariant that stored conv outputs are grid values.  Behaviour is never
traded for speed; the affine stage costs four elementwise passes, noise
next to the convolutions it sits between.

The contract, inherited by every plan the engine compiles, is **bit-identical
output**: for every input accepted by the module path, :meth:`run` returns
exactly the values ``nn.Sequential`` under ``nn.amp.autocast`` produces.
The test suite enforces this across 2D and 3D model variants, batch sizes
and both precision modes, for the encoders and for both decoder heads.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import nn
from ..nn.amp import quantize_fp16
from ..nn.convolution import conv_forward, conv_transpose_output_shape
from ..nn.norm import BatchNormNd
from .blocks import DownBlock3d, ResBlock2d, UpBlock3d

__all__ = [
    "CONV_ENTRY_KINDS",
    "CompiledStagePlan",
    "DECODE_ENTRY_KINDS",
    "FP16_MAX",
    "PANEL_THREADS_ENV",
    "PRECISIONS",
    "ULP_TIER_MAX_ULP",
    "ULP_TIER_RECON_GRID_STEPS",
    "Workspace",
    "entry_kinds_ok",
    "fold_batchnorm",
    "grid_steps_at_scale",
    "max_ulp_diff",
    "stage_kinds",
]

#: Largest finite fp16 magnitude — the saturation point of quantize_fp16.
#: Public: the clip-elision interval analysis here, the decode entry clip in
#: :mod:`repro.core.fast_decode` and the static plan verifier
#: (:mod:`repro.analysis.plan_verifier`) all reason against this bound.
FP16_MAX = 65504.0

_FP16_MAX = FP16_MAX

_F32 = np.float32

#: im2col problem size (bytes of the monolithic gather) above which the
#: panel-blocked formulation is attempted.  Below it the whole-problem
#: buffers fit comfortably in cache and the monolithic paths win.
_BLOCKED_MIN_BYTES = 4 << 20

#: Target byte size of one gathered (K, P) panel — sized to keep the
#: gather destination and the GEMM operands resident in L2.
_PANEL_BYTES = 1 << 20

#: Environment knob for the intra-plan panel executor: the number of worker
#: threads independent im2col panels fan out to inside one GEMM.  An
#: explicit ``panel_threads=`` argument on :class:`CompiledStagePlan` (and
#: everything that forwards to it — the fast wrappers, ``BCAECompressor``,
#: ``ServiceConfig``) overrides the environment.  Panels write disjoint
#: column ranges of the result and each thread owns its workspace slabs, so
#: output bits are identical at every thread count.
PANEL_THREADS_ENV = "REPRO_PANEL_THREADS"

#: The two compilation tiers: ``"bit"`` (default — every fast formulation
#: must be proven bit-identical by its calibration probe) and ``"ulp"``
#: (opt-in serving tier — BN→Conv folds and panel-blocked GEMM formulations
#: whose probe measures a nonzero but bounded stored-grid deviation are
#: kept, each engagement recorded on :attr:`CompiledStagePlan.ulp_sites`).
PRECISIONS = ("bit", "ulp")

#: Per-site cap of the ulp tier: a probe-rejected fold/formulation may be
#: kept under ``precision="ulp"`` only when the probe measured its maximum
#: absolute deviation at or below this many **grid steps at the stage's
#: magnitude scale** — the stored grid's spacing evaluated at the probe's
#: maximum reference magnitude (fp16 grid in half mode, the deployment
#: representation every stage output is snapped onto; fp32 in full).  This
#: is the range-relative error bound of the SZ/ZFP error-bounded-lossy
#: tradition expressed in units of the stored grid (see
#: :func:`grid_steps_at_scale`); *elementwise* ulp distance is deliberately
#: not the metric — reassociated cancellation noise near zero measures in
#: the billions of elementwise ulps while being physically negligible.
ULP_TIER_MAX_ULP = 2

#: End-to-end contract of the ulp tier, asserted by the archive round-trip
#: test and the bench: reconstructions deviate from the bit tier's by at
#: most this many grid steps at the reconstruction scale
#: (``grid_steps_at_scale(recon_ulp, recon_bit, True)``; measured
#: deviations are typically ≤ 1 — the slack covers the rare multi-stage
#: compounding of single-step flips through downstream convolutions).
ULP_TIER_RECON_GRID_STEPS = 4

#: Byte size of one cache-resident block of the fused BatchNorm affine
#: kernel (see :meth:`_BNSpec.apply`).
_BN_BLOCK = 1 << 18

#: A/B switch for the fused BatchNorm traversal — flipped (to False) only
#: by the decode bench to measure the fused kernel against the plain
#: 4-ufunc broadcast chain.  Both evaluate the same per-channel affine in
#: the same operation order, so bits are identical either way.
_FUSED_BNORM = True


def _resolve_panel_threads(requested: int | None) -> int:
    """Panel-executor thread count: explicit argument, else the
    ``REPRO_PANEL_THREADS`` environment knob, else 1 (serial)."""

    if requested is None:
        env = os.environ.get(PANEL_THREADS_ENV, "").strip()
        try:
            requested = int(env) if env else 1
        except ValueError:
            raise ValueError(
                f"{PANEL_THREADS_ENV} must be an integer, got {env!r}"
            ) from None
    return max(1, int(requested))


def max_ulp_diff(a: np.ndarray, b: np.ndarray) -> int:
    """Largest elementwise distance between two same-dtype float arrays,
    in units-in-the-last-place of that dtype's grid.

    The IEEE-754 bit patterns are mapped onto a monotone integer scale
    (two's-complement folding of the sign), where adjacent representable
    floats differ by exactly 1 — the standard ulp metric the calibration
    probes record and the ulp tier bounds.  float16 inputs are measured on
    the fp16 grid (one ulp = one grid step of the stored deployment
    representation), everything else on the fp32 grid.  Any non-finite
    lane on either side that is not bit-equal counts as an infinite
    distance (the probes only feed finite values, so this is defensive).
    """

    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype == np.float16 and b.dtype == np.float16:
        itype, sign_fold = np.int16, np.int64(-1) << 15
        ai = a.view(np.int16).astype(np.int64)
        bi = b.view(np.int16).astype(np.int64)
    else:
        itype = np.int32
        sign_fold = np.int64(-1) << 31
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        ai = a.view(np.int32).astype(np.int64)
        bi = b.view(np.int32).astype(np.int64)
    np.subtract(sign_fold, ai, out=ai, where=ai < 0)
    np.subtract(sign_fold, bi, out=bi, where=bi < 0)
    d = np.abs(ai - bi)
    finite = np.isfinite(a) & np.isfinite(b)
    if not finite.all():
        if not np.array_equal(a[~finite].view(itype), b[~finite].view(itype)):
            return int(np.iinfo(np.int64).max)
        d[~finite] = 0
    return int(d.max()) if d.size else 0


def grid_steps_at_scale(got, ref, half: bool) -> int:
    """Deviation of ``got`` from ``ref`` in grid steps at the data's scale.

    The metric of the ulp tier: the maximum absolute elementwise deviation,
    divided by the stored grid's spacing at the reference's maximum
    magnitude (the fp16 grid in half mode, fp32 in full), rounded up.
    0 means value-equal; 1 means every value moved by less than one grid
    step *as measured at the stage's largest output* — the range-relative
    bound of the SZ/ZFP error-bounded tradition in stored-grid units.

    Elementwise ulp distance (:func:`max_ulp_diff`) is deliberately not
    used here: reassociated fp32 rounding flips the sign of outputs that
    cancel to ≈0, and the elementwise metric counts every denormal between
    them — billions of ulps for a physically negligible deviation — so it
    can never certify a real BN fold.  Scaling the absolute deviation by
    the stage's own grid spacing bounds what any downstream consumer of
    the stored representation can observe.
    """

    got = np.asarray(got, dtype=np.float32)
    ref = np.asarray(ref, dtype=np.float32)
    if got.size == 0 or np.array_equal(got, ref):
        return 0
    err = float(np.max(np.abs(got - ref)))
    if not np.isfinite(err):
        return int(np.iinfo(np.int64).max)
    scale = float(np.max(np.abs(ref)))
    if half:
        step = float(np.spacing(np.float16(min(scale, _FP16_MAX))))
    else:
        step = float(np.spacing(np.float32(scale)))
    return int(np.ceil(err / step))


def _leaky_ok(*acts) -> bool:
    return all(isinstance(a, nn.LeakyReLU) for a in acts)


def _bn_compilable(m) -> bool:
    """Whether a BatchNorm is a compilable *eval-mode* affine.

    Training-mode BatchNorm outputs depend on the batch statistics of the
    call — not a fixed graph, stays on the module path (``model.eval()``
    first).  Non-fp32 parameters/buffers would change the module's ufunc
    dtypes, so they are rejected rather than silently replicated wrong.
    """

    return (
        not m.training
        and all(
            np.asarray(a).dtype == np.float32
            for a in (m.weight.data, m.bias.data, m.running_mean, m.running_var)
        )
    )


def _norm_ok(*norms) -> bool:
    return all(
        isinstance(m, nn.Identity)
        or (isinstance(m, BatchNormNd) and _bn_compilable(m))
        for m in norms
    )


def stage_kinds(stages) -> list[str] | None:
    """Classify ``stages`` into the compiled vocabulary.

    Returns one kind string per stage (see the module-docstring table) when
    every stage is compilable and the head-placement rules hold, else
    ``None``.  Use this as the guard before constructing a
    :class:`CompiledStagePlan`.  3D residual blocks compile with LeakyReLU
    activations and either no normalization (BCAE++/HT, §2.3) or eval-mode
    BatchNorm (the original BCAE); training-mode BatchNorm keeps the stack
    on the module path.
    """

    kinds: list[str] = []
    for stage in stages:
        if isinstance(stage, nn.Conv2d):
            kinds.append("conv")
        elif isinstance(stage, nn.Conv3d):
            kinds.append("conv3d")
        elif isinstance(stage, nn.ConvTranspose3d):
            kinds.append("convtranspose3d")
        elif isinstance(stage, nn.AvgPool2d):
            kinds.append("pool")
        elif isinstance(stage, nn.AvgPool3d):
            kinds.append("pool3d")
        elif isinstance(stage, nn.Upsample2d):
            kinds.append("up")
        elif isinstance(stage, nn.Upsample3d):
            kinds.append("up3d")
        elif isinstance(stage, ResBlock2d):
            if not _leaky_ok(stage.act1, stage.act2):
                return None
            kinds.append("res")
        elif isinstance(stage, DownBlock3d):
            if not _leaky_ok(stage.act1, stage.act2, stage.act3):
                return None
            if not _norm_ok(stage.norm1, stage.norm2, stage.norm3):
                return None
            kinds.append("down3d")
        elif isinstance(stage, UpBlock3d):
            if not _leaky_ok(stage.act1, stage.act2, stage.act3):
                return None
            if not _norm_ok(stage.norm1, stage.norm2, stage.norm3):
                return None
            kinds.append("upblock3d")
        elif isinstance(stage, BatchNormNd):
            if not _bn_compilable(stage):
                return None
            kinds.append("bnorm")
        elif isinstance(stage, nn.Sigmoid):
            kinds.append("sigmoid")
        elif isinstance(stage, nn.RegOutputTransform):
            kinds.append("regout")
        elif isinstance(stage, nn.Identity):
            kinds.append("identity")
        else:
            return None

    # run() returns the stored output of the last functional stage; only a
    # conv-like stage (whose stored grid values equal the module output
    # exactly) or a head directly downstream of one qualifies — a trailing
    # res/pool/up/bnorm would return the *quantized* store of an
    # unquantized module output.
    conv_like = ("conv", "conv3d", "convtranspose3d")
    heads = ("sigmoid", "regout")
    body = [k for k in kinds if k != "identity"]
    if not body or body[-1] not in conv_like + heads:
        return None
    for pos, kind in enumerate(body):
        if kind in heads and (pos != len(body) - 1 or body[pos - 1] not in conv_like):
            return None
    return kinds


#: Stage kinds whose first consumer is a convolution reading the quantized
#: input canvas — what an encoder-wrapper-snapped canvas may lead with.
CONV_ENTRY_KINDS = frozenset(
    {"conv", "conv3d", "convtranspose3d", "res", "down3d", "upblock3d"}
)

#: What a decoder-wrapper-prepared code canvas may lead with: the entry
#: prep there is a saturating *clip* of values already on the fp16 grid —
#: the identity on every payload a saturating compressor can produce — so
#: pools/upsamples (which consume the unquantized stream) stay bit-exact.
DECODE_ENTRY_KINDS = CONV_ENTRY_KINDS | {"pool", "pool3d", "up", "up3d"}


def entry_kinds_ok(kinds: list[str] | None, allowed: set[str],
                   entry: frozenset | set = CONV_ENTRY_KINDS) -> bool:
    """Kind-set check plus the shared entry-placement rule for wrappers.

    The encoder/decoder wrappers prepare the input canvas once, standing in
    for the *first convolution's* entry quantize, so the first functional
    stage must come from ``entry``.  The encoder wrapper grid-snaps
    arbitrary network input — a leading pool/upsample/``bnorm`` consumes
    the unquantized stream in the module path, and a pre-snapped canvas
    would break bit identity (``CONV_ENTRY_KINDS``).  The decoder wrapper
    only clips grid-valued codes, which additionally makes leading
    pools/upsamples exact (``DECODE_ENTRY_KINDS``).  A leading ``bnorm``
    never compiles through a wrapper.  Every model-zoo encoder starts with
    a convolution or residual block; the BCAE-2D decoders start with an
    upsample.
    """

    if kinds is None or not set(kinds) <= allowed:
        return False
    body = [k for k in kinds if k != "identity"]
    return bool(body) and body[0] in entry


@dataclasses.dataclass
class _ConvSpec:
    """One convolution with its weight pre-transposed into GEMM layout."""

    wt: np.ndarray   # (C*prod(k), O) F-contiguous — tensordot's right operand
    wtT: np.ndarray  # (O, C*prod(k)) C-contiguous — the transposed-GEMM operand
    bias: np.ndarray | None
    bias_col: np.ndarray | None  # (O, 1) view for the transposed orientation
    kernel: tuple[int, ...]
    stride: tuple[int, ...]
    padding: tuple[tuple[int, int], ...]
    out_channels: int
    w_l1: float     # max over output channels of Σ|w| — bound slope
    bias_max: float
    w_raw: np.ndarray | None = None  # (O, C, *k) prequantized — fold source

    @classmethod
    def _from_weight(cls, w: np.ndarray, bias, kernel, stride, padding) -> "_ConvSpec":
        o = w.shape[0]
        nd = w.ndim - 2
        k = int(np.prod(kernel))
        # tensordot reshapes the transposed kernel into an F-contiguous
        # (K, O) view; BLAS picks its kernel by operand layout, so the
        # cached weight must keep that exact layout to stay bit-identical.
        wt = np.asfortranarray(
            w.transpose(tuple(range(1, 2 + nd)) + (0,)).reshape(w.shape[1] * k, o),
            dtype=np.float32,
        )
        bias = None if bias is None else bias.astype(np.float32)
        return cls(
            wt=wt,
            wtT=np.ascontiguousarray(wt.T),
            bias=bias,
            bias_col=None if bias is None else bias.reshape(-1, 1),
            kernel=tuple(kernel),
            stride=tuple(stride),
            padding=tuple(padding),
            out_channels=o,
            w_l1=float(np.abs(w.reshape(o, -1)).sum(axis=1).max()),
            bias_max=0.0 if bias is None else float(np.abs(bias).max()),
            w_raw=np.ascontiguousarray(w, dtype=np.float32),
        )

    @classmethod
    def from_module(cls, conv, half: bool) -> "_ConvSpec":
        w = quantize_fp16(conv.weight.data) if half else np.asarray(conv.weight.data)
        bias = None if conv.bias is None else conv.bias.data
        return cls._from_weight(w, bias, conv.kernel_size, conv.stride, conv.padding)

    def out_bound(self, in_bound: float) -> float:
        """Rigorous |output| bound given an |input| magnitude bound."""

        return self.w_l1 * in_bound + self.bias_max


@dataclasses.dataclass
class _ConvTSpec:
    """A transposed convolution compiled to the conv the adjoint runs.

    ``conv_input_grad`` dilates its input by ``stride``, pads by ``k - 1``
    and correlates with the flipped, channel-swapped kernel at stride 1;
    :attr:`spec` is that stride-1 convolution with the effective kernel
    prepared in GEMM layout (quantized first, exactly like the module
    path).  The original transposed-convolution geometry is kept for the
    output-shape computation and the crop.
    """

    spec: _ConvSpec
    kernel: tuple[int, ...]
    stride: tuple[int, ...]
    padding: tuple[tuple[int, int], ...]
    output_padding: tuple[int, ...]
    #: Store-spec of the dilated input canvas this stage consumes.
    store_padding: tuple[tuple[int, int], ...]
    dilation: tuple[int, ...]

    @classmethod
    def from_module(cls, convt, half: bool) -> "_ConvTSpec":
        w = quantize_fp16(convt.weight.data) if half else np.asarray(convt.weight.data)
        nd = w.ndim - 2
        flip = (slice(None), slice(None)) + (slice(None, None, -1),) * nd
        weff = np.ascontiguousarray(np.swapaxes(w[flip], 0, 1))  # (O, I, *k)
        bias = None if convt.bias is None else convt.bias.data
        spec = _ConvSpec._from_weight(
            weff, bias, convt.kernel_size, (1,) * nd,
            tuple((k - 1, k - 1) for k in convt.kernel_size),
        )
        return cls(
            spec=spec,
            kernel=tuple(convt.kernel_size),
            stride=tuple(convt.stride),
            padding=tuple(convt.padding),
            output_padding=tuple(convt.output_padding),
            store_padding=tuple((k - 1, k - 1) for k in convt.kernel_size),
            dilation=tuple(convt.stride),
        )

    @property
    def out_channels(self) -> int:
        return self.spec.out_channels

    def out_spatial(self, spatial: tuple[int, ...]) -> tuple[int, ...]:
        return conv_transpose_output_shape(
            spatial, self.kernel, self.stride, self.padding, self.output_padding
        )

    def out_bound(self, in_bound: float) -> float:
        return self.spec.out_bound(in_bound)


@dataclasses.dataclass
class _BNSpec:
    """One eval-mode BatchNorm as the per-channel affine it is (§ fold docs).

    :attr:`mean` / :attr:`inv_std` / :attr:`gamma` / :attr:`beta` are the
    operands of the module's exact four-ufunc eval chain
    ``((x − μ)·inv_std)·γ + β`` (``inv_std`` precomputed with the module's
    own expression ``1.0 / np.sqrt(running_var + eps)``);
    :attr:`scale` / :attr:`shift` are the composed single-affine
    coefficients the fold uses.  Statistics are snapshot at construction —
    rebuild after training (the compressor's fingerprint covers buffers).
    """

    mean: np.ndarray      # (C,) running_mean
    inv_std: np.ndarray   # (C,) 1/sqrt(running_var + eps), module arithmetic
    gamma: np.ndarray     # (C,) weight
    beta: np.ndarray      # (C,) bias
    scale: np.ndarray     # (C,) folded affine slope  s = inv_std·γ
    shift: np.ndarray     # (C,) folded affine offset t = β − μ·s
    num_features: int

    @classmethod
    def from_module(cls, bn) -> "_BNSpec":
        mean = np.asarray(bn.running_mean, dtype=np.float32)
        var = np.asarray(bn.running_var, dtype=np.float32)
        # The module's exact expression (NEP 50: python-float eps stays
        # weak, the chain is fp32 end to end).
        inv_std = 1.0 / np.sqrt(var + bn.eps)
        gamma = np.asarray(bn.weight.data, dtype=np.float32)
        beta = np.asarray(bn.bias.data, dtype=np.float32)
        scale = (inv_std * gamma).astype(np.float32)
        shift = (beta - mean * scale).astype(np.float32)
        return cls(
            mean=mean,
            inv_std=inv_std.astype(np.float32),
            gamma=gamma,
            beta=beta,
            scale=scale,
            shift=shift,
            num_features=int(mean.shape[0]),
        )

    # ------------------------------------------------------------------
    def _col(self, a: np.ndarray, ndim: int) -> np.ndarray:
        return a.reshape((self.num_features,) + (1,) * (ndim - 1))

    def apply(self, ws: "Workspace", key, src: np.ndarray) -> np.ndarray:
        """The module's eval forward on a channel-major stream, verbatim.

        The chain is the module's exact four fp32 ufuncs — subtract μ,
        multiply inv_std, multiply γ, add β.  Elementwise fp32 ops round
        identically regardless of layout or blocking, so the values are bit
        for bit the module path's ``(x_hat·γ + β)`` on the same stream.

        Two traversals implement that same chain:

        * the broadcast path — four whole-array passes with per-channel
          operand columns, used for small streams (and as the bench's A/B
          reference via the ``_FUSED_BNORM`` switch);
        * the fused path — one pass over memory: per (channel, sample) the
          stream is cut into ``_BN_BLOCK``-sized row blocks, the first
          subtract pulls a block out of the (possibly strided) source into
          the contiguous output once, and the remaining three ufuncs rewrite
          it while it is cache-resident with *scalar* per-channel operands.
          Each element is loaded from DRAM once and stored once, versus four
          load/store round trips for the broadcast path.
        """

        out = ws.get((key, "bn"), src.shape)
        if not _FUSED_BNORM or src[:1].nbytes <= _BN_BLOCK:
            np.subtract(src, self._col(self.mean, src.ndim), out=out)
            np.multiply(out, self._col(self.inv_std, src.ndim), out=out)
            np.multiply(out, self._col(self.gamma, src.ndim), out=out)
            np.add(out, self._col(self.beta, src.ndim), out=out)
            return out
        mean, inv_std, gamma, beta = self.mean, self.inv_std, self.gamma, self.beta
        n = src.shape[1]
        sp0 = src.shape[2] if src.ndim > 2 else 1
        row_bytes = max(src[0, 0].nbytes // max(sp0, 1), 1)
        step = max(1, _BN_BLOCK // row_bytes)
        for ci in range(src.shape[0]):
            mu, i, g, b = mean[ci], inv_std[ci], gamma[ci], beta[ci]
            for bi in range(n):
                for z0 in range(0, sp0, step):
                    blk = out[ci, bi, z0:z0 + step]
                    np.subtract(src[ci, bi, z0:z0 + step], mu, out=blk)
                    np.multiply(blk, i, out=blk)
                    np.multiply(blk, g, out=blk)
                    np.add(blk, b, out=blk)
        return out

    def apply_channels(self, vals: np.ndarray) -> np.ndarray:
        """The same chain on a per-channel ``(C,)`` vector (fill values)."""

        x_hat = (vals - self.mean) * self.inv_std
        return x_hat * self.gamma + self.beta

    def out_bound(self, in_bound: float) -> float:
        """Rigorous |output| bound given an |input| magnitude bound.

        ``|((x−μ)·i)·γ + β| ≤ |i·γ|·(|x|+|μ|) + |β|`` per channel; computed
        in float64 and inflated by 1 ppm to stay an upper bound on the
        module's fp32 intermediate roundings (bounds only gate clip
        elision, so inflation is always safe).
        """

        s = np.abs(self.inv_std.astype(np.float64) * self.gamma.astype(np.float64))
        b = s * (in_bound + np.abs(self.mean.astype(np.float64)))
        b += np.abs(self.beta.astype(np.float64))
        return float(b.max() * (1.0 + 1e-6))


def fold_batchnorm(bn_spec, conv_weight: np.ndarray, conv_bias,
                   direction: str) -> tuple[np.ndarray, np.ndarray]:
    """Fold a BatchNorm affine into an adjacent convolution's weight/bias.

    ``direction="bn_conv"`` folds ``Conv(BN(x))``: the per-input-channel
    scale ``s_c`` multiplies the weight *columns* and the shift enters the
    bias epilogue as ``b'_o = b_o + Σ_{c,k} W_{o,c,k}·t_c``.
    ``direction="conv_bn"`` folds ``BN(Conv(x))``: the per-output-channel
    scale multiplies the weight *rows* and ``b'_o = b_o·s_o + t_o``.
    ``conv_weight`` is the (prequantized, in half mode) ``(O, C, *k)``
    kernel.  Returns ``(folded_weight, folded_bias)`` as fp32 arrays.

    This is exact *algebra*, not exact *floating point*: whether the folded
    stage reproduces the module chain bit for bit is decided by the
    calibration probe (:func:`_bn_fold_matches`), never assumed.  Two
    caveats the probe also covers: the ``bn_conv`` bias absorption assumes
    every kernel tap reads a normalized value, which zero padding violates
    at the borders whenever ``t ≠ 0`` (the module pads the *normalized*
    map with zeros, not with ``t``); and any fold reassociates fp32
    products.  Either effect fails the probe and keeps the exact affine
    stage.
    """

    if direction not in ("bn_conv", "conv_bn"):
        raise ValueError(f"unknown fold direction {direction!r}")
    w = np.asarray(conv_weight, dtype=np.float32)
    o = w.shape[0]
    nd = w.ndim - 2
    s, t = bn_spec.scale, bn_spec.shift
    if direction == "bn_conv":
        w_f = (w * s.reshape((1, -1) + (1,) * nd)).astype(np.float32)
        shift_in = (w.reshape(o, w.shape[1], -1)
                    * t.reshape(1, -1, 1)).sum(axis=(1, 2), dtype=np.float32)
        b_f = shift_in if conv_bias is None else (conv_bias + shift_in)
    else:
        w_f = (w * s.reshape((-1, 1) + (1,) * nd)).astype(np.float32)
        b_f = t.copy() if conv_bias is None else (conv_bias * s + t)
    return w_f, b_f.astype(np.float32)


def _bn_fold_matches(bn_spec, spec: "_ConvSpec", folded: "_ConvSpec",
                     half: bool) -> tuple[bool, int]:
    """Calibrate one speculative ``BatchNorm → Conv`` fold.

    The exact chain is ``q(((x−μ)·i)·γ + β)`` into the convolution (``q``
    is the fp16-grid entry quantize in half mode, identity in full); the
    folded chain is ``q(x)`` into the scale/shift-fused weights.  One dense
    probe — random values across the exponent range, exact zeros and
    negatives, values straddling the fp16 denormal boundary where
    power-of-two scale folds break — is pushed through both.

    Returns ``(bit_ok, grid_ulp)``: whether the final (post-quantize, in
    half mode) outputs are bit-equal — the only signal the default
    ``precision="bit"`` tier consults — and the measured maximum deviation
    of those outputs in grid steps at the stage's scale
    (:func:`grid_steps_at_scale`), which the opt-in ulp tier bounds
    against :data:`ULP_TIER_MAX_ULP`.  Under the bit tier any deviation rejects
    the fold and the stage runs as the exact affine pass instead; for
    non-trivial statistics the reassociated fp32 rounding deviates and
    this probe is expected to reject (recorded on the plan).  Behaviour is
    never traded for speed.
    """

    nd = len(spec.kernel)
    c = spec.w_raw.shape[1]
    rng = np.random.default_rng(0xB409)
    spatial = tuple(k + s for k, s in zip(spec.kernel, spec.stride))
    x = rng.standard_normal((2, c) + spatial).astype(np.float32)
    x *= np.float32(2.0) ** rng.integers(-24, 5, x.shape).astype(np.float32)
    # Exact zeros/negatives and fp16-denormal-boundary lanes.
    flat = x.reshape(-1)
    flat[:: 7] = 0.0
    flat[1:: 11] *= np.float32(-1.0)
    flat[2:: 13] = np.float32(2.0 ** -14) * flat[2:: 13].clip(-2.0, 2.0)

    def q(a):
        return quantize_fp16(a) if half else a

    shape = (1, c) + (1,) * nd
    x_hat = (x - bn_spec.mean.reshape(shape)) * bn_spec.inv_std.reshape(shape)
    bn_out = x_hat * bn_spec.gamma.reshape(shape) + bn_spec.beta.reshape(shape)
    ref = conv_forward(q(bn_out), spec.w_raw, spec.stride, spec.padding,
                       bias=spec.bias)
    got = conv_forward(q(x), folded.w_raw, folded.stride, folded.padding,
                       bias=folded.bias)
    if half:
        refq = quantize_fp16(ref)
        gotq = quantize_fp16(got)
        return (bool(np.array_equal(gotq, refq)),
                grid_steps_at_scale(gotq, refq, True))
    return bool(np.array_equal(got, ref)), grid_steps_at_scale(got, ref, False)


def _try_fold_bn_conv(bn_spec, spec: "_ConvSpec", half: bool,
                      precision: str = "bit",
                      ) -> tuple["_ConvSpec | None", str, int]:
    """Speculatively fold ``BN → Conv``.

    Returns ``(folded spec | None, reason, max_ulp)``.  Under the default
    ``precision="bit"`` only a probe-proven bit-equal fold is kept
    (``max_ulp`` is then 0 by definition of the probe).  Under
    ``precision="ulp"`` a probe-rejected fold is still kept when its
    measured deviation in grid steps at the stage's scale
    (:func:`grid_steps_at_scale`) is within :data:`ULP_TIER_MAX_ULP` — the
    caller must record the returned bound on the plan's
    :attr:`~CompiledStagePlan.ulp_sites`.
    """

    w_f, b_f = fold_batchnorm(bn_spec, spec.w_raw, spec.bias, "bn_conv")
    folded = _ConvSpec._from_weight(w_f, b_f, spec.kernel, spec.stride,
                                    spec.padding)
    bit_ok, raw_ulp = _bn_fold_matches(bn_spec, spec, folded, half)
    if bit_ok:
        return folded, "folded: probe proved bit-equality", 0
    if precision == "ulp" and raw_ulp <= ULP_TIER_MAX_ULP:
        return folded, (f"folded under ulp tier: probe measured max "
                        f"{raw_ulp} grid step(s) at stage scale "
                        f"(cap {ULP_TIER_MAX_ULP})"), raw_ulp
    return None, ("kept affine stage: fold reassociates fp32 rounding "
                  "(calibration probe mismatch on this build)"), raw_ulp


#: None until calibrated: whether the integer round-to-nearest-even grid
#: snap reproduces numpy's f32→f16→f32 cast pair bit for bit on this build.
_FAST_SNAP_OK: bool | None = None

#: f32 bit patterns: |x| below this is in the f16 denormal range (2^-14).
_F16_NORMAL_MIN_BITS = np.uint32(0x38800000)
_ABS_MASK = np.uint32(0x7FFFFFFF)
_ROUND_BIAS = np.uint32(0x0FFF)
_MANTISSA_KEEP = np.uint32(0xFFFFE000)
#: fp32 spacing around 0.75 is exactly 2^-24 — the f16 denormal grid — so
#: (x + 0.75) - 0.75 is an exact round-to-nearest-even onto that grid for
#: every |x| < 0.25 (Sterbenz: the subtraction is exact).
_DENORM_MAGIC = np.float32(0.75)


def _snap_bits(src: np.ndarray, u: np.ndarray, uf: np.ndarray,
               a: np.ndarray, mask: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Round contiguous fp32 ``src`` to the f16 grid; returns ``uf``.

    numpy's f16 conversions are software on many builds (~20× slower than a
    copy), and the quantize-everywhere semantics of §3.3 make them the hot
    path's single largest cost.  This is the same round-to-nearest-even in
    vectorized integer ops: add ``0x0FFF + lsb`` at the 13-bit boundary and
    mask (IEEE bit encoding carries mantissa rollover into the exponent
    correctly), with the f16-denormal range (|x| < 2^-14, coarser fixed
    grid) handled by the exact magic-add.  ``u``/``a``/``mask``/``d`` are
    caller-owned scratch of ``src``'s shape; ``uf`` is the fp32 view of
    ``u``, which doubles as the result (no output copy pass).

    Domain: callers guarantee ``|x| ≤ 65504`` (values are post-clip or
    carry a proven bound), so the cast's overflow-to-inf region never
    arises; NaN and ±inf lanes pass through like the cast pair.
    """

    bits = src.view(np.uint32)
    np.bitwise_and(bits, _ABS_MASK, out=a)
    np.less(a, _F16_NORMAL_MIN_BITS, out=mask)
    np.right_shift(bits, 13, out=u)
    np.bitwise_and(u, np.uint32(1), out=u)
    np.add(u, _ROUND_BIAS, out=u)
    np.add(bits, u, out=u)
    np.bitwise_and(u, _MANTISSA_KEEP, out=u)
    if mask.any():
        # Denormal lanes: exact RNE onto the 2^-24 grid via the magic add
        # (ties land on the sum's mantissa parity = the grid index parity),
        # computed full-array then merged by mask.  The magic add collapses
        # -tiny to +0.0 where the cast keeps -0.0, so the source sign bit
        # is OR-ed back (a no-op on every nonzero lane).  errstate hides
        # the invalid flag of signalling-NaN lanes (never selected).
        with np.errstate(invalid="ignore"):
            np.add(src, _DENORM_MAGIC, out=d)
        np.subtract(d, _DENORM_MAGIC, out=d)
        dbits = d.view(np.uint32)
        np.bitwise_and(bits, np.uint32(0x80000000), out=a)
        np.bitwise_or(dbits, a, out=dbits)
        np.copyto(uf, d, where=mask)
    return uf


def _fast_snap_ok() -> bool:
    """Calibrate :func:`_snap_bits` against numpy's cast pair, once.

    The probe covers every f16 bit pattern (all grid points, ±inf, NaNs),
    rounding midpoints on both sides, the denormal/normal boundary and
    dense randoms across the exponent range; equality is checked on raw
    bits.  A build where any lane deviates falls back to the two-cast
    path — behaviour is never traded for speed.
    """

    global _FAST_SNAP_OK
    if _FAST_SNAP_OK is None:
        grid = np.arange(65536, dtype=np.uint16).view(np.float16).astype(np.float32)
        finite = grid[np.isfinite(grid)]
        rng = np.random.default_rng(0xF16)
        probes = [
            grid,
            np.nextafter(finite, np.float32(np.inf), dtype=np.float32),
            np.nextafter(finite, np.float32(-np.inf), dtype=np.float32),
            # Exact midpoints between adjacent positive grid points (the
            # round-half-to-even cases), and a wide random sweep.
            ((finite[finite > 0][:-1] + finite[finite > 0][1:]) * np.float32(0.5)),
            (rng.uniform(-1.0, 1.0, 4096).astype(np.float32)
             * np.float32(2.0) ** rng.integers(-30, 17, 4096).astype(np.float32)),
        ]
        v = np.concatenate(probes)
        # Restrict to the call domain: |x| ≤ 65504 plus non-finite lanes
        # (the pipeline clips or bounds everything else before snapping).
        v = np.ascontiguousarray(v[(np.abs(v) <= np.float32(_FP16_MAX))
                                   | ~np.isfinite(v)])
        ref = v.astype(np.float16).astype(np.float32)
        u = np.empty(v.shape, np.uint32)
        out = _snap_bits(
            v, u, u.view(np.float32), np.empty(v.shape, np.uint32),
            np.empty(v.shape, np.bool_), np.empty_like(v),
        )
        _FAST_SNAP_OK = bool(
            np.array_equal(out.view(np.uint32), ref.view(np.uint32))
        )
    return _FAST_SNAP_OK


#: (n, rows, K, O) → whether the whole-batch transposed GEMM reproduces the
#: per-sample reference contraction bit for bit on this BLAS build.
_TRANSPOSED_GEMM_OK: dict = {}


def _transposed_gemm_matches(n: int, rows: int, K: int, o: int) -> bool:
    """Calibrate the transposed GEMM formulation for one problem shape.

    ``conv_forward``'s contraction is per-sample ``(rows, K) @ (K, O)``
    GEMMs; the fast path prefers one whole-batch ``(O, K) @ (K, n·rows)``
    call on operands built directly in transposed layout (the im2col gather
    then reads whole output rows instead of 12-byte kernel taps, ~6×
    faster).  Every output element is the same K-term dot product, and BLAS
    packs both operand layouts into the same micro-kernels with the same
    k-accumulation order — *except* for some small-shape kernel dispatches.
    Since the summation order is a function of problem shape only (never of
    the data), one dense-random probe per shape decides the formulation:
    bit-equal → transposed fast path, else the reference orientation.
    Behaviour is never traded for speed; the probe costs two small GEMMs
    once per (batch, shape).
    """

    key = (n, rows, K, o)
    hit = _TRANSPOSED_GEMM_OK.get(key)
    if hit is None:
        rng = np.random.default_rng(0x5EED)
        a = rng.standard_normal((n * rows, K)).astype(np.float32)
        b = np.asfortranarray(rng.standard_normal((K, o)), dtype=np.float32)
        ref = np.empty((n * rows, o), dtype=np.float32)
        for i in range(n):
            np.dot(a[i * rows:(i + 1) * rows], b, out=ref[i * rows:(i + 1) * rows])
        got = np.empty((o, n * rows), dtype=np.float32)
        np.dot(np.ascontiguousarray(b.T), np.ascontiguousarray(a.T), out=got)
        hit = bool(np.array_equal(got.T, ref))
        _TRANSPOSED_GEMM_OK[key] = hit
    return hit


#: (n, rows, K, O, P) → ``(ulp32, ulp16)``: measured max deviation of the
#: panel-blocked transposed GEMMs from the per-sample reference contraction
#: on this BLAS build, in raw fp32 ulps and in fp16 grid steps of the
#: quantized outputs ((0, 0) = bit-identical).
_BLOCKED_GEMM_ULP: dict = {}

#: (n, rows, K, O, P) → whether reference-orientation row panels reproduce
#: the per-sample reference contraction bit for bit on this BLAS build.
_BLOCKED_REF_GEMM_OK: dict = {}

#: (n, rows, K, O, P) → accepted zero-padded output-channel count (0 = no
#: padding reproduces the reference bits) for the repacked panel GEMM.
_BLOCKED_PAD_GEMM_OK: dict = {}

#: Padded output-channel counts the repack probe tries, in order.  Small
#: multiples of the BLAS micro-kernel register tile: padding O∈{1,2} up to
#: one of these makes the panel GEMM dispatch the well-shaped kernel.
_PAD_CHANNELS = (8, 16)

#: Repacking is only attempted for pathologically narrow GEMMs — the two
#: calibration-rejected transposed-conv shapes have O ∈ {1, 2}.
_PAD_MAX_O = 2


def _panel_cols(K: int, ow: int, m: int) -> int:
    """Panel width in columns: whole innermost-axis rows within the budget."""

    per_row = K * ow * 4
    rows = max(1, _PANEL_BYTES // max(per_row, 1))
    return min(int(rows) * ow, m)


def _blocked_gemm_ulp(n: int, rows: int, K: int, o: int, P: int) -> tuple[int, int]:
    """Calibrate the panel-blocked GEMM formulation for one problem shape.

    The blocked executor runs one ``(O, K) @ (K, P)`` GEMM per gathered
    panel (plus one tail GEMM when ``P`` does not divide the column count).
    Each output element is the same K-term dot product as the reference
    per-sample contraction, and BLAS's k-accumulation order is a function
    of problem shape only — so one dense-random probe per shape, comparing
    every panel against the per-sample reference on raw bits, measures the
    formulation's deviation once per (batch, shape, panel) — comparable in
    cost to a single module-path convolution at the same shape.

    Returns ``(ulp32, ulp16)``: the maximum deviation in grid steps at the
    probe's scale (:func:`grid_steps_at_scale`) measured on the fp32
    results and on their fp16-snapped images.  ``ulp32 == 0`` means
    bit-identical — the only value the default ``precision="bit"`` tier
    accepts; the opt-in ulp tier bounds the metric of the plan's stored
    grid (``ulp16`` when the fp16 snap follows, ``ulp32`` otherwise)
    against :data:`ULP_TIER_MAX_ULP`.  Behaviour is never traded for
    speed.
    """

    key = (n, rows, K, o, P)
    hit = _BLOCKED_GEMM_ULP.get(key)
    if hit is None:
        rng = np.random.default_rng(0xB10C)
        m = n * rows
        a = rng.standard_normal((m, K), dtype=np.float32)
        b = np.asfortranarray(rng.standard_normal((K, o), dtype=np.float32))
        ref = np.empty((m, o), dtype=np.float32)
        for i in range(n):
            np.dot(a[i * rows:(i + 1) * rows], b, out=ref[i * rows:(i + 1) * rows])
        bt = np.ascontiguousarray(b.T)
        panel = np.empty((K, P), dtype=np.float32)
        got = np.empty((o, P), dtype=np.float32)
        err32 = err16 = 0.0
        exact = True
        for c0 in range(0, m, P):
            pw = min(P, m - c0)
            if pw == P:
                np.copyto(panel, a[c0:c0 + P].T)
                np.dot(bt, panel, out=got)
                gp = got.T
            else:
                tail = np.ascontiguousarray(a[c0:c0 + pw].T)
                gp = np.dot(bt, tail).T
            rp = ref[c0:c0 + pw]
            if not np.array_equal(gp, rp):
                exact = False
                err32 = max(err32, float(np.max(np.abs(gp - rp))))
                # Probe dot products stay far inside the fp16 range
                # (|x| ≲ 4·√K), so the plain cast is the grid snap.
                d16 = (gp.astype(np.float16).astype(np.float32)
                       - rp.astype(np.float16).astype(np.float32))
                err16 = max(err16, float(np.max(np.abs(d16))))
        if exact:
            hit = (0, 0)
        else:
            scale = float(np.max(np.abs(ref)))
            s32 = float(np.spacing(np.float32(scale)))
            s16 = float(np.spacing(np.float16(min(scale, _FP16_MAX))))
            # A non-bit-equal probe must report ≥ 1 on the fp32 metric:
            # ulp32 == 0 is the bit tier's acceptance signal.
            hit = (max(1, int(np.ceil(err32 / s32))),
                   int(np.ceil(err16 / s16)))
        _BLOCKED_GEMM_ULP[key] = hit
    return hit


def _blocked_gemm_matches(n: int, rows: int, K: int, o: int, P: int) -> bool:
    """Bit-tier gate on :func:`_blocked_gemm_ulp` (deviation must be 0)."""

    return _blocked_gemm_ulp(n, rows, K, o, P)[0] == 0


def _blocked_pad_gemm_matches(n: int, rows: int, K: int, o: int, P: int) -> int:
    """Calibrate the repacked (zero-padded output channel) panel GEMM.

    The two paper-scale transposed-conv GEMMs with O ≤ 2 fail
    :func:`_blocked_gemm_ulp` because BLAS dispatches a narrow
    matrix-vector-ish kernel for 1–2 result rows whose k-accumulation
    differs from the per-sample reference.  Repacking the weight operand as
    ``(O_pad, K)`` with ``O_pad − O`` zero rows makes the same panels
    dispatch the well-shaped GEMM kernel; rows ``O..O_pad`` of the result
    are discarded.  Zero weight rows cannot change the retained rows'
    dot products — but whether the *padded* dispatch reproduces the
    reference bits is still decided by this probe, never assumed: each
    candidate ``O_pad`` in :data:`_PAD_CHANNELS` is compared panel-by-panel
    against the per-sample reference on raw bits, and the first bit-equal
    padding wins.  Returns the accepted ``O_pad``, or 0 when none matches
    (the shape then falls back to reference-orientation row panels).
    """

    key = (n, rows, K, o, P)
    hit = _BLOCKED_PAD_GEMM_OK.get(key)
    if hit is None:
        rng = np.random.default_rng(0xB10E)
        m = n * rows
        a = rng.standard_normal((m, K), dtype=np.float32)
        b = np.asfortranarray(rng.standard_normal((K, o), dtype=np.float32))
        ref = np.empty((m, o), dtype=np.float32)
        for i in range(n):
            np.dot(a[i * rows:(i + 1) * rows], b, out=ref[i * rows:(i + 1) * rows])
        bt = np.ascontiguousarray(b.T)
        panel = np.empty((K, P), dtype=np.float32)
        hit = 0
        for opad in _PAD_CHANNELS:
            wp = np.zeros((opad, K), dtype=np.float32)
            wp[:o] = bt
            got = np.empty((opad, P), dtype=np.float32)
            ok = True
            for c0 in range(0, m, P):
                pw = min(P, m - c0)
                if pw == P:
                    np.copyto(panel, a[c0:c0 + P].T)
                    np.dot(wp, panel, out=got)
                    ok = np.array_equal(got[:o].T, ref[c0:c0 + P])
                else:
                    tail = np.ascontiguousarray(a[c0:c0 + pw].T)
                    got_t = np.dot(wp, tail)
                    ok = np.array_equal(got_t[:o].T, ref[c0:c0 + pw])
                if not ok:
                    break
            if ok:
                hit = opad
                break
        _BLOCKED_PAD_GEMM_OK[key] = hit
    return hit


def _blocked_ref_gemm_matches(n: int, rows: int, K: int, o: int, P: int) -> bool:
    """Calibrate reference-orientation row panels for one problem shape.

    The fallback blocked formulation keeps ``conv_forward``'s operand
    orientation — C-contiguous ``(P, K)`` row panels against the
    F-contiguous ``(K, O)`` kernel — and splits the per-sample GEMM along
    its m dimension only.  Useful where the transposed panels fail
    calibration (very small output-channel counts dispatch to different
    BLAS kernels per orientation); m-blocking almost always preserves bits
    because BLAS packs row panels independently.  Same probe protocol as
    :func:`_blocked_gemm_matches`.
    """

    key = (n, rows, K, o, P)
    hit = _BLOCKED_REF_GEMM_OK.get(key)
    if hit is None:
        rng = np.random.default_rng(0xB10D)
        m = n * rows
        a = rng.standard_normal((m, K), dtype=np.float32)
        b = np.asfortranarray(rng.standard_normal((K, o), dtype=np.float32))
        ref = np.empty((m, o), dtype=np.float32)
        for i in range(n):
            np.dot(a[i * rows:(i + 1) * rows], b, out=ref[i * rows:(i + 1) * rows])
        got = np.empty((m, o), dtype=np.float32)
        for c0 in range(0, m, P):
            pw = min(P, m - c0)
            np.dot(np.ascontiguousarray(a[c0:c0 + pw]), b, out=got[c0:c0 + pw])
        hit = bool(np.array_equal(got, ref))
        _BLOCKED_REF_GEMM_OK[key] = hit
    return hit


class Workspace:
    """Named, shape-checked reusable buffers (compiled-plan/compressor scratch)."""

    def __init__(self) -> None:
        self._bufs: dict = {}

    def get(self, key, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf

    def snap_scratch(self, key, shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
        """Scratch bundle for one :func:`_snap_bits` call site, one lookup.

        Returns ``(u, uf, a, mask, d)`` with ``uf`` the fp32 view of ``u``
        (the snap result) — the hot path calls this per op per run, so the
        buffers are cached as a single tuple.
        """

        bundle = self._bufs.get(key)
        if bundle is None or bundle[0].shape != tuple(shape):
            shape = tuple(shape)
            u = np.empty(shape, np.uint32)
            bundle = (
                u,
                u.view(np.float32),
                np.empty(shape, np.uint32),
                np.empty(shape, np.bool_),
                np.empty(shape, np.float32),
            )
            self._bufs[key] = bundle
        return bundle

    def canvas(self, key, c: int, n: int, spatial: tuple[int, ...],
               padding, dtype=np.float32,
               dilation: tuple[int, ...] | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Zero-bordered channel-major canvas ``(C, B, *spatial)`` + interior view.

        The border is zeroed once at allocation; every later pass writes
        only the interior, so the zeros (= the padding the module path
        re-creates with ``np.pad`` on every call) persist.  With
        ``dilation`` the interior is a strided view: element ``i`` of each
        axis lands at ``pad_lo + i·dilation``, and the zeros between (=
        the ``_dilate`` array of a transposed convolution) persist the same
        way.
        """

        nd = len(spatial)
        if dilation is None:
            dilation = (1,) * nd
        dil_sz = tuple((s - 1) * d + 1 for s, d in zip(spatial, dilation))
        shape = (c, n) + tuple(
            ds + pl + ph for ds, (pl, ph) in zip(dil_sz, padding)
        )
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype=dtype)
            self._bufs[key] = buf
        interior = buf[(slice(None), slice(None)) + tuple(
            slice(pl, pl + ds, d)
            for ds, d, (pl, _ph) in zip(dil_sz, dilation, padding)
        )]
        return buf, interior

    def nbytes(self) -> int:
        return sum(
            sum(a.nbytes for a in b) if isinstance(b, tuple) else b.nbytes
            for b in self._bufs.values()
        )


class CompiledStagePlan:
    """A stage sequence compiled into reusable-workspace array passes.

    Parameters
    ----------
    stages:
        Iterable of modules within the :func:`stage_kinds` vocabulary.
        Weights are snapshot at construction — rebuild after training.
    half:
        Replicate the fp16 autocast numerics (the deployment mode, §3.3).
        When False the full-precision module path is replicated instead.
    workspace:
        Optional shared :class:`Workspace`.  Two *structurally identical*
        plans (e.g. the two decoder heads of one BCAE) may share a workspace
        **and** a prefix when run sequentially: every buffer an op reads is
        fully rewritten earlier in the same :meth:`run`, so interleaved runs
        only reuse memory, never stale values.  Structurally different plans
        sharing keys stay correct too (buffers reallocate on shape mismatch)
        but lose the steady-state reuse.
    prefix:
        Workspace key namespace for this plan's buffers.
    precision:
        ``"bit"`` (default): every fast formulation must be proven
        bit-identical by its calibration probe — behaviour is never traded
        for speed.  ``"ulp"`` (opt-in serving tier): BN→Conv folds and
        panel-blocked GEMM formulations whose probe measured a nonzero but
        bounded deviation (≤ :data:`ULP_TIER_MAX_ULP` fp32 ulps per site)
        are kept for speed; every engagement is recorded on
        :attr:`ulp_sites` and checked by the plan verifier's bound chain.
        Outputs remain deterministic — the same plan produces the same
        bits on every run at every thread count — they are just no longer
        the module graph's bits at the relaxed sites.
    panel_threads:
        Worker count for the intra-plan panel executor (blocked im2col
        panels of one GEMM run concurrently; NumPy releases the GIL inside
        ``np.dot``).  ``None`` reads the ``REPRO_PANEL_THREADS``
        environment knob, default 1 (serial).  Each thread owns its
        workspace slabs and panels write disjoint output columns, so
        results are bit-identical at any thread count.
    """

    def __init__(self, stages, half: bool = True,
                 workspace: Workspace | None = None, prefix: str = "",
                 precision: str = "bit",
                 panel_threads: int | None = None) -> None:
        kinds = stage_kinds(stages)
        if kinds is None:
            raise TypeError(
                "stage sequence is outside the compiled vocabulary; "
                "guard with stage_kinds()"
            )
        if precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        self.half = bool(half)
        self.precision = precision
        self.panel_threads = _resolve_panel_threads(panel_threads)
        self.prefix = prefix
        self._ws = Workspace() if workspace is None else workspace
        #: Relaxed-numerics engagements of the ulp tier: one record per
        #: site (BN fold or blocked-GEMM formulation) the bit-equality
        #: probe rejected but the ulp tier kept, with the probe's measured
        #: max fp32-ulp deviation.  Always empty under ``precision="bit"``
        #: — the plan verifier errors otherwise.
        self.ulp_sites: list[dict] = []
        #: Per-GEMM-site execution stats (formulation, panel/thread counts)
        #: recorded by :meth:`_gemm` on each run — see :meth:`plan_stats`.
        self._gemm_stats: dict = {}
        #: Lazily created panel executor (``panel_threads − 1`` workers;
        #: the caller thread always runs slot 0).
        self._panel_executor: concurrent.futures.ThreadPoolExecutor | None = None
        #: Zero-padded ``(O_pad, K)`` weight operands for repacked GEMMs.
        self._wpad: dict = {}
        # Canvases stay fp32 even in half mode: their values are fp16 grid
        # points, but numpy's casting copy of *strided* views is ~7× slower
        # than a same-dtype copy, and the im2col gather reads canvases far
        # more often than stores write them.
        self._cdtype = np.float32
        #: Per-BatchNorm fold decisions (stage index, placement, folded
        #: flag, reason) — the per-stage record the fold contract requires.
        self.bn_folds: list[dict] = []
        #: Static-verification record, attached by
        #: :func:`repro.analysis.plan_verifier.verify_plan` (None until a
        #: verifier pass has run).  Mirrors the :attr:`bn_folds` idiom: the
        #: plan carries its own decision/diagnostic trail so calibration
        #: rejections and legality checks are explainable after the fact.
        self.verification: dict | None = None
        self._ops: list[tuple[str, object]] = []
        for stage, kind in zip(stages, kinds):
            if kind in ("conv", "conv3d"):
                op: object = _ConvSpec.from_module(stage, self.half)
            elif kind == "convtranspose3d":
                op = _ConvTSpec.from_module(stage, self.half)
            elif kind in ("pool", "pool3d"):
                op = stage.kernel_size
            elif kind in ("up", "up3d"):
                op = stage.scale_factor
            elif kind == "res":
                op = (
                    _ConvSpec.from_module(stage.conv1, self.half),
                    _ConvSpec.from_module(stage.conv2, self.half),
                    float(stage.act1.negative_slope),
                    float(stage.act2.negative_slope),
                )
            elif kind == "down3d":
                op = (
                    _ConvSpec.from_module(stage.down, self.half),
                    _ConvSpec.from_module(stage.conv, self.half),
                    _ConvSpec.from_module(stage.skip, self.half),
                    float(stage.act1.negative_slope),
                    float(stage.act2.negative_slope),
                    float(stage.act3.negative_slope),
                ) + self._block_norms(stage)
            elif kind == "upblock3d":
                op = (
                    _ConvTSpec.from_module(stage.up, self.half),
                    _ConvSpec.from_module(stage.conv, self.half),
                    _ConvTSpec.from_module(stage.skip, self.half),
                    float(stage.act1.negative_slope),
                    float(stage.act2.negative_slope),
                    float(stage.act3.negative_slope),
                ) + self._block_norms(stage)
            elif kind == "bnorm":
                op = _BNSpec.from_module(stage)
            elif kind == "regout":
                op = (float(stage.offset), float(stage.scale),
                      float(stage.max_exponent))
            else:
                op = None
            self._ops.append((kind, op))
        self._fold_batchnorms()
        self._release_fold_sources()
        self._nd = _plan_nd(self._ops)
        #: Per-op gather-view cache: sliding_window_view / transpose /
        #: reshape cost ~50µs of pure Python per conv — the views are
        #: rebuilt only when their backing buffers are reallocated
        #: (identity-checked), which only happens on a shape change.
        self._wins: dict = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _block_norms(stage) -> tuple:
        """The three block norms as ``_BNSpec``/None, in path order."""

        return tuple(
            _BNSpec.from_module(m) if isinstance(m, BatchNormNd) else None
            for m in (stage.norm1, stage.norm2, stage.norm3)
        )

    def _fold_batchnorms(self) -> None:
        """Speculative BN folds over the compiled ops (see module docs).

        Two fold sites exist in this vocabulary:

        * a standalone ``bnorm`` whose next non-identity op is an ordinary
          convolution (``BatchNorm → Conv``) — on success the affine stage
          collapses to ``identity`` and the conv spec is replaced by the
          scale/shift-fused one;
        * ``norm1`` inside a residual block, which sits directly before the
          block's inner 3³ convolution.

        Every other placement (``norm2``/``norm3`` feed the residual sum
        through an activation; ``Conv → BatchNorm`` would store off-grid
        values in the conv canvas) runs as the exact affine pass.  Each
        decision lands in :attr:`bn_folds` with its reason.
        """

        conv_kinds = ("conv", "conv3d")
        for i, (kind, op) in enumerate(self._ops):
            if kind == "bnorm":
                nxt = _next_consumer(self._ops, i)
                if nxt in conv_kinds:
                    j = next(
                        k for k in range(i + 1, len(self._ops))
                        if self._ops[k][0] != "identity"
                    )
                    folded, reason, fold_ulp = _try_fold_bn_conv(
                        op, self._ops[j][1], self.half, self.precision
                    )
                    if folded is not None:
                        self._ops[i] = ("identity", None)
                        self._ops[j] = (self._ops[j][0], folded)
                        if fold_ulp:
                            self.ulp_sites.append(
                                {"site": "bn-fold", "stage": i,
                                 "placement": "bnorm->conv",
                                 "max_ulp": fold_ulp}
                            )
                    self.bn_folds.append(
                        {"stage": i, "site": "bnorm->conv",
                         "folded": folded is not None, "reason": reason}
                    )
                else:
                    self.bn_folds.append(
                        {"stage": i, "site": "bnorm", "folded": False,
                         "reason": "kept affine stage: no adjacent "
                                   "convolution to absorb it"}
                    )
            elif kind in ("down3d", "upblock3d"):
                specs, norms = op[:6], op[6:]
                if not any(norms):
                    continue
                bn1, bn2, bn3 = norms
                if bn1 is not None:
                    folded, reason, fold_ulp = _try_fold_bn_conv(
                        bn1, specs[1], self.half, self.precision
                    )
                    if folded is not None:
                        specs = specs[:1] + (folded,) + specs[2:]
                        bn1 = None
                        if fold_ulp:
                            self.ulp_sites.append(
                                {"site": "bn-fold", "stage": i,
                                 "placement": "norm1->inner-conv",
                                 "max_ulp": fold_ulp}
                            )
                    self.bn_folds.append(
                        {"stage": i, "site": "norm1->inner-conv",
                         "folded": folded is not None, "reason": reason}
                    )
                for site, bn in (("norm2", bn2), ("norm3", bn3)):
                    if bn is not None:
                        self.bn_folds.append(
                            {"stage": i, "site": site, "folded": False,
                             "reason": "kept affine stage: activation "
                                       "between conv and norm"}
                        )
                self._ops[i] = (kind, specs + (bn1, bn2, bn3))

    def _release_fold_sources(self) -> None:
        """Drop the ``w_raw`` fold sources once folding has run.

        ``w_raw`` is a third full copy of every conv weight (next to ``wt``
        and ``wtT``) needed only by the compile-time fold probes; plans are
        long-lived and pooled per serving worker, so it is released rather
        than carried.
        """

        def specs(op):
            if isinstance(op, _ConvSpec):
                yield op
            elif isinstance(op, _ConvTSpec):
                yield op.spec
            elif isinstance(op, tuple):
                for part in op:
                    yield from specs(part)

        for _kind, op in self._ops:
            for spec in specs(op):
                spec.w_raw = None

    # ------------------------------------------------------------------
    @property
    def workspace(self) -> Workspace:
        return self._ws

    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._ws.nbytes()

    def plan_stats(self) -> dict:
        """Execution summary: what compiled to what, and what ran how.

        Returns a plain-dict observability record: per-stage kind counts,
        BN fold decisions, per-GEMM-site formulation/panel/thread stats (as
        recorded by the most recent :meth:`run` — empty until a run has
        happened, since panel counts depend on the batch geometry),
        ulp-tier engagements, and the workspace footprint.  Printed by
        ``repro-tpc analyze --stats``.
        """

        kind_counts: dict[str, int] = {}
        for kind, _op in self._ops:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        return {
            "precision": self.precision,
            "half": self.half,
            "panel_threads": self.panel_threads,
            "stage_kinds": kind_counts,
            "bn_folds": {
                "folded": sum(1 for d in self.bn_folds if d["folded"]),
                "kept": sum(1 for d in self.bn_folds if not d["folded"]),
                "decisions": [dict(d) for d in self.bn_folds],
            },
            "gemms": {
                repr(k): dict(v)
                for k, v in sorted(self._gemm_stats.items(), key=repr)
            },
            "ulp_sites": [dict(s) for s in self.ulp_sites],
            "workspace_bytes": self.workspace_bytes,
        }

    def input_padding(self) -> tuple[tuple[int, int], ...]:
        """Padding the input canvas needs for the plan's first consumer."""

        return _next_store_spec(self._ops, -1, self._nd)[0]

    def input_canvas(self, n: int, c: int,
                     spatial: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """The plan's persistent input canvas ``(canvas, interior view)``.

        Channel-major fp32 ``(C, B, *spatial)``.  Callers fill the interior
        with grid-exact values before :meth:`run`; the zero border doubles
        as the first convolution's padding (and, for a leading transposed
        convolution, the dilation gaps stay zero between the strided
        interior positions).
        """

        padding, dilation = _next_store_spec(self._ops, -1, self._nd)
        return self._ws.canvas((self.prefix, "in"), c, n, spatial,
                               padding, self._cdtype, dilation)

    # ------------------------------------------------------------------
    def run(self, canvas: np.ndarray, spatial: tuple[int, ...], bound: float,
            carry: np.ndarray | None = None, carry_bound: float = 0.0) -> np.ndarray:
        """Execute the plan; returns the module-graph output values.

        ``canvas`` is typically :meth:`input_canvas` with the interior
        filled; ``bound`` is a rigorous magnitude bound on those values.
        The returned array is channel-major fp32 ``(C, B, *out_spatial)`` —
        transpose to batch-major with a zero-copy ``.transpose`` view — and
        is a reused workspace buffer: copy it before the next :meth:`run`
        on this workspace.
        """

        ops = self._ops
        nd = self._nd
        result: np.ndarray | None = None
        for i, (kind, op) in enumerate(ops):
            store_spec = _next_store_spec(ops, i, nd)
            key = (self.prefix, i)
            if kind in ("conv", "conv3d"):
                canvas, result, spatial, bound = self._conv_store(
                    key, op, canvas, bound, store_spec
                )
                carry = None
            elif kind == "convtranspose3d":
                canvas, result, spatial, bound = self._convt_store(
                    key, op, canvas, spatial, bound, store_spec
                )
                carry = None
            elif kind in ("pool", "pool3d", "up", "up3d"):
                if carry is None:
                    # Input came from a conv: stored grid values are the
                    # exact fp32 values the module path consumes.
                    src, src_bound = (
                        _interior(canvas, _canvas_padding(canvas, spatial), spatial),
                        bound,
                    )
                else:
                    # The module path pools/upsamples the *unquantized*
                    # fp32 stream.
                    src, src_bound = carry, carry_bound
                if kind in ("pool", "pool3d"):
                    carry, carry_bound = self._pool(key, op, src, spatial, src_bound)
                    spatial = tuple(s // k for s, k in zip(spatial, op))
                else:
                    carry, carry_bound = self._up(key, op, src, spatial, src_bound)
                    spatial = tuple(s * f for s, f in zip(spatial, op))
                canvas, result, bound = self._store_stream(
                    key, carry, carry_bound, spatial, store_spec
                )
            elif kind == "bnorm":
                if carry is None:
                    # Input came from a conv: stored grid values are the
                    # exact fp32 stream the module's norm consumes.
                    src, src_bound = (
                        _interior(canvas, _canvas_padding(canvas, spatial), spatial),
                        bound,
                    )
                else:
                    # The module path normalizes the *unquantized* stream.
                    src, src_bound = carry, carry_bound
                carry = op.apply(self._ws, key, src)
                carry_bound = op.out_bound(src_bound)
                canvas, result, bound = self._store_stream(
                    key, carry, carry_bound, spatial, store_spec
                )
            elif kind == "res":
                # The post-block canvas store is dead when the next consumer
                # is a pool/upsample/norm: those read the carry stream
                # directly.
                store = _next_consumer(ops, i) not in (
                    "pool", "up", "pool3d", "up3d", "bnorm"
                )
                canvas, dest, bound, carry, carry_bound = self._res(
                    key, op, canvas, spatial, bound, carry, carry_bound,
                    store_spec, store,
                )
                if store:
                    result = dest
            elif kind in ("down3d", "upblock3d"):
                canvas, result, spatial, bound, carry, carry_bound = self._block3d(
                    key, op, canvas, spatial, bound, store_spec,
                    transposed=(kind == "upblock3d"),
                )
            elif kind == "sigmoid":
                result = self._sigmoid(key, result)
            elif kind == "regout":
                result = self._regout(key, op, result)
            # "identity": the module pass-through — state is unchanged.

        assert result is not None
        return result

    # ------------------------------------------------------------------
    def _gemm(self, key, spec: _ConvSpec, canvas: np.ndarray,
              epilogue_bound: float | None = None):
        """The exact ``conv_forward`` contraction out of a padded canvas.

        Returns ``(y2, out_spatial, cm, fused)``: the GEMM result (bias
        added), the output spatial shape, a closure mapping any array of
        the result's shape to a channel-major ``(O, B, *out)`` view, and
        whether the quantize epilogue already ran (see below).

        Three bit-identical formulations, chosen per problem shape by the
        calibration probes:

        * the reference orientation — the im2col gather follows tensordot's
          element order, so ``np.dot`` sees the same operand matrices
          ``conv_forward`` builds internally (identical BLAS call,
          identical bits), executed per sample exactly as ``conv_forward``
          does;
        * the transposed orientation — the same matrices built directly in
          ``(K, B·rows)`` layout with one whole-batch ``wtT @ atT`` call,
          used only where the calibration probe proved it reproduces the
          per-sample reference bit for bit.  Its ``(O, B·rows)`` result
          makes the channel-major store a contiguous reshape;
        * the panel-blocked orientation — the transposed gather and GEMM
          executed one cache-sized panel of whole innermost-axis rows at a
          time, with the bias / saturating-clip / fp16-grid-snap epilogue
          fused into the panel loop (``epilogue_bound`` is the rigorous
          magnitude bound; ``fused=True`` signals the caller the values
          are already on the grid).  Engaged above ``_BLOCKED_MIN_BYTES``,
          only where :func:`_blocked_gemm_matches` proved bit-equality —
          the monolithic ``(K, M)`` gather buffer never materializes.

        Payload bits stay invariant to micro-batch composition in every
        formulation: each output element is a fixed K-term dot product.
        The canvas holds quantized (grid) values, so the module path's
        quantize-on-entry is a no-op and is skipped.
        """

        c, n = canvas.shape[:2]
        nd = len(spec.kernel)
        kernel = spec.kernel
        stride = spec.stride
        out_spatial = tuple(
            (canvas.shape[2 + i] - kernel[i]) // stride[i] + 1 for i in range(nd)
        )
        rows = int(np.prod(out_spatial))
        m = n * rows
        K = c * int(np.prod(kernel))
        o = spec.out_channels

        spatial_axes = tuple(range(2, 2 + nd))
        ow = out_spatial[-1]
        P = _panel_cols(K, ow, m)
        # m = n·prod(out_spatial) is a whole multiple of ow by construction,
        # so panels always cover whole innermost-axis rows.
        if m * K * 4 >= _BLOCKED_MIN_BYTES:
            n_full = m // P
            n_panels = n_full + (1 if m % P else 0)
            T = max(1, min(self.panel_threads, n_full))

            def cm_t(arr, n=n, out_spatial=out_spatial):
                return arr.reshape((arr.shape[0], n) + out_spatial)

            u32, u16 = _blocked_gemm_ulp(n, rows, K, o, P)
            # The fp16 metric only governs when the fused epilogue actually
            # snaps this GEMM's output onto the fp16 grid; otherwise the
            # raw fp32 values flow downstream and the fp32 metric applies.
            u = u16 if (self.half and epilogue_bound is not None) else u32
            if u32 == 0 or (self.precision == "ulp" and u <= ULP_TIER_MAX_ULP):
                if u:
                    self._note_ulp_site(key, "blocked-gemm", u)
                y2 = self._blocked_gemm(key, spec, canvas, out_spatial, P,
                                        epilogue_bound)
                self._gemm_stats[key] = {
                    "formulation": "blocked", "m": m, "K": K, "o": o,
                    "opad": 0, "panels": n_panels, "threads": T,
                    "max_ulp": int(u),
                }
                return y2, out_spatial, cm_t, True
            opad = (_blocked_pad_gemm_matches(n, rows, K, o, P)
                    if o <= _PAD_MAX_O else 0)
            if opad:
                y2 = self._blocked_gemm(key, spec, canvas, out_spatial, P,
                                        epilogue_bound, opad=opad)
                self._gemm_stats[key] = {
                    "formulation": "blocked_pad", "m": m, "K": K, "o": o,
                    "opad": opad, "panels": n_panels, "threads": T,
                    "max_ulp": 0,
                }
                return y2, out_spatial, cm_t, True
            if _blocked_ref_gemm_matches(n, rows, K, o, P):
                y2 = self._blocked_ref_gemm(key, spec, canvas, out_spatial, P,
                                            epilogue_bound)
                self._gemm_stats[key] = {
                    "formulation": "blocked_ref", "m": m, "K": K, "o": o,
                    "opad": 0, "panels": n_panels, "threads": T,
                    "max_ulp": 0,
                }

                def cm(arr, n=n, out_spatial=out_spatial, nd=nd):
                    return arr.reshape((n,) + out_spatial + (-1,)).transpose(
                        (1 + nd, 0) + tuple(range(1, 1 + nd))
                    )

                return y2, out_spatial, cm, True

        if _transposed_gemm_matches(n, rows, K, o):
            self._gemm_stats[key] = {
                "formulation": "transposed", "m": m, "K": K, "o": o,
                "opad": 0, "panels": 1, "threads": 1, "max_ulp": 0,
            }
            atT = self._ws.get((key, "atT"), (K, m))
            cached = self._wins.get(key)
            if cached is None or cached[0] is not canvas or cached[1] is not atT:
                win = sliding_window_view(canvas, kernel, axis=spatial_axes)
                win = win[(slice(None), slice(None))
                          + tuple(slice(None, None, s) for s in stride)]
                tvk = win.transpose(
                    (0,) + tuple(range(2 + nd, 2 + 2 * nd))
                    + (1,) + tuple(range(2, 2 + nd))
                )
                cached = (canvas, atT, tvk,
                          atT.reshape((c,) + kernel + (n,) + out_spatial))
                self._wins[key] = cached
            np.copyto(cached[3], cached[2])
            y2 = self._ws.get((key, "y2T"), (o, m))
            np.dot(spec.wtT, atT, out=y2)
            if spec.bias_col is not None:
                y2 += spec.bias_col

            def cm(arr, n=n, out_spatial=out_spatial):
                return arr.reshape((arr.shape[0], n) + out_spatial)
        else:
            self._gemm_stats[key] = {
                "formulation": "reference", "m": m, "K": K, "o": o,
                "opad": 0, "panels": 1, "threads": 1, "max_ulp": 0,
            }
            at = self._ws.get((key, "at"), (m, K))
            cached = self._wins.get(key)
            if cached is None or cached[0] is not canvas or cached[1] is not at:
                win = sliding_window_view(canvas, kernel, axis=spatial_axes)
                win = win[(slice(None), slice(None))
                          + tuple(slice(None, None, s) for s in stride)]
                tv = win.transpose(
                    (1,) + tuple(range(2, 2 + nd))
                    + (0,) + tuple(range(2 + nd, 2 + 2 * nd))
                )
                cached = (canvas, at, tv,
                          at.reshape((n,) + out_spatial + (c,) + kernel))
                self._wins[key] = cached
            np.copyto(cached[3], cached[2])
            y2 = self._ws.get((key, "y2"), (m, o))
            # Per-sample GEMM blocks, matching conv_forward exactly.
            for i in range(n):
                np.dot(at[i * rows:(i + 1) * rows], spec.wt,
                       out=y2[i * rows:(i + 1) * rows])
            if spec.bias is not None:
                y2 += spec.bias

            def cm(arr, n=n, out_spatial=out_spatial, nd=nd):
                return arr.reshape((n,) + out_spatial + (-1,)).transpose(
                    (1 + nd, 0) + tuple(range(1, 1 + nd))
                )

        return y2, out_spatial, cm, False

    # ------------------------------------------------------------------
    def _note_ulp_site(self, key, site: str, max_ulp: int) -> None:
        """Record one ulp-tier engagement (idempotent per (key, site))."""

        for rec in self.ulp_sites:
            if rec.get("key") == key and rec["site"] == site:
                return
        self.ulp_sites.append(
            {"site": site, "key": key, "max_ulp": int(max_ulp)}
        )

    def _panel_pool(self, workers: int) -> concurrent.futures.ThreadPoolExecutor:
        """The plan's shared panel executor, (re)built for ≥ ``workers``."""

        pool = self._panel_executor
        if pool is None or getattr(pool, "_repro_workers", 0) < workers:
            if pool is not None:
                pool.shutdown(wait=True)
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-panel"
            )
            pool._repro_workers = workers
            self._panel_executor = pool
        return pool

    def _blocked_gemm(self, key, spec: _ConvSpec, canvas: np.ndarray,
                      out_spatial: tuple[int, ...], P: int,
                      epilogue_bound: float | None, opad: int = 0) -> np.ndarray:
        """Panel-blocked transposed gather + GEMM with a fused epilogue.

        Gathers whole innermost-axis output rows into a cache-sized
        ``(K, P)`` panel, runs one ``(O, K) @ (K, P)`` GEMM, applies bias —
        and, in half mode with ``epilogue_bound`` given, the saturating
        clip (only when the bound says ±65504 is reachable) and the
        fp16-grid snap — while the panel is hot, then writes the finished
        columns into the monolithic ``(O, M)`` result.  Bits are identical
        to the calibrated probe formulation; only the memory traffic
        changes: the ``(K, M)`` im2col buffer never exists and the epilogue
        reads come from cache instead of DRAM.

        With ``opad > 0`` the repacked weight operand — ``(O_pad, K)`` with
        zero rows beyond ``O`` — is used so BLAS dispatches its well-shaped
        GEMM kernel for the two paper-scale O ≤ 2 transposed-conv shapes
        (probed by :func:`_blocked_pad_gemm_matches`); the epilogue and the
        store only ever touch the real ``[:O]`` rows.

        Full panels fan out over the plan's panel executor: slot ``s`` of
        ``T`` owns panels ``s, s+T, s+2T, …`` plus its private workspace
        slabs (acquired on the caller thread before any worker starts, so
        the parallel region performs no allocation and no workspace-dict
        mutation).  Panels write disjoint column ranges of ``y2`` and the
        panel split is independent of ``T``, so output bits are identical
        at every thread count; the tail panel (when ``P ∤ M``) runs on the
        caller thread after the join.
        """

        c, n = canvas.shape[:2]
        nd = len(spec.kernel)
        kernel = spec.kernel
        stride = spec.stride
        rows = int(np.prod(out_spatial))
        m = n * rows
        K = c * int(np.prod(kernel))
        o = spec.out_channels
        ow = out_spatial[-1]
        outer_shape = (n,) + out_spatial[:-1]

        cached = self._wins.get(key)
        if cached is None or cached[0] is not canvas:
            win = sliding_window_view(canvas, kernel, axis=tuple(range(2, 2 + nd)))
            win = win[(slice(None), slice(None))
                      + tuple(slice(None, None, s) for s in stride)]
            # (C, *k, B, *out): kernel taps lead so one gathered w-row is a
            # (C, *k, ow) block — the panel's column group.
            tvk = win.transpose(
                (0,) + tuple(range(2 + nd, 2 + 2 * nd))
                + (1,) + tuple(range(2, 2 + nd))
            )
            cached = (canvas, tvk)
            self._wins[key] = cached
        tvk = cached[1]

        if opad:
            wt_op = self._wpad.get((key, opad))
            if wt_op is None:
                wt_op = np.zeros((opad, K), dtype=np.float32)
                wt_op[:o] = spec.wtT
                self._wpad[(key, opad)] = wt_op
        else:
            wt_op = spec.wtT
        oy = opad if opad else o

        y2 = self._ws.get((key, "y2B"), (o, m))
        lead = (slice(None),) * (1 + nd)
        snap = self.half and epilogue_bound is not None
        clip = snap and epilogue_bound >= _FP16_MAX
        use_bits = _fast_snap_ok()

        n_full = m // P
        tail = m - n_full * P
        T = max(1, min(self.panel_threads, n_full))

        # Per-slot slabs, all acquired before any worker runs.
        slots = []
        for slot in range(T):
            dst = self._ws.get((key, "panel", slot), ((c,) + kernel + (P,)))
            yp = self._ws.get((key, "yp", slot), (oy, P))
            scr = s16 = None
            if snap:
                if use_bits:
                    scr = self._ws.snap_scratch((key, "psnap", slot), (o, P))
                else:
                    s16 = self._ws.get((key, "ps16", slot), (o, P), np.float16)
            slots.append((dst, dst.reshape(K, P), yp, scr, s16))  # lint: allow-alloc — per-slot setup, caller thread

        def run_slot(slot: int) -> None:
            dst, mat, yp, scr, s16 = slots[slot]
            for c0 in range(slot * P, n_full * P, T * P):
                # Gather whole w-rows: each copy moves a (C, *k, ow) block.
                for j in range(P // ow):
                    idx = np.unravel_index((c0 + j * ow) // ow, outer_shape)
                    np.copyto(
                        dst[lead + (slice(j * ow, (j + 1) * ow),)],
                        tvk[lead + tuple(idx)],
                    )
                np.dot(wt_op, mat, out=yp)
                ypv = yp[:o]
                if spec.bias_col is not None:
                    ypv += spec.bias_col
                if snap:
                    if clip:
                        np.clip(ypv, -_FP16_MAX, _FP16_MAX, out=ypv)
                    if use_bits:
                        u, uf, a, mask, d = scr
                        out = _snap_bits(ypv, u, uf, a, mask, d)
                    else:
                        np.copyto(s16, ypv, casting="unsafe")
                        np.copyto(ypv, s16)
                        out = ypv
                    np.copyto(y2[:, c0:c0 + P], out)
                else:
                    np.copyto(y2[:, c0:c0 + P], ypv)

        if T == 1:
            run_slot(0)
        else:
            pool = self._panel_pool(T - 1)
            futures = [pool.submit(run_slot, s) for s in range(1, T)]
            run_slot(0)
            for f in futures:
                f.result()

        if tail:
            c0 = n_full * P
            dst = self._ws.get((key, "panel_t"), ((c,) + kernel + (tail,)))
            mat = dst.reshape(K, tail)
            yp = self._ws.get((key, "yp_t"), (oy, tail))
            for j in range(tail // ow):
                idx = np.unravel_index((c0 + j * ow) // ow, outer_shape)
                np.copyto(
                    dst[lead + (slice(j * ow, (j + 1) * ow),)],
                    tvk[lead + tuple(idx)],
                )
            np.dot(wt_op, mat, out=yp)
            ypv = yp[:o]
            if spec.bias_col is not None:
                ypv += spec.bias_col
            if snap:
                if clip:
                    np.clip(ypv, -_FP16_MAX, _FP16_MAX, out=ypv)
                if use_bits:
                    u, uf, a, mask, d = self._ws.snap_scratch(
                        (key, "psnap_t"), ypv.shape
                    )
                    np.copyto(y2[:, c0:c0 + tail],
                              _snap_bits(ypv, u, uf, a, mask, d))
                else:
                    s16 = self._ws.get((key, "ps16_t"), ypv.shape, np.float16)
                    np.copyto(s16, ypv, casting="unsafe")
                    np.copyto(ypv, s16)
                    np.copyto(y2[:, c0:c0 + tail], ypv)
            else:
                np.copyto(y2[:, c0:c0 + tail], ypv)
        return y2

    # ------------------------------------------------------------------
    def _blocked_ref_gemm(self, key, spec: _ConvSpec, canvas: np.ndarray,
                          out_spatial: tuple[int, ...], P: int,
                          epilogue_bound: float | None) -> np.ndarray:
        """Row-panel blocked GEMM in ``conv_forward``'s operand orientation.

        Gathers whole innermost-axis output rows into a cache-sized
        ``(P, K)`` panel and multiplies straight into the corresponding
        contiguous rows of the monolithic ``(M, O)`` result, fusing the
        bias / clip / fp16-grid-snap epilogue on the hot rows.  Used where
        the transposed panels fail calibration (tiny output-channel
        counts); bits are identical to the per-sample reference
        (calibrated), only the ``(M, K)`` im2col buffer disappears.

        Parallelized exactly like :meth:`_blocked_gemm`: slot ``s`` of
        ``T`` owns full panels ``s, s+T, …`` with private slabs acquired
        before any worker starts, panels write disjoint *row* ranges of
        ``y2``, and the tail runs on the caller thread after the join —
        bit-identical at every thread count.
        """

        c, n = canvas.shape[:2]
        nd = len(spec.kernel)
        kernel = spec.kernel
        stride = spec.stride
        rows = int(np.prod(out_spatial))
        m = n * rows
        K = c * int(np.prod(kernel))
        o = spec.out_channels
        ow = out_spatial[-1]
        outer_shape = (n,) + out_spatial[:-1]

        cached = self._wins.get(key)
        if cached is None or cached[0] is not canvas:
            win = sliding_window_view(canvas, kernel, axis=tuple(range(2, 2 + nd)))
            win = win[(slice(None), slice(None))
                      + tuple(slice(None, None, s) for s in stride)]
            # (B, *out, C, *k): one gathered w-row is an (ow, C, *k) block.
            tv = win.transpose(
                (1,) + tuple(range(2, 2 + nd))
                + (0,) + tuple(range(2 + nd, 2 + 2 * nd))
            )
            cached = (canvas, tv)
            self._wins[key] = cached
        tv = cached[1]

        y2 = self._ws.get((key, "y2R"), (m, o))
        snap = self.half and epilogue_bound is not None
        clip = snap and epilogue_bound >= _FP16_MAX
        use_bits = _fast_snap_ok()

        n_full = m // P
        tail = m - n_full * P
        T = max(1, min(self.panel_threads, n_full))

        # Per-slot slabs, all acquired before any worker runs.
        slots = []
        for slot in range(T):
            panel = self._ws.get((key, "rpanel", slot), (P, K))
            scr = s16 = None
            if snap:
                if use_bits:
                    scr = self._ws.snap_scratch((key, "rsnap", slot), (P, o))
                else:
                    s16 = self._ws.get((key, "rs16", slot), (P, o), np.float16)
            slots.append((panel, panel.reshape((P, c) + kernel), scr, s16))  # lint: allow-alloc — per-slot setup, caller thread

        def run_slot(slot: int) -> None:
            panel, pv, scr, s16 = slots[slot]
            for c0 in range(slot * P, n_full * P, T * P):
                for j in range(P // ow):
                    idx = np.unravel_index((c0 + j * ow) // ow, outer_shape)
                    np.copyto(pv[j * ow:(j + 1) * ow], tv[tuple(idx)])
                yp = y2[c0:c0 + P]
                np.dot(panel, spec.wt, out=yp)
                if spec.bias is not None:
                    yp += spec.bias
                if snap:
                    if clip:
                        np.clip(yp, -_FP16_MAX, _FP16_MAX, out=yp)
                    if use_bits:
                        u, uf, a, mask, d = scr
                        np.copyto(yp, _snap_bits(yp, u, uf, a, mask, d))
                    else:
                        np.copyto(s16, yp, casting="unsafe")
                        np.copyto(yp, s16)

        if T == 1:
            run_slot(0)
        else:
            pool = self._panel_pool(T - 1)
            futures = [pool.submit(run_slot, s) for s in range(1, T)]
            run_slot(0)
            for f in futures:
                f.result()

        if tail:
            c0 = n_full * P
            panel = self._ws.get((key, "rpanel_t"), (tail, K))
            pv = panel.reshape((tail, c) + kernel)
            for j in range(tail // ow):
                idx = np.unravel_index((c0 + j * ow) // ow, outer_shape)
                np.copyto(pv[j * ow:(j + 1) * ow], tv[tuple(idx)])
            yp = y2[c0:c0 + tail]
            np.dot(panel, spec.wt, out=yp)
            if spec.bias is not None:
                yp += spec.bias
            if snap:
                if clip:
                    np.clip(yp, -_FP16_MAX, _FP16_MAX, out=yp)
                if use_bits:
                    u, uf, a, mask, d = self._ws.snap_scratch(
                        (key, "rsnap_t"), yp.shape
                    )
                    np.copyto(yp, _snap_bits(yp, u, uf, a, mask, d))
                else:
                    s16 = self._ws.get((key, "rs16_t"), yp.shape, np.float16)
                    np.copyto(s16, yp, casting="unsafe")
                    np.copyto(yp, s16)
        return y2

    # ------------------------------------------------------------------
    def _grid(self, key, src: np.ndarray, bound: float,
              mutable: bool = False) -> tuple[np.ndarray, float]:
        """``quantize_fp16`` replica: fp32 values snapped onto the f16 grid.

        Returns a contiguous fp32 array of grid values and the stored
        bound.  The saturating clip runs only when ``bound`` says ±65504 is
        reachable — elsewhere it is provably the identity.  The snap itself
        is :func:`_snap_bits` where calibration proved it bit-equal to the
        cast pair, else the two-cast fallback.  ``src`` is mutated only
        when ``mutable`` (scratch GEMM rows); the residual stream keeps its
        unclipped fp32 values.
        """

        if bound >= _FP16_MAX:
            if mutable:
                src = np.clip(src, -_FP16_MAX, _FP16_MAX, out=src)
            else:
                src = np.clip(
                    src, -_FP16_MAX, _FP16_MAX,
                    out=self._ws.get((key, "clip"), src.shape),
                )
            bound = _FP16_MAX
        if (_fast_snap_ok() and src.dtype == np.float32
                and src.flags.c_contiguous):
            u, uf, a, mask, d = self._ws.snap_scratch((key, "snap"), src.shape)
            out = _snap_bits(src, u, uf, a, mask, d)
        else:
            # Fallback cast pair: also covers non-f32/non-contiguous inputs
            # (e.g. float64 arrays fed straight to FastEncoder2D.encode).
            out = self._ws.get((key, "q32"), src.shape)
            s16 = self._ws.get((key, "s16"), src.shape, np.float16)
            np.copyto(s16, src, casting="unsafe")
            np.copyto(out, s16)
        return out, bound

    # ------------------------------------------------------------------
    def _conv_store(self, key, spec, canvas, bound, store_spec):
        """Convolve and store the (quantized) output into the next canvas."""

        n = canvas.shape[1]
        out_bound = spec.out_bound(bound)
        y2, out_spatial, cm, fused = self._gemm(key, spec, canvas, out_bound)
        out_canvas, dest = self._ws.canvas(
            (key, "out"), spec.out_channels, n, out_spatial, store_spec[0],
            self._cdtype, store_spec[1],
        )
        if self.half:
            if fused:
                out_bound = min(out_bound, _FP16_MAX)
                np.copyto(dest, cm(y2))
            else:
                q32, out_bound = self._grid(key, y2, out_bound, mutable=True)
                np.copyto(dest, cm(q32))
        else:
            np.copyto(dest, cm(y2))
        return out_canvas, dest, out_spatial, out_bound

    # ------------------------------------------------------------------
    def _convt_gemm(self, key, tspec: _ConvTSpec, canvas, spatial, bound):
        """Full-correlation GEMM of a transposed conv over its dilated canvas.

        Returns ``(vals, out_spatial, crop, fill, out_bound)``: the
        channel-major ``(O, B, *full)`` view of the (quantized, in half
        mode) full correlation, the transposed-conv output spatial shape,
        the per-axis ``(lo, avail)`` crop mapping full indices onto output
        positions, the per-channel fill value for output positions beyond
        the full correlation's support (the module path's zero canvas plus
        bias and quantize — only nonzero when ``output_padding`` reaches
        past the correlation), and the output magnitude bound.
        """

        out_sp = tspec.out_spatial(spatial)
        out_bound = tspec.out_bound(bound)
        y2, full_sp, cm, fused = self._gemm(key, tspec.spec, canvas, out_bound)
        if self.half:
            if fused:
                out_bound = min(out_bound, _FP16_MAX)
                vals = cm(y2)
            else:
                q32, out_bound = self._grid(key, y2, out_bound, mutable=True)
                vals = cm(q32)
        else:
            vals = cm(y2)

        lo = tuple(pl for (pl, _ph) in tspec.padding)
        avail = tuple(
            min(osz, f - l) for osz, f, l in zip(out_sp, full_sp, lo)
        )
        fill = None
        if avail != out_sp:
            # Output positions past the correlation's support: the module
            # path leaves canvas zeros there, adds the bias, and quantizes.
            b = tspec.spec.bias
            fv = np.zeros(tspec.out_channels, np.float32) if b is None else b
            fill = quantize_fp16(fv) if self.half else fv.copy()
        return vals, out_sp, (lo, avail), fill, out_bound

    @staticmethod
    def _crop_view(vals, crop):
        lo, avail = crop
        return vals[(slice(None), slice(None)) + tuple(
            slice(l, l + a) for l, a in zip(lo, avail)
        )]

    @staticmethod
    def _avail_slices(avail):
        return (slice(None), slice(None)) + tuple(slice(0, a) for a in avail)

    def _convt_store(self, key, tspec, canvas, spatial, bound, store_spec):
        """Transposed-convolve and store the quantized crop into the next canvas."""

        n = canvas.shape[1]
        vals, out_sp, crop, fill, out_bound = self._convt_gemm(
            key, tspec, canvas, spatial, bound
        )
        out_canvas, dest = self._ws.canvas(
            (key, "out"), tspec.out_channels, n, out_sp, store_spec[0],
            self._cdtype, store_spec[1],
        )
        if fill is not None:
            dest[:] = fill.reshape((-1, 1) + (1,) * len(out_sp))
        np.copyto(dest[self._avail_slices(crop[1])], self._crop_view(vals, crop))
        return out_canvas, dest, out_sp, out_bound

    # ------------------------------------------------------------------
    def _pool(self, key, kernel, src, spatial, bound):
        """AvgPool replica: fp32 mean of the exact unquantized values.

        For the ubiquitous 2×2 pool the multi-axis ``mean`` reduction is
        replicated with slice adds in numpy's pairwise order
        ``((x00+x01) + (x10+x11)) / 4`` — bit-equal (the full-model
        identity tests guard this against numpy reduction-order changes)
        and ~3× faster than the strided ``mean`` kernel.  Other kernels
        (including 3D pools) run the same multi-axis ``mean`` call the
        module path runs, pinned to fp32.  ``dtype=float32`` pins the
        arithmetic to fp32 when the source is an fp16-stored canvas (the
        widening cast is exact).
        """

        kernel = tuple(kernel)
        c, n = src.shape[:2]
        out_sp = tuple(s // k for s, k in zip(spatial, kernel))
        out = self._ws.get((key, "poolout"), (c, n) + out_sp)
        if kernel == (2, 2):
            a, h = spatial
            v = src.reshape(c, n, a // 2, 2, h // 2, 2)
            t1 = self._ws.get((key, "pt1"), out.shape)
            np.add(v[:, :, :, 0, :, 0], v[:, :, :, 0, :, 1], out=t1, dtype=_F32)
            np.add(v[:, :, :, 1, :, 0], v[:, :, :, 1, :, 1], out=out, dtype=_F32)
            np.add(t1, out, out=out)
            np.divide(out, np.float32(4.0), out=out)
        else:
            # The module path's exact call: reshape to interleaved
            # (.., s/k, k, ..) axes and mean over the kernel axes.  The
            # source may be a canvas interior view; the reduction is made
            # from a contiguous copy so the ufunc loop matches the module
            # path's contiguous input (bit-for-bit identical pairing).
            if not src.flags.c_contiguous:
                buf = self._ws.get((key, "poolsrc"), src.shape)
                np.copyto(buf, src)
                src = buf
            shape: list[int] = [c, n]
            for s, k in zip(spatial, kernel):
                shape.extend([s // k, k])
            kernel_axes = tuple(range(3, 3 + 2 * len(kernel), 2))
            src.reshape(shape).mean(axis=kernel_axes, dtype=_F32, out=out)
        return out, bound  # mean cannot grow the magnitude bound

    # ------------------------------------------------------------------
    def _up(self, key, factors, src, spatial, bound):
        """Upsample replica: nearest-neighbour repeat of the exact values.

        A broadcast store into the reused output buffer places value ``v``
        at every position of its factor block — the same values the module
        path's per-axis ``np.repeat`` produces, without the intermediate
        allocations.  Repetition cannot grow the bound.
        """

        factors = tuple(factors)
        c, n = src.shape[:2]
        out_sp = tuple(s * f for s, f in zip(spatial, factors))
        out = self._ws.get((key, "upout"), (c, n) + out_sp)
        shape: list[int] = [c, n]
        src_index: list = [slice(None), slice(None)]
        for s, f in zip(spatial, factors):
            shape.extend([s, f])
            src_index.extend([slice(None), None])
        out.reshape(shape)[:] = src[tuple(src_index)]
        return out, bound

    # ------------------------------------------------------------------
    def _sigmoid(self, key, x):
        """``Tensor.sigmoid`` replica on the stored conv output.

        The module path splits on sign for numerical stability; both
        branches are elementwise, so computing each over the full array and
        merging by the same sign mask reproduces the selected values bit
        for bit.  ``dtype=float32`` pins the math to fp32 over the
        fp16-stored grid values (the widening cast is exact).  The
        discarded branch may overflow to inf (→ 0 or NaN) — harmless and
        silenced, exactly because it is discarded.
        """

        pos = self._ws.get((key, "pos"), x.shape, np.bool_)
        np.greater_equal(x, np.float32(0.0), out=pos)
        out = self._ws.get((key, "sig"), x.shape)
        t = self._ws.get((key, "st"), x.shape)
        with np.errstate(over="ignore", invalid="ignore"):
            # x >= 0 branch: 1 / (1 + exp(-x))
            np.negative(x, out=t, dtype=_F32)
            np.exp(t, out=t)
            np.add(t, np.float32(1.0), out=t)
            np.divide(np.float32(1.0), t, out=t)
            # x < 0 branch: exp(x) / (1 + exp(x))
            u = self._ws.get((key, "su"), x.shape)
            np.exp(x, out=u, dtype=_F32)
            np.add(u, np.float32(1.0), out=out)
            np.divide(u, out, out=out)
        np.copyto(out, t, where=pos)
        return out

    # ------------------------------------------------------------------
    def _regout(self, key, op, x):
        """``RegOutputTransform`` replica: ``offset + scale · exp(min(x, c))``.

        The module path clamps with a weak python-float bound (fp32
        arithmetic under NEP 50), exponentiates, and scales/offsets with
        fp32 scalars (``Tensor`` coerces python floats to fp32) — the same
        ufunc chain over the same contiguous grid values, staged through a
        reused buffer.
        """

        offset, scale, max_exponent = op
        out = self._ws.get((key, "ro"), x.shape)
        np.clip(x, None, max_exponent, out=out)
        np.exp(out, out=out)
        np.multiply(out, np.float32(scale), out=out)
        np.add(out, np.float32(offset), out=out)
        return out

    # ------------------------------------------------------------------
    def _leaky_merge(self, key, v, slope, bound, requantize):
        """LeakyReLU on grid values ``v`` (mutating): ``x·slope`` merged back.

        The module computes ``x * where(x > 0, 1, slope)``: positive lanes
        keep their exact value, negative (and ±0) lanes become the fp32
        product ``x · slope``.  With ``requantize`` the product is snapped
        back onto the grid — act fused with the *next* convolution's entry
        quantize (positives are already grid values, so only the scaled
        lanes move).  Returns the merged array (``v`` mutated in place).
        """

        neg = self._ws.get((key, "neg"), v.shape)
        np.multiply(v, np.float32(slope), out=neg)
        if requantize and self.half:
            neg, _b = self._grid((key, "negq"), neg, bound * abs(slope),
                                 mutable=True)
        mask = self._ws.get((key, "m"), v.shape, np.bool_)
        np.less_equal(v, np.float32(0), out=mask)
        np.copyto(v, neg, where=mask)
        return v

    # ------------------------------------------------------------------
    def _res(self, key, op, canvas, spatial, bound, carry, carry_bound,
             store_spec, store: bool = True):
        """ResBlock2d replica: ``act2(conv2(act1(conv1(x)))) + x``.

        ``carry`` is the unquantized fp32 block input the skip needs (None
        when the block input came straight from a conv, whose stored grid
        values are already exact).  ``store=False`` skips the quantized
        canvas store when the next consumer reads the carry stream.
        """

        spec1, spec2, slope1, slope2 = op
        n = canvas.shape[1]

        # conv1 → act1, stored (re-quantized) as conv2's input.
        b1_raw = spec1.out_bound(bound)
        y2, out_spatial, cm1, fused1 = self._gemm((key, 0), spec1, canvas, b1_raw)
        mid_canvas, mid_dest = self._ws.canvas(
            (key, "mid"), spec1.out_channels, n, out_spatial, spec2.padding,
            self._cdtype,
        )
        if self.half:
            if fused1:
                v, b1 = y2, min(b1_raw, _FP16_MAX)
            else:
                v, b1 = self._grid((key, "v1"), y2, b1_raw, mutable=True)
            # act1 merged with conv2's entry quantize on the fp16 grid:
            # positives keep their grid value (leaky × 1, then a no-op
            # re-quantize), negatives are x·slope snapped back to the grid.
            v = self._leaky_merge((key, "a1"), v, slope1, b1, requantize=True)
            np.copyto(mid_dest, cm1(v))
        else:
            b1 = 0.0
            scale = np.where(y2 > 0, 1.0, slope1).astype(np.float32)
            np.copyto(mid_dest, cm1(y2 * scale))

        # conv2 → act2 kept unquantized fp32 (the module path does not
        # re-quantize before the residual sum).
        b2_raw = spec2.out_bound(b1)
        y2b, _sp, cm2, fused2 = self._gemm((key, 1), spec2, mid_canvas, b2_raw)
        if self.half:
            if fused2:
                v2, b2 = y2b, min(b2_raw, _FP16_MAX)
            else:
                v2, b2 = self._grid((key, "v2"), y2b, b2_raw, mutable=True)
            l2 = self._leaky_merge((key, "a2"), v2, slope2, b2,
                                   requantize=False)
            l2_bound = b2
        else:
            scale2 = np.where(y2b > 0, 1.0, slope2).astype(np.float32)
            l2 = y2b * scale2
            l2_bound = 0.0

        if carry is None:
            # Block input was a stored conv output: grid values are exact.
            carry = self._ws.get(
                (key, "skip32"), (canvas.shape[0], n) + tuple(spatial)
            )
            np.copyto(carry, _interior(canvas, spec1.padding, spatial))
            carry_bound = bound
        carry += cm2(l2)
        carry_bound = carry_bound + l2_bound

        if not store:
            return canvas, None, carry_bound, carry, carry_bound
        out_canvas, dest, stored_bound = self._store_stream(
            (key, "store"), carry, carry_bound, out_spatial, store_spec
        )
        return out_canvas, dest, stored_bound, carry, carry_bound

    # ------------------------------------------------------------------
    def _block3d(self, key, op, canvas, spatial, bound, store_spec,
                 transposed: bool):
        """DownBlock3d / UpBlock3d replica (Figure 4, both norm forms).

        ``main + skip`` where ``main = norm2(act2(conv(norm1(act1(sconv(x))))))``
        and ``skip = norm3(act3(sconv'(x)))``; ``sconv`` is the strided
        convolution (``transposed=False``, encoder side) or the transposed
        convolution over the shared dilated canvas (``transposed=True``,
        decoder side), and each ``norm`` is either absent (BCAE++/HT, §2.3)
        or an eval-mode BatchNorm affine (the original BCAE) — ``norm1``
        may already be folded into the inner convolution's weights at
        compile time (see :meth:`_fold_batchnorms`), in which case its slot
        is None here and the no-norm path runs with the fused spec.  Both
        strided convolutions consume the same quantized input canvas — the
        module path quantizes the same tensor twice and gets the same grid
        values.  The block output (the fp32 sum of the two unquantized
        streams) is returned as the carry and stored re-quantized for the
        next stage's convolutions.
        """

        main_spec, inner_spec, skip_spec, s1, s2, s3, bn1, bn2, bn3 = op
        n = canvas.shape[1]
        o = inner_spec.out_channels

        # Main path, first (strided / transposed) convolution → act1
        # (→ norm1), stored re-quantized as the inner convolution's input.
        if transposed:
            v1, out_sp, crop1, fill1, b1 = self._convt_gemm(
                (key, 0), main_spec, canvas, spatial, bound
            )
        else:
            b1_raw = main_spec.out_bound(bound)
            y1, out_sp, cm1, fused1 = self._gemm((key, 0), main_spec, canvas,
                                                 b1_raw)
            if self.half:
                if fused1:
                    v1m, b1 = y1, min(b1_raw, _FP16_MAX)
                else:
                    v1m, b1 = self._grid((key, "v1"), y1, b1_raw, mutable=True)
            else:
                v1m, b1 = y1, 0.0
            v1, crop1, fill1 = cm1(v1m), None, None

        mid_canvas, mid_dest = self._ws.canvas(
            (key, "mid"), o, n, out_sp, inner_spec.padding, self._cdtype,
        )
        if bn1 is None:
            if self.half:
                merged = self._leaky_merge((key, "a1"), v1, s1, b1,
                                           requantize=True)
            else:
                merged = v1 * np.where(v1 > 0, 1.0, s1).astype(np.float32)
        else:
            # norm1 sits between act1 and the inner conv's entry quantize:
            # leaky on the exact stream, the affine on the fp32 values,
            # then one grid snap during the mid store.
            if self.half:
                l1 = self._leaky_merge((key, "a1"), v1, s1, b1,
                                       requantize=False)
            else:
                l1 = v1 * np.where(v1 > 0, 1.0, s1).astype(np.float32)
            merged = bn1.apply(self._ws, (key, "bn1"), l1)
            if self.half:
                merged, _bq = self._grid((key, "bn1q"), merged,
                                         bn1.out_bound(b1), mutable=True)
        if crop1 is not None:
            if fill1 is not None:
                # Beyond the correlation's support the module stream is
                # (norm1 ∘) act1 of q(bias), re-quantized by the inner
                # conv's entry — the same scalar ufunc chain on (C,).
                f = fill1 * np.where(fill1 > 0, np.float32(1.0),
                                     np.float32(s1))
                if bn1 is not None:
                    f = bn1.apply_channels(f)
                if self.half:
                    f = quantize_fp16(f)
                mid_dest[:] = f.reshape((-1, 1) + (1,) * len(out_sp))
            np.copyto(mid_dest[self._avail_slices(crop1[1])],
                      self._crop_view(merged, crop1))
        else:
            np.copyto(mid_dest, merged)
        b_mid = b1 if bn1 is None else min(bn1.out_bound(b1), _FP16_MAX)

        # Inner 3³ convolution → act2 (→ norm2), kept unquantized fp32
        # (the module path does not re-quantize before the residual sum).
        b2_raw = inner_spec.out_bound(b_mid)
        y2, _sp2, cm2, fused2 = self._gemm((key, 1), inner_spec, mid_canvas,
                                           b2_raw)
        if self.half:
            if fused2:
                v2, b2 = y2, min(b2_raw, _FP16_MAX)
            else:
                v2, b2 = self._grid((key, "v2"), y2, b2_raw, mutable=True)
            l2 = self._leaky_merge((key, "a2"), v2, s2, b2, requantize=False)
            b_l2 = b2
        else:
            l2 = y2 * np.where(y2 > 0, 1.0, s2).astype(np.float32)
            b_l2 = 0.0
        l2cm = cm2(l2)
        if bn2 is not None:
            # The affine is per channel — applied on the channel-major view.
            l2cm = bn2.apply(self._ws, (key, "bn2"), l2cm)
            b_l2 = bn2.out_bound(b_l2)

        # Skip path over the same input canvas → act3 (→ norm3), unquantized.
        if transposed:
            v3, _osp, crop3, fill3, b3 = self._convt_gemm(
                (key, 2), skip_spec, canvas, spatial, bound
            )
            # The merge reproduces x·where(x>0, 1, slope) bit for bit in
            # both precision modes (positives keep their exact value).
            l3 = self._leaky_merge((key, "a3"), v3, s3, b3, requantize=False)
            b_l3 = b3 if self.half else 0.0
            if bn3 is not None:
                l3 = bn3.apply(self._ws, (key, "bn3"), l3)
                b_l3 = bn3.out_bound(b_l3)
        else:
            b3_raw = skip_spec.out_bound(bound)
            y3, _sp3, cm3, fused3 = self._gemm((key, 2), skip_spec, canvas,
                                               b3_raw)
            if self.half:
                if fused3:
                    v3m, b3 = y3, min(b3_raw, _FP16_MAX)
                else:
                    v3m, b3 = self._grid((key, "v3"), y3, b3_raw, mutable=True)
                l3f = self._leaky_merge((key, "a3"), v3m, s3, b3,
                                        requantize=False)
                b_l3 = b3
            else:
                l3f = y3 * np.where(y3 > 0, 1.0, s3).astype(np.float32)
                b_l3 = 0.0
            l3 = cm3(l3f)
            if bn3 is not None:
                l3 = bn3.apply(self._ws, (key, "bn3"), l3)
                b_l3 = bn3.out_bound(b_l3)
            crop3, fill3 = None, None

        # Residual sum — the module path's plain fp32 ``main + skip``.
        sum_buf = self._ws.get((key, "sum"), (o, n) + out_sp)
        if crop3 is not None:
            if fill3 is not None:
                f3 = fill3 * np.where(fill3 > 0, np.float32(1.0),
                                      np.float32(s3))
                if bn3 is not None:
                    f3 = bn3.apply_channels(f3)
                l3_full = self._ws.get((key, "l3c"), (o, n) + out_sp)
                l3_full[:] = f3.reshape((-1, 1) + (1,) * len(out_sp))
                np.copyto(l3_full[self._avail_slices(crop3[1])],
                          self._crop_view(l3, crop3))
                np.add(l2cm, l3_full, out=sum_buf)
            else:
                np.add(l2cm, self._crop_view(l3, crop3), out=sum_buf)
        else:
            np.add(l2cm, l3, out=sum_buf)
        carry_bound = b_l2 + b_l3

        out_canvas, dest, stored_bound = self._store_stream(
            (key, "store"), sum_buf, carry_bound, out_sp, store_spec
        )
        return out_canvas, dest, out_sp, stored_bound, sum_buf, carry_bound

    # ------------------------------------------------------------------
    def _store_stream(self, key, src, bound, spatial, store_spec):
        """Store the unquantized fp32 stream into a conv-input canvas."""

        c, n = src.shape[:2]
        canvas, dest = self._ws.canvas((key, "canvas"), c, n, spatial,
                                       store_spec[0], self._cdtype,
                                       store_spec[1])
        if self.half:
            q32, bound = self._grid(key, src, bound)
            np.copyto(dest, q32)
        else:
            np.copyto(dest, src)
        return canvas, dest, bound


def _interior(canvas: np.ndarray, padding, spatial: tuple[int, ...]) -> np.ndarray:
    return canvas[(slice(None), slice(None)) + tuple(
        slice(pl, pl + s) for s, (pl, _ph) in zip(spatial, padding)
    )]


def _canvas_padding(canvas: np.ndarray, spatial) -> tuple[tuple[int, int], ...]:
    """Recover the (symmetric) padding a canvas was allocated with."""

    out = []
    for axis, s in enumerate(spatial):
        p = canvas.shape[2 + axis] - s
        out.append((p // 2, p - p // 2))
    return tuple(out)


def _plan_nd(ops) -> int:
    """Spatial rank of a compiled plan, from its first geometric op."""

    for kind, op in ops:
        if kind in ("conv", "conv3d"):
            return len(op.kernel)
        if kind == "convtranspose3d":
            return len(op.kernel)
        if kind == "res":
            return len(op[0].kernel)
        if kind in ("down3d", "upblock3d"):
            return 3
        if kind in ("pool", "up"):
            return 2
        if kind in ("pool3d", "up3d"):
            return 3
    return 2


def _next_consumer(ops, i) -> str | None:
    """Kind of the next non-identity op, or None at the end of the plan."""

    for kind, _op in ops[i + 1:]:
        if kind != "identity":
            return kind
    return None


def _next_store_spec(ops, i, nd) -> tuple[tuple[tuple[int, int], ...], tuple[int, ...]]:
    """(padding, dilation) the next consumer needs its input stored with.

    Ordinary convolutions need their zero padding pre-allocated around the
    interior; transposed convolutions additionally need the stride-dilation
    gaps (the module path's ``_dilate`` + ``np.pad``, kept as persistent
    zeros).  Pools, upsamples and heads consume raw interior values.
    """

    ones = (1,) * nd
    for kind, op in ops[i + 1:]:
        if kind in ("conv", "conv3d"):
            return op.padding, ones
        if kind == "convtranspose3d":
            return op.store_padding, op.dilation
        if kind == "res":
            return op[0].padding, ones
        if kind == "down3d":
            return op[0].padding, ones
        if kind == "upblock3d":
            return op[0].store_padding, op[0].dilation
        if kind in ("pool", "pool3d", "up", "up3d", "bnorm", "sigmoid", "regout"):
            # These consume raw interior values — no conv padding needed.
            return ((0, 0),) * nd, ones
        # "identity" is transparent: keep scanning for the real consumer.
    return ((0, 0),) * nd, ones
