"""Compiled stage-plan engine — the shared fast path for encode *and* decode.

:mod:`repro.core.fast_encode` proved the deployment thesis for the encoder
(§3.2–3.3): compile the module graph once into a flat list of array passes
over preplanned workspaces and the per-call ``np.pad`` / im2col / fp16-cast
allocations disappear, with **bit-identical** output.  The analysis side of
the loop needs the same treatment for the decoders, and every future variant
would otherwise grow its own 500-line kernel file.  This module is that
machinery extracted into a reusable engine: a *stage-vocabulary compiler*
plus an executor, shared by :class:`~repro.core.fast_encode.FastEncoder2D`
and :class:`~repro.core.fast_decode.FastDecoder2D`.

Stage vocabulary
----------------

:func:`stage_kinds` classifies a stage sequence (``nn.Sequential`` or any
iterable of modules); :class:`CompiledStagePlan` compiles it.  The vocabulary
is the union of the BCAE-2D encoder (Algorithm 1) and decoder (Algorithm 2)
stages:

``conv`` — :class:`repro.nn.Conv2d`
    Weights are quantized to the fp16 grid and transposed into GEMM layout
    **once**; at run time the exact ``tensordot`` contraction of
    :func:`repro.nn.convolution.conv_forward` executes out of a zero-bordered
    padded canvas into a reused buffer.
``pool`` — :class:`repro.nn.AvgPool2d` (non-overlapping)
    fp32 mean of the exact unquantized stream, with a slice-add replica of
    numpy's pairwise reduction order for the ubiquitous 2×2 kernel.
``up`` — :class:`repro.nn.Upsample2d`
    Nearest-neighbour repeat of the exact stream values via a broadcast
    store into a reused buffer (the module path's ``np.repeat`` without the
    allocations).
``res`` — :class:`repro.core.blocks.ResBlock2d` (LeakyReLU activations)
    ``act2(conv2(act1(conv1(x)))) + x`` with the skip fed from the
    *unquantized* carry stream, exactly like the module path.
``sigmoid`` / ``identity`` — output heads (§2.4)
    The segmentation decoder's numerically-stable logistic (bit-equal to
    ``Tensor.sigmoid``) and the regression decoder's pass-through.  A
    ``sigmoid`` head compiles only as the final stage directly after a
    ``conv``; the plan must end in a ``conv`` (plus an optional head) so
    that :meth:`CompiledStagePlan.run` returns exactly what the module
    graph returns.

Execution model
---------------

The executor threads two value streams through the ops:

* a padded fp32 **canvas** in channel-major ``(C, B, H, W)`` layout whose
  interior holds values already snapped onto the fp16 grid — what the next
  convolution consumes.  Channel-major matches the transposed-GEMM result
  orientation, so conv outputs, residual accumulates and canvas stores are
  (semi-)contiguous reshapes instead of 4-byte-strided transposes.  The
  zero border is the padding the module path re-creates with ``np.pad`` on
  every call, allocated and zeroed once;
* an unquantized fp32 **carry** stream — what residual skips, pools and
  upsamples consume (the module path never re-quantizes before those).

``carry is None`` means the canvas interior *is* the exact stream (its
values came straight from a convolution, whose stored grid values are
exact).  Interval analysis over the quantized weights tracks a rigorous
magnitude bound along both streams; the saturating clip of
:func:`repro.nn.amp.quantize_fp16` runs only where the bound says ±65504 is
reachable — behaviour is never traded for speed.  Wherever an op reads fp16
storage into fp32 math, the ufunc loop is forced to fp32 (``dtype=`` /
promotion by a typed scalar), so the arithmetic is exactly the module
path's fp32 arithmetic on the same grid values.

The contract, inherited by every plan the engine compiles, is **bit-identical
output**: for every input accepted by the module path, :meth:`run` returns
exactly the values ``nn.Sequential`` under ``nn.amp.autocast`` produces.
The test suite enforces this across model variants, batch sizes and both
precision modes, for the encoder and for both decoder heads.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import nn
from ..nn.amp import quantize_fp16
from .blocks import ResBlock2d

__all__ = ["CompiledStagePlan", "Workspace", "stage_kinds"]

#: Largest finite fp16 magnitude — the saturation point of quantize_fp16.
_FP16_MAX = 65504.0

_F32 = np.float32


def stage_kinds(stages) -> list[str] | None:
    """Classify ``stages`` into the compiled vocabulary.

    Returns one kind string per stage (``conv`` / ``pool`` / ``up`` /
    ``res`` / ``sigmoid`` / ``identity``) when every stage is compilable and
    the head-placement rules hold, else ``None``.  Use this as the guard
    before constructing a :class:`CompiledStagePlan`.
    """

    kinds: list[str] = []
    for stage in stages:
        if isinstance(stage, nn.Conv2d):
            kinds.append("conv")
        elif isinstance(stage, nn.AvgPool2d):
            kinds.append("pool")
        elif isinstance(stage, nn.Upsample2d):
            kinds.append("up")
        elif isinstance(stage, ResBlock2d):
            if not isinstance(stage.act1, nn.LeakyReLU) or not isinstance(
                stage.act2, nn.LeakyReLU
            ):
                return None
            kinds.append("res")
        elif isinstance(stage, nn.Sigmoid):
            kinds.append("sigmoid")
        elif isinstance(stage, nn.Identity):
            kinds.append("identity")
        else:
            return None

    # run() returns the stored output of the last functional stage; only a
    # conv (whose stored grid values equal the module output exactly) or a
    # sigmoid directly downstream of one qualifies — a trailing res/pool/up
    # would return the *quantized* store of an unquantized module output.
    body = [k for k in kinds if k != "identity"]
    if not body or body[-1] not in ("conv", "sigmoid"):
        return None
    for pos, kind in enumerate(body):
        if kind == "sigmoid" and (pos != len(body) - 1 or body[pos - 1] != "conv"):
            return None
    return kinds


@dataclasses.dataclass
class _ConvSpec:
    """One convolution with its weight pre-transposed into GEMM layout."""

    wt: np.ndarray   # (C*kh*kw, O) F-contiguous — tensordot's right operand
    wtT: np.ndarray  # (O, C*kh*kw) C-contiguous — the transposed-GEMM operand
    bias: np.ndarray | None
    bias_col: np.ndarray | None  # (O, 1) view for the transposed orientation
    kernel: tuple[int, int]
    stride: tuple[int, int]
    padding: tuple[tuple[int, int], ...]
    out_channels: int
    w_l1: float     # max over output channels of Σ|w| — bound slope
    bias_max: float

    @classmethod
    def from_module(cls, conv: nn.Conv2d, half: bool) -> "_ConvSpec":
        w = quantize_fp16(conv.weight.data) if half else np.asarray(conv.weight.data)
        o = w.shape[0]
        k = int(np.prod(conv.kernel_size))
        # tensordot reshapes the transposed kernel into an F-contiguous
        # (K, O) view; BLAS picks its kernel by operand layout, so the
        # cached weight must keep that exact layout to stay bit-identical.
        wt = np.asfortranarray(
            w.transpose(1, 2, 3, 0).reshape(w.shape[1] * k, o), dtype=np.float32
        )
        bias = None if conv.bias is None else conv.bias.data.astype(np.float32)
        return cls(
            wt=wt,
            wtT=np.ascontiguousarray(wt.T),
            bias=bias,
            bias_col=None if bias is None else bias.reshape(-1, 1),
            kernel=conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
            out_channels=o,
            w_l1=float(np.abs(w.reshape(o, -1)).sum(axis=1).max()),
            bias_max=0.0 if bias is None else float(np.abs(bias).max()),
        )

    def out_bound(self, in_bound: float) -> float:
        """Rigorous |output| bound given an |input| magnitude bound."""

        return self.w_l1 * in_bound + self.bias_max


#: None until calibrated: whether the integer round-to-nearest-even grid
#: snap reproduces numpy's f32→f16→f32 cast pair bit for bit on this build.
_FAST_SNAP_OK: bool | None = None

#: f32 bit patterns: |x| below this is in the f16 denormal range (2^-14).
_F16_NORMAL_MIN_BITS = np.uint32(0x38800000)
_ABS_MASK = np.uint32(0x7FFFFFFF)
_ROUND_BIAS = np.uint32(0x0FFF)
_MANTISSA_KEEP = np.uint32(0xFFFFE000)
#: fp32 spacing around 0.75 is exactly 2^-24 — the f16 denormal grid — so
#: (x + 0.75) - 0.75 is an exact round-to-nearest-even onto that grid for
#: every |x| < 0.25 (Sterbenz: the subtraction is exact).
_DENORM_MAGIC = np.float32(0.75)


def _snap_bits(src: np.ndarray, u: np.ndarray, uf: np.ndarray,
               a: np.ndarray, mask: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Round contiguous fp32 ``src`` to the f16 grid; returns ``uf``.

    numpy's f16 conversions are software on many builds (~20× slower than a
    copy), and the quantize-everywhere semantics of §3.3 make them the hot
    path's single largest cost.  This is the same round-to-nearest-even in
    vectorized integer ops: add ``0x0FFF + lsb`` at the 13-bit boundary and
    mask (IEEE bit encoding carries mantissa rollover into the exponent
    correctly), with the f16-denormal range (|x| < 2^-14, coarser fixed
    grid) handled by the exact magic-add.  ``u``/``a``/``mask``/``d`` are
    caller-owned scratch of ``src``'s shape; ``uf`` is the fp32 view of
    ``u``, which doubles as the result (no output copy pass).

    Domain: callers guarantee ``|x| ≤ 65504`` (values are post-clip or
    carry a proven bound), so the cast's overflow-to-inf region never
    arises; NaN and ±inf lanes pass through like the cast pair.
    """

    bits = src.view(np.uint32)
    np.bitwise_and(bits, _ABS_MASK, out=a)
    np.less(a, _F16_NORMAL_MIN_BITS, out=mask)
    np.right_shift(bits, 13, out=u)
    np.bitwise_and(u, np.uint32(1), out=u)
    np.add(u, _ROUND_BIAS, out=u)
    np.add(bits, u, out=u)
    np.bitwise_and(u, _MANTISSA_KEEP, out=u)
    if mask.any():
        # Denormal lanes: exact RNE onto the 2^-24 grid via the magic add
        # (ties land on the sum's mantissa parity = the grid index parity),
        # computed full-array then merged by mask.  The magic add collapses
        # -tiny to +0.0 where the cast keeps -0.0, so the source sign bit
        # is OR-ed back (a no-op on every nonzero lane).  errstate hides
        # the invalid flag of signalling-NaN lanes (never selected).
        with np.errstate(invalid="ignore"):
            np.add(src, _DENORM_MAGIC, out=d)
        np.subtract(d, _DENORM_MAGIC, out=d)
        dbits = d.view(np.uint32)
        np.bitwise_and(bits, np.uint32(0x80000000), out=a)
        np.bitwise_or(dbits, a, out=dbits)
        np.copyto(uf, d, where=mask)
    return uf


def _fast_snap_ok() -> bool:
    """Calibrate :func:`_snap_bits` against numpy's cast pair, once.

    The probe covers every f16 bit pattern (all grid points, ±inf, NaNs),
    rounding midpoints on both sides, the denormal/normal boundary and
    dense randoms across the exponent range; equality is checked on raw
    bits.  A build where any lane deviates falls back to the two-cast
    path — behaviour is never traded for speed.
    """

    global _FAST_SNAP_OK
    if _FAST_SNAP_OK is None:
        grid = np.arange(65536, dtype=np.uint16).view(np.float16).astype(np.float32)
        finite = grid[np.isfinite(grid)]
        rng = np.random.default_rng(0xF16)
        probes = [
            grid,
            np.nextafter(finite, np.float32(np.inf), dtype=np.float32),
            np.nextafter(finite, np.float32(-np.inf), dtype=np.float32),
            # Exact midpoints between adjacent positive grid points (the
            # round-half-to-even cases), and a wide random sweep.
            ((finite[finite > 0][:-1] + finite[finite > 0][1:]) * np.float32(0.5)),
            (rng.uniform(-1.0, 1.0, 4096).astype(np.float32)
             * np.float32(2.0) ** rng.integers(-30, 17, 4096).astype(np.float32)),
        ]
        v = np.concatenate(probes)
        # Restrict to the call domain: |x| ≤ 65504 plus non-finite lanes
        # (the pipeline clips or bounds everything else before snapping).
        v = np.ascontiguousarray(v[(np.abs(v) <= np.float32(_FP16_MAX))
                                   | ~np.isfinite(v)])
        ref = v.astype(np.float16).astype(np.float32)
        u = np.empty(v.shape, np.uint32)
        out = _snap_bits(
            v, u, u.view(np.float32), np.empty(v.shape, np.uint32),
            np.empty(v.shape, np.bool_), np.empty_like(v),
        )
        _FAST_SNAP_OK = bool(
            np.array_equal(out.view(np.uint32), ref.view(np.uint32))
        )
    return _FAST_SNAP_OK


#: (n, rows, K, O) → whether the whole-batch transposed GEMM reproduces the
#: per-sample reference contraction bit for bit on this BLAS build.
_TRANSPOSED_GEMM_OK: dict = {}


def _transposed_gemm_matches(n: int, rows: int, K: int, o: int) -> bool:
    """Calibrate the transposed GEMM formulation for one problem shape.

    ``conv_forward``'s contraction is per-sample ``(rows, K) @ (K, O)``
    GEMMs; the fast path prefers one whole-batch ``(O, K) @ (K, n·rows)``
    call on operands built directly in transposed layout (the im2col gather
    then reads whole output rows instead of 12-byte kernel taps, ~6×
    faster).  Every output element is the same K-term dot product, and BLAS
    packs both operand layouts into the same micro-kernels with the same
    k-accumulation order — *except* for some small-shape kernel dispatches.
    Since the summation order is a function of problem shape only (never of
    the data), one dense-random probe per shape decides the formulation:
    bit-equal → transposed fast path, else the reference orientation.
    Behaviour is never traded for speed; the probe costs two small GEMMs
    once per (batch, shape).
    """

    key = (n, rows, K, o)
    hit = _TRANSPOSED_GEMM_OK.get(key)
    if hit is None:
        rng = np.random.default_rng(0x5EED)
        a = rng.standard_normal((n * rows, K)).astype(np.float32)
        b = np.asfortranarray(rng.standard_normal((K, o)), dtype=np.float32)
        ref = np.empty((n * rows, o), dtype=np.float32)
        for i in range(n):
            np.dot(a[i * rows:(i + 1) * rows], b, out=ref[i * rows:(i + 1) * rows])
        got = np.empty((o, n * rows), dtype=np.float32)
        np.dot(np.ascontiguousarray(b.T), np.ascontiguousarray(a.T), out=got)
        hit = bool(np.array_equal(got.T, ref))
        _TRANSPOSED_GEMM_OK[key] = hit
    return hit


class Workspace:
    """Named, shape-checked reusable buffers (compiled-plan/compressor scratch)."""

    def __init__(self) -> None:
        self._bufs: dict = {}

    def get(self, key, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf

    def snap_scratch(self, key, shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
        """Scratch bundle for one :func:`_snap_bits` call site, one lookup.

        Returns ``(u, uf, a, mask, d)`` with ``uf`` the fp32 view of ``u``
        (the snap result) — the hot path calls this per op per run, so the
        buffers are cached as a single tuple.
        """

        bundle = self._bufs.get(key)
        if bundle is None or bundle[0].shape != tuple(shape):
            shape = tuple(shape)
            u = np.empty(shape, np.uint32)
            bundle = (
                u,
                u.view(np.float32),
                np.empty(shape, np.uint32),
                np.empty(shape, np.bool_),
                np.empty(shape, np.float32),
            )
            self._bufs[key] = bundle
        return bundle

    def canvas(self, key, c: int, n: int, spatial: tuple[int, int],
               padding, dtype=np.float32) -> tuple[np.ndarray, np.ndarray]:
        """Zero-bordered channel-major canvas ``(C, B, H, W)`` + interior view.

        The border is zeroed once at allocation; every later pass writes
        only the interior, so the zeros (= the padding the module path
        re-creates with ``np.pad`` on every call) persist.
        """

        (plh, phh), (plw, phw) = padding
        shape = (c, n, spatial[0] + plh + phh, spatial[1] + plw + phw)
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf, buf[:, :, plh:plh + spatial[0], plw:plw + spatial[1]]

    def nbytes(self) -> int:
        return sum(
            sum(a.nbytes for a in b) if isinstance(b, tuple) else b.nbytes
            for b in self._bufs.values()
        )


class CompiledStagePlan:
    """A stage sequence compiled into reusable-workspace array passes.

    Parameters
    ----------
    stages:
        Iterable of modules within the :func:`stage_kinds` vocabulary.
        Weights are snapshot at construction — rebuild after training.
    half:
        Replicate the fp16 autocast numerics (the deployment mode, §3.3).
        When False the full-precision module path is replicated instead.
    workspace:
        Optional shared :class:`Workspace`.  Two *structurally identical*
        plans (e.g. the two decoder heads of one BCAE) may share a workspace
        **and** a prefix when run sequentially: every buffer an op reads is
        fully rewritten earlier in the same :meth:`run`, so interleaved runs
        only reuse memory, never stale values.  Structurally different plans
        sharing keys stay correct too (buffers reallocate on shape mismatch)
        but lose the steady-state reuse.
    prefix:
        Workspace key namespace for this plan's buffers.
    """

    def __init__(self, stages, half: bool = True,
                 workspace: Workspace | None = None, prefix: str = "") -> None:
        kinds = stage_kinds(stages)
        if kinds is None:
            raise TypeError(
                "stage sequence is outside the compiled vocabulary; "
                "guard with stage_kinds()"
            )
        self.half = bool(half)
        self.prefix = prefix
        self._ws = Workspace() if workspace is None else workspace
        # Canvases stay fp32 even in half mode: their values are fp16 grid
        # points, but numpy's casting copy of *strided* views is ~7× slower
        # than a same-dtype copy, and the im2col gather reads canvases far
        # more often than stores write them.
        self._cdtype = np.float32
        self._ops: list[tuple[str, object]] = []
        for stage, kind in zip(stages, kinds):
            if kind == "conv":
                op: object = _ConvSpec.from_module(stage, self.half)
            elif kind == "pool":
                op = stage.kernel_size
            elif kind == "up":
                op = stage.scale_factor
            elif kind == "res":
                op = (
                    _ConvSpec.from_module(stage.conv1, self.half),
                    _ConvSpec.from_module(stage.conv2, self.half),
                    float(stage.act1.negative_slope),
                    float(stage.act2.negative_slope),
                )
            else:
                op = None
            self._ops.append((kind, op))
        #: Per-op gather-view cache: sliding_window_view / transpose /
        #: reshape cost ~50µs of pure Python per conv — the views are
        #: rebuilt only when their backing buffers are reallocated
        #: (identity-checked), which only happens on a shape change.
        self._wins: dict = {}

    # ------------------------------------------------------------------
    @property
    def workspace(self) -> Workspace:
        return self._ws

    @property
    def workspace_bytes(self) -> int:
        """Current workspace footprint (grows to the largest batch seen)."""

        return self._ws.nbytes()

    def input_padding(self) -> tuple[tuple[int, int], ...]:
        """Padding the input canvas needs for the plan's first consumer."""

        return _next_padding(self._ops, -1)

    def input_canvas(self, n: int, c: int,
                     spatial: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """The plan's persistent input canvas ``(canvas, interior view)``.

        Channel-major fp32 ``(C, B, H, W)``.  Callers fill the interior
        with grid-exact values before :meth:`run`; the zero border doubles
        as the first convolution's padding.
        """

        return self._ws.canvas((self.prefix, "in"), c, n, spatial,
                               self.input_padding(), self._cdtype)

    # ------------------------------------------------------------------
    def run(self, canvas: np.ndarray, spatial: tuple[int, int], bound: float,
            carry: np.ndarray | None = None, carry_bound: float = 0.0) -> np.ndarray:
        """Execute the plan; returns the module-graph output values.

        ``canvas`` is typically :meth:`input_canvas` with the interior
        filled; ``bound`` is a rigorous magnitude bound on those values.
        The returned array is channel-major fp32 ``(C, B, oh, ow)`` —
        transpose to ``(B, C, oh, ow)`` with a zero-copy
        ``.transpose(1, 0, 2, 3)`` view — and is a reused workspace
        buffer: copy it before the next :meth:`run` on this workspace.
        """

        ops = self._ops
        result: np.ndarray | None = None
        for i, (kind, op) in enumerate(ops):
            out_padding = _next_padding(ops, i)
            key = (self.prefix, i)
            if kind == "conv":
                canvas, result, spatial, bound = self._conv_store(
                    key, op, canvas, bound, out_padding
                )
                carry = None
            elif kind in ("pool", "up"):
                if carry is None:
                    # Input came from a conv: stored grid values are the
                    # exact fp32 values the module path consumes.
                    src, src_bound = (
                        _interior(canvas, _canvas_padding(canvas, spatial), spatial),
                        bound,
                    )
                else:
                    # The module path pools/upsamples the *unquantized*
                    # fp32 stream.
                    src, src_bound = carry, carry_bound
                if kind == "pool":
                    carry, carry_bound = self._pool(key, op, src, spatial, src_bound)
                    spatial = (spatial[0] // op[0], spatial[1] // op[1])
                else:
                    carry, carry_bound = self._up(key, op, src, spatial, src_bound)
                    spatial = (spatial[0] * op[0], spatial[1] * op[1])
                canvas, result, bound = self._store_stream(
                    key, carry, carry_bound, spatial, out_padding
                )
            elif kind == "res":
                # The post-block canvas store is dead when the next consumer
                # is a pool/upsample: those read the carry stream directly.
                store = _next_consumer(ops, i) not in ("pool", "up")
                canvas, dest, bound, carry, carry_bound = self._res(
                    key, op, canvas, spatial, bound, carry, carry_bound,
                    out_padding, store,
                )
                if store:
                    result = dest
            elif kind == "sigmoid":
                result = self._sigmoid(key, result)
            # "identity": the module pass-through — state is unchanged.

        assert result is not None
        return result

    # ------------------------------------------------------------------
    def _gemm(self, key, spec: _ConvSpec, canvas: np.ndarray):
        """The exact ``conv_forward`` contraction out of a padded canvas.

        Returns ``(rows, out_spatial, cm)``: the GEMM result (bias added),
        the output spatial shape, and a closure mapping any array of the
        result's shape to a channel-major ``(O, B, oh, ow)`` view.

        Two bit-identical formulations, chosen per problem shape by
        :func:`_transposed_gemm_matches`:

        * the reference orientation — the im2col gather follows tensordot's
          element order, so ``np.dot`` sees the same operand matrices
          ``conv_forward`` builds internally (identical BLAS call,
          identical bits), executed per sample exactly as ``conv_forward``
          does;
        * the transposed orientation — the same matrices built directly in
          ``(K, B·oh·ow)`` layout with one whole-batch ``wtT @ atT`` call,
          used only where the calibration probe proved it reproduces the
          per-sample reference bit for bit.  Its ``(O, B·oh·ow)`` result
          makes the channel-major store a contiguous reshape.

        Payload bits stay invariant to micro-batch composition either way:
        each output element is a fixed K-term dot product.  The canvas
        holds quantized (grid) values, so the module path's
        quantize-on-entry is a no-op and is skipped.
        """

        c, n = canvas.shape[:2]
        kh, kw = spec.kernel
        sh, sw = spec.stride
        oh = (canvas.shape[2] - kh) // sh + 1
        ow = (canvas.shape[3] - kw) // sw + 1
        rows = oh * ow
        m = n * rows
        o = spec.out_channels

        if _transposed_gemm_matches(n, rows, c * kh * kw, o):
            atT = self._ws.get((key, "atT"), (c * kh * kw, m))
            cached = self._wins.get(key)
            if cached is None or cached[0] is not canvas or cached[1] is not atT:
                win = sliding_window_view(canvas, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
                cached = (canvas, atT, win.transpose(0, 4, 5, 1, 2, 3),
                          atT.reshape(c, kh, kw, n, oh, ow))
                self._wins[key] = cached
            np.copyto(cached[3], cached[2])
            y2 = self._ws.get((key, "y2T"), (o, m))
            np.dot(spec.wtT, atT, out=y2)
            if spec.bias_col is not None:
                y2 += spec.bias_col

            def cm(arr, n=n, oh=oh, ow=ow):
                return arr.reshape(arr.shape[0], n, oh, ow)
        else:
            at = self._ws.get((key, "at"), (m, c * kh * kw))
            cached = self._wins.get(key)
            if cached is None or cached[0] is not canvas or cached[1] is not at:
                win = sliding_window_view(canvas, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
                cached = (canvas, at, win.transpose(1, 2, 3, 0, 4, 5),
                          at.reshape(n, oh, ow, c, kh, kw))
                self._wins[key] = cached
            np.copyto(cached[3], cached[2])
            y2 = self._ws.get((key, "y2"), (m, o))
            # Per-sample GEMM blocks, matching conv_forward exactly.
            for i in range(n):
                np.dot(at[i * rows:(i + 1) * rows], spec.wt,
                       out=y2[i * rows:(i + 1) * rows])
            if spec.bias is not None:
                y2 += spec.bias

            def cm(arr, n=n, oh=oh, ow=ow):
                return arr.reshape(n, oh, ow, -1).transpose(3, 0, 1, 2)

        return y2, (oh, ow), cm

    # ------------------------------------------------------------------
    def _grid(self, key, src: np.ndarray, bound: float,
              mutable: bool = False) -> tuple[np.ndarray, float]:
        """``quantize_fp16`` replica: fp32 values snapped onto the f16 grid.

        Returns a contiguous fp32 array of grid values and the stored
        bound.  The saturating clip runs only when ``bound`` says ±65504 is
        reachable — elsewhere it is provably the identity.  The snap itself
        is :func:`_snap_bits` where calibration proved it bit-equal to the
        cast pair, else the two-cast fallback.  ``src`` is mutated only
        when ``mutable`` (scratch GEMM rows); the residual stream keeps its
        unclipped fp32 values.
        """

        if bound >= _FP16_MAX:
            if mutable:
                src = np.clip(src, -_FP16_MAX, _FP16_MAX, out=src)
            else:
                src = np.clip(
                    src, -_FP16_MAX, _FP16_MAX,
                    out=self._ws.get((key, "clip"), src.shape),
                )
            bound = _FP16_MAX
        if (_fast_snap_ok() and src.dtype == np.float32
                and src.flags.c_contiguous):
            u, uf, a, mask, d = self._ws.snap_scratch((key, "snap"), src.shape)
            out = _snap_bits(src, u, uf, a, mask, d)
        else:
            # Fallback cast pair: also covers non-f32/non-contiguous inputs
            # (e.g. float64 arrays fed straight to FastEncoder2D.encode).
            out = self._ws.get((key, "q32"), src.shape)
            s16 = self._ws.get((key, "s16"), src.shape, np.float16)
            np.copyto(s16, src, casting="unsafe")
            np.copyto(out, s16)
        return out, bound

    # ------------------------------------------------------------------
    def _conv_store(self, key, spec, canvas, bound, out_padding):
        """Convolve and store the (quantized) output into the next canvas."""

        n = canvas.shape[1]
        y2, out_spatial, cm = self._gemm(key, spec, canvas)
        out_bound = spec.out_bound(bound)
        out_canvas, dest = self._ws.canvas(
            (key, "out"), spec.out_channels, n, out_spatial, out_padding,
            self._cdtype,
        )
        if self.half:
            q32, out_bound = self._grid(key, y2, out_bound, mutable=True)
            np.copyto(dest, cm(q32))
        else:
            np.copyto(dest, cm(y2))
        return out_canvas, dest, out_spatial, out_bound

    # ------------------------------------------------------------------
    def _pool(self, key, kernel, src, spatial, bound):
        """AvgPool2d replica: fp32 mean of the exact unquantized values.

        For the ubiquitous 2×2 pool the multi-axis ``mean`` reduction is
        replicated with slice adds in numpy's pairwise order
        ``((x00+x01) + (x10+x11)) / 4`` — bit-equal (the full-model
        identity tests guard this against numpy reduction-order changes)
        and ~3× faster than the strided ``mean`` kernel.  ``dtype=float32``
        pins the arithmetic to fp32 when the source is an fp16-stored
        canvas (the widening cast is exact).
        """

        kh, kw = kernel
        c, n = src.shape[:2]
        a, h = spatial
        out = self._ws.get((key, "poolout"), (c, n, a // kh, h // kw))
        if (kh, kw) == (2, 2):
            v = src.reshape(c, n, a // 2, 2, h // 2, 2)
            t1 = self._ws.get((key, "pt1"), out.shape)
            np.add(v[:, :, :, 0, :, 0], v[:, :, :, 0, :, 1], out=t1, dtype=_F32)
            np.add(v[:, :, :, 1, :, 0], v[:, :, :, 1, :, 1], out=out, dtype=_F32)
            np.add(t1, out, out=out)
            np.divide(out, np.float32(4.0), out=out)
        else:  # pragma: no cover - the BCAE family uses 2x2 pools
            src.reshape(c, n, a // kh, kh, h // kw, kw).mean(
                axis=(3, 5), dtype=_F32, out=out
            )
        return out, bound  # mean cannot grow the magnitude bound

    # ------------------------------------------------------------------
    def _up(self, key, factors, src, spatial, bound):
        """Upsample2d replica: nearest-neighbour repeat of the exact values.

        A broadcast store into the reused output buffer places value ``v``
        at every position of its ``fa×fh`` block — the same values the
        module path's per-axis ``np.repeat`` produces, without the two
        intermediate allocations.  Repetition cannot grow the bound.
        """

        fa, fh = factors
        c, n = src.shape[:2]
        a, h = spatial
        out = self._ws.get((key, "upout"), (c, n, a * fa, h * fh))
        out.reshape(c, n, a, fa, h, fh)[:] = src[:, :, :, None, :, None]
        return out, bound

    # ------------------------------------------------------------------
    def _sigmoid(self, key, x):
        """``Tensor.sigmoid`` replica on the stored conv output.

        The module path splits on sign for numerical stability; both
        branches are elementwise, so computing each over the full array and
        merging by the same sign mask reproduces the selected values bit
        for bit.  ``dtype=float32`` pins the math to fp32 over the
        fp16-stored grid values (the widening cast is exact).  The
        discarded branch may overflow to inf (→ 0 or NaN) — harmless and
        silenced, exactly because it is discarded.
        """

        pos = self._ws.get((key, "pos"), x.shape, np.bool_)
        np.greater_equal(x, np.float32(0.0), out=pos)
        out = self._ws.get((key, "sig"), x.shape)
        t = self._ws.get((key, "st"), x.shape)
        with np.errstate(over="ignore", invalid="ignore"):
            # x >= 0 branch: 1 / (1 + exp(-x))
            np.negative(x, out=t, dtype=_F32)
            np.exp(t, out=t)
            np.add(t, np.float32(1.0), out=t)
            np.divide(np.float32(1.0), t, out=t)
            # x < 0 branch: exp(x) / (1 + exp(x))
            u = self._ws.get((key, "su"), x.shape)
            np.exp(x, out=u, dtype=_F32)
            np.add(u, np.float32(1.0), out=out)
            np.divide(u, out, out=out)
        np.copyto(out, t, where=pos)
        return out

    # ------------------------------------------------------------------
    def _res(self, key, op, canvas, spatial, bound, carry, carry_bound,
             out_padding, store: bool = True):
        """ResBlock2d replica: ``act2(conv2(act1(conv1(x)))) + x``.

        ``carry`` is the unquantized fp32 block input the skip needs (None
        when the block input came straight from a conv, whose stored grid
        values are already exact).  ``store=False`` skips the quantized
        canvas store when the next consumer reads the carry stream.
        """

        spec1, spec2, slope1, slope2 = op
        n = canvas.shape[1]

        # conv1 → act1, stored (re-quantized) as conv2's input.
        y2, out_spatial, cm1 = self._gemm((key, 0), spec1, canvas)
        mid_canvas, mid_dest = self._ws.canvas(
            (key, "mid"), spec1.out_channels, n, out_spatial, spec2.padding,
            self._cdtype,
        )
        if self.half:
            v, b1 = self._grid((key, "v1"), y2, spec1.out_bound(bound),
                               mutable=True)
            # act1 merged with conv2's entry quantize on the fp16 grid:
            # positives keep their grid value (leaky × 1, then a no-op
            # re-quantize), negatives are x·slope snapped back to the grid.
            neg = self._ws.get((key, "neg"), y2.shape)
            np.multiply(v, np.float32(slope1), out=neg)  # fp32, exactly x * scale
            negq, _ = self._grid((key, "negq"), neg, b1 * abs(slope1),
                                 mutable=True)
            mask = self._ws.get((key, "m1"), y2.shape, np.bool_)
            np.less_equal(v, np.float32(0), out=mask)
            np.copyto(v, negq, where=mask)           # merge contiguously...
            np.copyto(mid_dest, cm1(v))              # ...one layout pass
        else:
            b1 = 0.0
            scale = np.where(y2 > 0, 1.0, slope1).astype(np.float32)
            np.copyto(mid_dest, cm1(y2 * scale))

        # conv2 → act2 kept unquantized fp32 (the module path does not
        # re-quantize before the residual sum).
        y2b, _sp, cm2 = self._gemm((key, 1), spec2, mid_canvas)
        if self.half:
            v2, b2 = self._grid((key, "v2"), y2b, spec2.out_bound(b1),
                                mutable=True)
            l2 = self._ws.get((key, "l2"), y2b.shape)
            np.multiply(v2, np.float32(slope2), out=l2)
            mask2 = self._ws.get((key, "m2"), y2b.shape, np.bool_)
            np.greater(v2, np.float32(0), out=mask2)
            np.copyto(l2, v2, where=mask2)
            l2_bound = b2
        else:
            scale2 = np.where(y2b > 0, 1.0, slope2).astype(np.float32)
            l2 = y2b * scale2
            l2_bound = 0.0

        if carry is None:
            # Block input was a stored conv output: grid values are exact.
            carry = self._ws.get(
                (key, "skip32"), (canvas.shape[0], n) + tuple(spatial)
            )
            np.copyto(carry, _interior(canvas, spec1.padding, spatial))
            carry_bound = bound
        carry += cm2(l2)
        carry_bound = carry_bound + l2_bound

        if not store:
            return canvas, None, carry_bound, carry, carry_bound
        out_canvas, dest, stored_bound = self._store_stream(
            (key, "store"), carry, carry_bound, out_spatial, out_padding
        )
        return out_canvas, dest, stored_bound, carry, carry_bound

    # ------------------------------------------------------------------
    def _store_stream(self, key, src, bound, spatial, padding):
        """Store the unquantized fp32 stream into a conv-input canvas."""

        c, n = src.shape[:2]
        canvas, dest = self._ws.canvas((key, "canvas"), c, n, spatial, padding,
                                       self._cdtype)
        if self.half:
            q32, bound = self._grid(key, src, bound)
            np.copyto(dest, q32)
        else:
            np.copyto(dest, src)
        return canvas, dest, bound


def _interior(canvas: np.ndarray, padding, spatial: tuple[int, int]) -> np.ndarray:
    (plh, _phh), (plw, _phw) = padding
    return canvas[:, :, plh:plh + spatial[0], plw:plw + spatial[1]]


def _canvas_padding(canvas: np.ndarray, spatial) -> tuple[tuple[int, int], ...]:
    """Recover the (symmetric) padding a canvas was allocated with."""

    ph = canvas.shape[2] - spatial[0]
    pw = canvas.shape[3] - spatial[1]
    return ((ph // 2, ph - ph // 2), (pw // 2, pw - pw // 2))


def _next_consumer(ops, i) -> str | None:
    """Kind of the next non-identity op, or None at the end of the plan."""

    for kind, _op in ops[i + 1:]:
        if kind != "identity":
            return kind
    return None


def _next_padding(ops, i) -> tuple[tuple[int, int], ...]:
    """Padding the next convolution consumer needs its input stored with."""

    for kind, op in ops[i + 1:]:
        if kind == "conv":
            return op.padding
        if kind == "res":
            return op[0].padding
        if kind in ("pool", "up", "sigmoid"):
            # These consume raw interior values — no conv padding needed.
            return ((0, 0), (0, 0))
        # "identity" is transparent: keep scanning for the real consumer.
    return ((0, 0), (0, 0))
