"""Module/parameter containers for ``repro.nn`` (PyTorch-like, NumPy-backed)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "Identity"]


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True, name: str | None = None) -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement :meth:`forward`.  Registration happens in
    ``__setattr__`` so ``state_dict`` / ``parameters`` work automatically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. running stats)."""

        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace the contents of an existing buffer."""

        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""

        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> list[Parameter]:
        """All parameters of this module tree."""

        return [p for _n, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` including this module itself."""

        yield (prefix.rstrip("."), self)
        for mname, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mname}.")

    def modules(self) -> Iterator["Module"]:
        """All modules of the tree (depth first)."""

        for _n, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        """Direct submodules only."""

        yield from self._modules.values()

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of (trainable) parameters — paper's model-size metric."""

        return sum(
            p.size for p in self.parameters() if p.requires_grad or not trainable_only
        )

    # ------------------------------------------------------------------
    # train / eval
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. batch norm)."""

        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (running stats, no dropout-style noise)."""

        return self.train(False)

    def zero_grad(self) -> None:
        """Drop gradients of every parameter in the tree."""

        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs (running stats etc.)."""

        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for mname, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mname}.")

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of all parameters and buffers keyed by dotted name."""

        out: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for name, b in self.named_buffers():
            out[name] = np.array(b, copy=True)
        return out

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Load a :meth:`state_dict`; ``strict`` verifies exact key sets."""

        params = dict(self.named_parameters())
        buffers = {name: None for name, _ in self.named_buffers()}
        missing = (set(params) | set(buffers)) - set(state)
        unexpected = set(state) - (set(params) | set(buffers))
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {params[name].data.shape} vs {value.shape}"
                    )
                params[name].data = np.asarray(value, dtype=params[name].data.dtype)
            elif name in buffers:
                self._assign_buffer(name, value)

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        mod: Module = self
        for p in parts[:-1]:
            mod = mod._modules[p]
        mod.set_buffer(parts[-1], value)

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    #: Set by :mod:`repro.perf.flops` during a trace; None in normal runs.
    _tracer = None

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        if Module._tracer is not None:
            Module._tracer.record(self, args, out)
        return out

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            sub = repr(module).splitlines()
            lines.append(f"  ({name}): " + sub[0])
            lines.extend("  " + s for s in sub[1:])
        lines.append(")")
        return "\n".join(lines) if self._modules else self.__class__.__name__ + "()"


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._seq: list[Module] = []
        for i, m in enumerate(modules):
            setattr(self, str(i), m)
            self._seq.append(m)

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._seq)), module)
        self._seq.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._seq)

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]

    def forward(self, x):
        for m in self._seq:
            x = m(x)
        return x


class ModuleList(Module):
    """Hold submodules in a list (no implicit forward)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._list: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._list)), module)
        self._list.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise RuntimeError("ModuleList has no forward; iterate it explicitly")


class Identity(Module):
    """Pass-through module (used e.g. as the BCAE-2D regression activation)."""

    def forward(self, x):
        return x
