"""Activation modules, including the paper's regression output transform.

Paper §2.2: to manage the gap between 0 and 6 in the zero-suppressed log-ADC
distribution, the regression decoder output passes through
``T(x) = 6 + 3·exp(x)`` so every regressed value lies above the
zero-suppression edge; zeros in the reconstruction come exclusively from the
segmentation mask.
"""

from __future__ import annotations

from .modules import Module
from .tensor import Tensor

__all__ = [
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "RegOutputTransform",
]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky rectifier; the BCAE reference implementation uses slope 0.01."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU({self.negative_slope})"


class Sigmoid(Module):
    """Logistic activation — the segmentation head's output (§2.2)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class RegOutputTransform(Module):
    """``T(x) = offset + scale * exp(x)`` (paper §2.2, offset 6, scale 3).

    The pre-activation is clamped above at ``max_exponent`` so the
    exponential cannot overflow in half precision (fp16 max is 65504;
    ``3·e^9 ≈ 2.4e4`` stays representable while spanning the full
    log-ADC range [6, 10] comfortably).
    """

    def __init__(self, offset: float = 6.0, scale: float = 3.0, max_exponent: float = 9.0) -> None:
        super().__init__()
        self.offset = float(offset)
        self.scale = float(scale)
        self.max_exponent = float(max_exponent)

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(None, self.max_exponent).exp() * self.scale + self.offset

    def __repr__(self) -> str:
        return f"RegOutputTransform({self.offset} + {self.scale}*exp(x))"
