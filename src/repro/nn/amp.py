"""Half-precision emulation (§3.4 of the paper).

The paper's post-training "trick" casts encoder weights and inputs to 16-bit
floats; on an RTX A6000 this engages Tensor Cores (fp16 multiply, fp32
accumulate) for a 76–79% throughput gain with no measurable accuracy loss
(paper Table 2).

NumPy on CPU has no fast fp16 path, so this module emulates the *numerics* of
Tensor-Core execution exactly: operands are rounded to the fp16 grid, the
contraction runs in fp32 (the Tensor-Core accumulator width), and the result
is rounded back to fp16.  The *performance* side of the story is reproduced
separately by the analytic GPU model in :mod:`repro.perf.roofline`.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

__all__ = ["autocast", "is_half", "quantize_fp16", "HALF", "FULL"]

HALF = "half"
FULL = "full"


class _AmpState(threading.local):
    def __init__(self) -> None:
        self.half = False


_state = _AmpState()


def is_half() -> bool:
    """Whether half-precision emulation is currently active."""

    return _state.half


@contextlib.contextmanager
def autocast(enabled: bool = True):
    """Context manager enabling fp16-emulated compute in conv/linear layers."""

    prev = _state.half
    _state.half = bool(enabled)
    try:
        yield
    finally:
        _state.half = prev


def quantize_fp16(a: np.ndarray) -> np.ndarray:
    """Round an array to the nearest representable float16 value (as fp32).

    Values outside the fp16 range saturate to +-65504 rather than producing
    inf, matching the saturating cast used for inference deployments.
    """

    clipped = np.clip(a, -65504.0, 65504.0)
    return clipped.astype(np.float16).astype(np.float32)


def mode_name(half: bool) -> str:
    """Human-readable computation-mode label used in tables."""

    return HALF if half else FULL
