"""N-dimensional convolution primitives for ``repro.nn``.

All convolutions in the BCAE family (2D and 3D, strided, asymmetrically
padded, transposed) are expressed with three NumPy primitives:

``conv_forward``
    cross-correlation of an ``(N, C, *S)`` input with an ``(O, C, *K)``
    kernel, arbitrary per-axis stride and *(lo, hi)* padding;
``conv_input_grad``
    the adjoint map (gradient w.r.t. the input) — also the forward pass of a
    transposed convolution;
``conv_weight_grad``
    gradient w.r.t. the kernel.

The implementation uses ``numpy.lib.stride_tricks.sliding_window_view`` (a
zero-copy view) followed by a single BLAS-backed ``tensordot`` — the standard
im2col/GEMM formulation, vectorized end to end per the HPC guidance for this
repository.  No Python loop touches voxel data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "normalize_tuple",
    "normalize_padding",
    "conv_output_shape",
    "conv_transpose_output_shape",
    "conv_forward",
    "conv_input_grad",
    "conv_weight_grad",
]


def normalize_tuple(value, nd: int, name: str = "value") -> tuple[int, ...]:
    """Broadcast an int or length-``nd`` sequence to a tuple of ints."""

    if isinstance(value, (int, np.integer)):
        return (int(value),) * nd
    value = tuple(int(v) for v in value)
    if len(value) != nd:
        raise ValueError(f"{name} must have length {nd}, got {len(value)}")
    return value


def normalize_padding(padding, nd: int) -> tuple[tuple[int, int], ...]:
    """Normalize padding to per-axis ``(lo, hi)`` pairs.

    Accepts an int, a length-``nd`` sequence of ints, or a length-``nd``
    sequence of ``(lo, hi)`` pairs (asymmetric padding — needed to reproduce
    the original BCAE's odd code shape ``(8, 17, 13, 16)``).
    """

    if isinstance(padding, (int, np.integer)):
        return ((int(padding),) * 2,) * nd
    padding = tuple(padding)
    if len(padding) != nd:
        raise ValueError(f"padding must have length {nd}, got {len(padding)}")
    out = []
    for p in padding:
        if isinstance(p, (int, np.integer)):
            out.append((int(p), int(p)))
        else:
            lo, hi = p
            out.append((int(lo), int(hi)))
    return tuple(out)


def conv_output_shape(
    spatial: Sequence[int],
    kernel: Sequence[int],
    stride: Sequence[int],
    padding: Sequence[tuple[int, int]],
) -> tuple[int, ...]:
    """Spatial output shape of a (cross-correlation) convolution."""

    out = []
    for s, k, st, (pl, ph) in zip(spatial, kernel, stride, padding):
        span = s + pl + ph - k
        if span < 0:
            raise ValueError(
                f"kernel {k} larger than padded input {s + pl + ph}"
            )
        out.append(span // st + 1)
    return tuple(out)


def conv_transpose_output_shape(
    spatial: Sequence[int],
    kernel: Sequence[int],
    stride: Sequence[int],
    padding: Sequence[tuple[int, int]],
    output_padding: Sequence[int],
) -> tuple[int, ...]:
    """Spatial output shape of a transposed convolution."""

    out = []
    for s, k, st, (pl, ph), op in zip(spatial, kernel, stride, padding, output_padding):
        if op >= st and not (op == 0 and st == 1):
            raise ValueError("output_padding must be smaller than stride")
        out.append((s - 1) * st - pl - ph + k + op)
    return tuple(out)


def _strided_windows(xp: np.ndarray, kernel: tuple[int, ...], stride: tuple[int, ...]) -> np.ndarray:
    """View of all kernel-sized windows of ``xp`` subsampled by ``stride``.

    ``xp`` has shape ``(N, C, *padded_spatial)``; the result is a zero-copy
    view of shape ``(N, C, *out_spatial, *kernel)``.
    """

    nd = len(kernel)
    v = sliding_window_view(xp, kernel, axis=tuple(range(2, 2 + nd)))
    sel = (slice(None), slice(None)) + tuple(slice(None, None, st) for st in stride)
    sel += (slice(None),) * nd
    return v[sel]


def conv_forward(
    x: np.ndarray,
    w: np.ndarray,
    stride,
    padding,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Strided cross-correlation.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, *spatial)``.
    w:
        Kernel of shape ``(O, C, *kernel)``.
    stride, padding:
        Per-axis stride / ``(lo, hi)`` padding (see :func:`normalize_padding`).
    bias:
        Optional per-output-channel bias of shape ``(O,)``.

    Returns
    -------
    ndarray of shape ``(N, O, *out_spatial)``.
    """

    nd = x.ndim - 2
    kernel = w.shape[2:]
    stride = normalize_tuple(stride, nd, "stride")
    padding = normalize_padding(padding, nd)
    if w.shape[1] != x.shape[1]:
        raise ValueError(f"channel mismatch: input {x.shape[1]}, kernel {w.shape[1]}")

    pad_width = ((0, 0), (0, 0)) + padding
    xp = np.pad(x, pad_width) if any(pl or ph for pl, ph in padding) else x
    win = _strided_windows(xp, kernel, stride)
    # win: (N, C, *out, *k) ; w: (O, C, *k) -> contract over C and kernel
    # axes.  This is tensordot's contraction written out with *pinned*
    # operand layouts (C-contiguous im2col rows against an F-contiguous
    # kernel matrix) and the GEMM executed **one sample at a time**.  BLAS
    # picks its kernel — and therefore its summation order, and therefore
    # the result bits — from operand shapes and layouts, so a whole-batch
    # GEMM would make a compressed payload depend on how wedges were
    # batched together.  Per-sample blocking keeps every sample's rows
    # bit-identical to a batch-of-one call: compression output is invariant
    # to batch composition (asserted by the serving benchmarks).
    out_spatial = conv_output_shape(x.shape[2:], kernel, stride, padding)
    n = x.shape[0]
    rows = int(np.prod(out_spatial))
    kdim = w.shape[1] * int(np.prod(kernel))
    tv = win.transpose((0,) + tuple(range(2, 2 + nd)) + (1,) + tuple(range(2 + nd, 2 + 2 * nd)))
    at = np.ascontiguousarray(tv).reshape(n * rows, kdim)
    bt = np.asfortranarray(
        w.transpose(tuple(range(1, 2 + nd)) + (0,)).reshape(kdim, w.shape[0])
    )
    y2 = np.empty((n * rows, w.shape[0]), dtype=np.result_type(at, bt))
    for i in range(n):
        np.dot(at[i * rows:(i + 1) * rows], bt, out=y2[i * rows:(i + 1) * rows])
    y = y2.reshape((n,) + out_spatial + (w.shape[0],))
    # y: (N, *out, O) -> (N, O, *out)
    y = np.moveaxis(y, -1, 1)
    if bias is not None:
        y += bias.reshape((1, -1) + (1,) * nd)
    return np.ascontiguousarray(y)


def _dilate(x: np.ndarray, stride: tuple[int, ...]) -> np.ndarray:
    """Insert ``stride - 1`` zeros between spatial elements of ``x``."""

    if all(st == 1 for st in stride):
        return x
    n, c = x.shape[:2]
    spatial = x.shape[2:]
    out_spatial = tuple((s - 1) * st + 1 for s, st in zip(spatial, stride))
    out = np.zeros((n, c) + out_spatial, dtype=x.dtype)
    sel = (slice(None), slice(None)) + tuple(slice(None, None, st) for st in stride)
    out[sel] = x
    return out


def _flip_spatial(w: np.ndarray) -> np.ndarray:
    """Reverse every spatial axis of a kernel."""

    nd = w.ndim - 2
    sel = (slice(None), slice(None)) + (slice(None, None, -1),) * nd
    return w[sel]


def conv_input_grad(
    gy: np.ndarray,
    w: np.ndarray,
    input_spatial: Sequence[int],
    stride,
    padding,
) -> np.ndarray:
    """Adjoint of :func:`conv_forward` w.r.t. its input.

    Also serves as the forward pass of a transposed convolution: feed the
    transposed-conv input as ``gy`` (with ``w`` laid out ``(O, C, *k)``) and
    the desired output spatial size as ``input_spatial``.

    Parameters
    ----------
    gy:
        Upstream gradient / transposed-conv input, shape ``(N, O, *out)``.
    w:
        Kernel of shape ``(O, C, *kernel)`` — same layout as the forward.
    input_spatial:
        Spatial shape of the original convolution input.
    stride, padding:
        The original convolution's stride and padding.
    """

    nd = gy.ndim - 2
    kernel = w.shape[2:]
    stride = normalize_tuple(stride, nd, "stride")
    padding = normalize_padding(padding, nd)
    input_spatial = tuple(int(s) for s in input_spatial)

    # Full correlation of the stride-dilated gradient with the flipped,
    # channel-swapped kernel, then crop away the original padding.
    g = _dilate(gy, stride)
    pad_width = ((0, 0), (0, 0)) + tuple((k - 1, k - 1) for k in kernel)
    gp = np.pad(g, pad_width)
    wt = np.ascontiguousarray(np.swapaxes(_flip_spatial(w), 0, 1))  # (C, O, *k)
    full = conv_forward(gp, wt, stride=(1,) * nd, padding=((0, 0),) * nd)
    # full spatial size: (out-1)*stride + 2k - 2 - k + 1 = (out-1)*stride + k - 1 ... per axis
    canvas_spatial = tuple(
        s + pl + ph for s, (pl, ph) in zip(input_spatial, padding)
    )
    n, c = full.shape[:2]
    dx = np.zeros((n, c) + canvas_spatial, dtype=full.dtype)
    place = tuple(slice(0, min(fs, cs)) for fs, cs in zip(full.shape[2:], canvas_spatial))
    dx[(slice(None), slice(None)) + place] = full[
        (slice(None), slice(None)) + place
    ]
    crop = tuple(slice(pl, pl + s) for s, (pl, _ph) in zip(input_spatial, padding))
    return np.ascontiguousarray(dx[(slice(None), slice(None)) + crop])


def conv_weight_grad(
    x: np.ndarray,
    gy: np.ndarray,
    kernel: Sequence[int],
    stride,
    padding,
) -> np.ndarray:
    """Adjoint of :func:`conv_forward` w.r.t. its kernel.

    Parameters
    ----------
    x:
        Forward input, shape ``(N, C, *spatial)``.
    gy:
        Upstream gradient, shape ``(N, O, *out)``.
    kernel:
        Kernel spatial shape.

    Returns
    -------
    ndarray of shape ``(O, C, *kernel)``.
    """

    nd = x.ndim - 2
    kernel = tuple(int(k) for k in kernel)
    stride = normalize_tuple(stride, nd, "stride")
    padding = normalize_padding(padding, nd)

    pad_width = ((0, 0), (0, 0)) + padding
    xp = np.pad(x, pad_width) if any(pl or ph for pl, ph in padding) else x
    win = _strided_windows(xp, kernel, stride)  # (N, C, *out, *k)
    # Contract batch and output-spatial axes of the windows against gy.
    win_axes = (0,) + tuple(range(2, 2 + nd))
    gy_axes = (0,) + tuple(range(2, 2 + nd))
    gw = np.tensordot(win, gy, axes=(win_axes, gy_axes))
    # gw: (C, *k, O) -> (O, C, *k)
    gw = np.moveaxis(gw, -1, 0)
    return np.ascontiguousarray(gw)
