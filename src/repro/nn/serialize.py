"""Checkpoint save/load for ``repro.nn`` modules (npz-backed)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .modules import Module

__all__ = ["save_state", "load_state", "save_checkpoint", "load_checkpoint"]

_META_KEY = "__meta_json__"


def save_state(module: Module, path: str | Path, meta: dict | None = None) -> Path:
    """Serialize a module's state dict (and optional JSON metadata) to npz."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def load_state(module: Module, path: str | Path, strict: bool = True) -> dict:
    """Load an npz checkpoint into ``module``; returns the stored metadata."""

    with np.load(Path(path)) as data:
        meta_raw = data[_META_KEY].tobytes().decode("utf-8") if _META_KEY in data else "{}"
        state = {k: data[k] for k in data.files if k != _META_KEY}
    module.load_state_dict(state, strict=strict)
    return json.loads(meta_raw)


def save_checkpoint(
    module: Module,
    optimizer,
    epoch: int,
    path: str | Path,
    extra: dict | None = None,
) -> Path:
    """Save model + minimal training state (epoch, lr) for resumption."""

    meta = {"epoch": int(epoch), "lr": float(getattr(optimizer, "lr", 0.0))}
    meta.update(extra or {})
    return save_state(module, path, meta=meta)


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load a checkpoint; returns metadata (epoch, lr, extras)."""

    return load_state(module, path)
