"""Finite-difference gradient verification for the autograd engine.

Used by the test suite (including hypothesis property tests) to validate
every backward implementation in :mod:`repro.nn` against central differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "max_relative_error"]


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a scalar Tensor.  Inputs are evaluated in float64 to
    keep truncation error below the comparison tolerance.
    """

    base = [Tensor(t.data.astype(np.float64)) for t in inputs]
    target = base[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(base).item()
        flat[i] = orig - eps
        lo = fn(base).item()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def max_relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-3) -> float:
    """Maximum elementwise error scaled by the *global* gradient magnitude.

    Elementwise relative error is meaningless where the true gradient is ~0
    (float32 central differences carry ~1e-4 absolute noise), so errors are
    normalized by the largest magnitude present in either array.
    """

    scale = max(float(np.abs(a).max(initial=0.0)), float(np.abs(b).max(initial=0.0)), floor)
    return float(np.max(np.abs(a - b))) / scale


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-3,
    tol: float = 5e-2,
) -> None:
    """Assert autograd gradients match finite differences for every input.

    Raises ``AssertionError`` with a per-input report on failure.
    """

    tracked = [Tensor(t.data.copy(), requires_grad=True) for t in inputs]
    out = fn(tracked)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar objective")
    out.backward()
    failures = []
    for i, t in enumerate(tracked):
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        err = max_relative_error(np.asarray(analytic, dtype=np.float64), numeric)
        if err > tol:
            failures.append(f"input {i}: max relative error {err:.3e} > {tol:.1e}")
    if failures:
        raise AssertionError("gradient check failed:\n" + "\n".join(failures))
