"""Neural network layers used by the BCAE family.

Convolutions support per-axis kernel/stride and asymmetric padding because
the original BCAE operates on the unpadded horizontal length 249 (code shape
``(8, 17, 13, 16)``), while BCAE++ pads to 256 and uses uniform k=4/s=2/p=1
(paper §2.3).
"""

from __future__ import annotations

import numpy as np

from . import amp, init
from .convolution import (
    conv_forward,
    conv_input_grad,
    conv_output_shape,
    conv_transpose_output_shape,
    conv_weight_grad,
    normalize_padding,
    normalize_tuple,
)
from .modules import Module, Parameter
from .tensor import Tensor

__all__ = [
    "ConvNd",
    "Conv2d",
    "Conv3d",
    "ConvTransposeNd",
    "ConvTranspose2d",
    "ConvTranspose3d",
    "Linear",
    "AvgPool2d",
    "AvgPool3d",
    "Upsample2d",
    "Upsample3d",
    "Flatten",
]


def _maybe_half(*arrays: np.ndarray) -> tuple[np.ndarray, ...]:
    """Quantize operands to the fp16 grid when autocast is active."""

    if amp.is_half():
        return tuple(amp.quantize_fp16(a) for a in arrays)
    return arrays


def _maybe_half_out(y: np.ndarray) -> np.ndarray:
    return amp.quantize_fp16(y) if amp.is_half() else y


class ConvNd(Module):
    """N-dimensional strided convolution (cross-correlation).

    Parameters
    ----------
    nd:
        Number of spatial dimensions (2 or 3 in this repository).
    in_channels, out_channels:
        Channel counts; kernels are laid out ``(O, C, *kernel)``.
    kernel_size, stride, padding:
        Int or per-axis values; padding may be ``(lo, hi)`` pairs.
    bias:
        Include a per-channel additive bias (paper models use biases).
    """

    def __init__(
        self,
        nd: int,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.nd = int(nd)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = normalize_tuple(kernel_size, nd, "kernel_size")
        self.stride = normalize_tuple(stride, nd, "stride")
        self.padding = normalize_padding(padding, nd)
        # PyTorch-default initialization (the paper uses PyTorch 2.0 defaults).
        w = init.kaiming_uniform_torch(
            (self.out_channels, self.in_channels) + self.kernel_size, rng=rng
        )
        self.weight = Parameter(w)
        if bias:
            fan_in = self.in_channels * int(np.prod(self.kernel_size))
            self.bias = Parameter(init.bias_uniform_torch(fan_in, self.out_channels, rng=rng))
        else:
            self.bias = None

    def output_shape(self, spatial: tuple[int, ...]) -> tuple[int, ...]:
        """Spatial output size for a given spatial input size."""

        return conv_output_shape(spatial, self.kernel_size, self.stride, self.padding)

    def forward(self, x: Tensor) -> Tensor:
        w, b = self.weight, self.bias
        xd, wd = _maybe_half(x.data, w.data)
        bd = b.data if b is not None else None
        y = conv_forward(xd, wd, self.stride, self.padding, bias=bd)
        y = _maybe_half_out(y)

        stride, padding, kernel = self.stride, self.padding, self.kernel_size
        in_spatial = x.shape[2:]

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(conv_input_grad(g, wd, in_spatial, stride, padding))
            if w.requires_grad:
                w._accumulate(conv_weight_grad(xd, g, kernel, stride, padding))
            if b is not None and b.requires_grad:
                axes = (0,) + tuple(range(2, 2 + self.nd))
                b._accumulate(g.sum(axis=axes))

        parents = (x, w) if b is None else (x, w, b)
        return Tensor._make(y, parents, backward)

    def __repr__(self) -> str:
        return (
            f"Conv{self.nd}d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class Conv2d(ConvNd):
    """2D strided convolution (see :class:`ConvNd`)."""

    def __init__(self, in_channels, out_channels, kernel_size, stride=1, padding=0, bias=True, rng=None):
        super().__init__(2, in_channels, out_channels, kernel_size, stride, padding, bias, rng)


class Conv3d(ConvNd):
    """3D strided convolution (see :class:`ConvNd`)."""

    def __init__(self, in_channels, out_channels, kernel_size, stride=1, padding=0, bias=True, rng=None):
        super().__init__(3, in_channels, out_channels, kernel_size, stride, padding, bias, rng)


class ConvTransposeNd(Module):
    """N-dimensional transposed convolution (the adjoint of :class:`ConvNd`).

    The weight is stored PyTorch-style as ``(in_channels, out_channels, *k)``.
    ``output_padding`` resolves the output-size ambiguity of strided
    convolutions — required to reconstruct the odd spatial sizes of the
    original (unpadded) BCAE decoder.
    """

    def __init__(
        self,
        nd: int,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        output_padding=0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.nd = int(nd)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = normalize_tuple(kernel_size, nd, "kernel_size")
        self.stride = normalize_tuple(stride, nd, "stride")
        self.padding = normalize_padding(padding, nd)
        self.output_padding = normalize_tuple(output_padding, nd, "output_padding")
        # PyTorch-default initialization (fan_in uses the (I, O, *k) layout).
        w = init.kaiming_uniform_torch(
            (self.in_channels, self.out_channels) + self.kernel_size, rng=rng
        )
        self.weight = Parameter(w)
        if bias:
            fan_in = self.out_channels * int(np.prod(self.kernel_size))
            self.bias = Parameter(init.bias_uniform_torch(fan_in, self.out_channels, rng=rng))
        else:
            self.bias = None

    def output_shape(self, spatial: tuple[int, ...]) -> tuple[int, ...]:
        """Spatial output size for a given spatial input size."""

        return conv_transpose_output_shape(
            spatial, self.kernel_size, self.stride, self.padding, self.output_padding
        )

    def forward(self, x: Tensor) -> Tensor:
        w, b = self.weight, self.bias
        out_spatial = self.output_shape(x.shape[2:])
        xd, wd = _maybe_half(x.data, w.data)
        # The stored (I, O, *k) weight *is* the kernel of the convolution A
        # whose adjoint this layer computes: A maps O-channel maps to
        # I-channel maps, so y = A^T x needs no axis swap.
        y = conv_input_grad(xd, wd, out_spatial, self.stride, self.padding)
        if b is not None:
            y += b.data.reshape((1, -1) + (1,) * self.nd)
        y = _maybe_half_out(y)

        stride, padding, kernel = self.stride, self.padding, self.kernel_size

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                # Adjoint of the adjoint: the ordinary strided convolution A.
                x._accumulate(conv_forward(g, wd, stride, padding))
            if w.requires_grad:
                # d/dW <g, A^T x> = d/dW <A g, x>: correlate g (as A's input)
                # against x (as A's output gradient); layout is already (I, O, *k).
                w._accumulate(conv_weight_grad(g, xd, kernel, stride, padding))
            if b is not None and b.requires_grad:
                axes = (0,) + tuple(range(2, 2 + self.nd))
                b._accumulate(g.sum(axis=axes))

        parents = (x, w) if b is None else (x, w, b)
        return Tensor._make(y, parents, backward)

    def __repr__(self) -> str:
        return (
            f"ConvTranspose{self.nd}d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}, op={self.output_padding})"
        )


class ConvTranspose2d(ConvTransposeNd):
    """2D transposed convolution (see :class:`ConvTransposeNd`)."""

    def __init__(self, in_channels, out_channels, kernel_size, stride=1, padding=0,
                 output_padding=0, bias=True, rng=None):
        super().__init__(2, in_channels, out_channels, kernel_size, stride, padding,
                         output_padding, bias, rng)


class ConvTranspose3d(ConvTransposeNd):
    """3D transposed convolution (see :class:`ConvTransposeNd`)."""

    def __init__(self, in_channels, out_channels, kernel_size, stride=1, padding=0,
                 output_padding=0, bias=True, rng=None):
        super().__init__(3, in_channels, out_channels, kernel_size, stride, padding,
                         output_padding, bias, rng)


class Linear(Module):
    """Dense layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(init.kaiming_uniform_torch((out_features, in_features), rng=rng))
        self.bias = (
            Parameter(init.bias_uniform_torch(in_features, out_features, rng=rng))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        w, b = self.weight, self.bias
        xd, wd = _maybe_half(x.data, w.data)
        y = xd @ wd.T
        if b is not None:
            y = y + b.data
        y = _maybe_half_out(y)

        def backward(g: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(g @ wd)
            if w.requires_grad:
                w._accumulate(g.reshape(-1, g.shape[-1]).T @ xd.reshape(-1, xd.shape[-1]))
            if b is not None and b.requires_grad:
                b._accumulate(g.reshape(-1, g.shape[-1]).sum(axis=0))

        parents = (x, w) if b is None else (x, w, b)
        return Tensor._make(y, parents, backward)


class _AvgPoolNd(Module):
    """Non-overlapping average pooling (kernel == stride), as in Algorithm 1."""

    def __init__(self, nd: int, kernel_size, stride=None) -> None:
        super().__init__()
        self.nd = nd
        self.kernel_size = normalize_tuple(kernel_size, nd, "kernel_size")
        stride = kernel_size if stride is None else stride
        self.stride = normalize_tuple(stride, nd, "stride")
        if self.stride != self.kernel_size:
            raise NotImplementedError("only kernel_size == stride pooling is supported")

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        spatial = x.shape[2:]
        for s, kk in zip(spatial, k):
            if s % kk:
                raise ValueError(f"spatial size {spatial} not divisible by pool {k}")
        n, c = x.shape[:2]
        # Reshape (N, C, s0/k0, k0, s1/k1, k1, ...) and mean over kernel axes.
        new_shape: list[int] = [n, c]
        for s, kk in zip(spatial, k):
            new_shape.extend([s // kk, kk])
        kernel_axes = tuple(range(3, 3 + 2 * self.nd, 2))
        y = x.data.reshape(new_shape).mean(axis=kernel_axes)
        scale = 1.0 / float(np.prod(k))

        def backward(g: np.ndarray) -> None:
            gg = g * scale
            for axis, kk in zip(range(2, 2 + self.nd), k):
                gg = np.repeat(gg, kk, axis=axis)
            x._accumulate(gg)

        return Tensor._make(np.ascontiguousarray(y), (x,), backward)

    def __repr__(self) -> str:
        return f"AvgPool{self.nd}d(k={self.kernel_size})"


class AvgPool2d(_AvgPoolNd):
    """2D non-overlapping average pooling (Algorithm 1's downsampler)."""

    def __init__(self, kernel_size, stride=None):
        super().__init__(2, kernel_size, stride)


class AvgPool3d(_AvgPoolNd):
    """3D non-overlapping average pooling."""

    def __init__(self, kernel_size, stride=None):
        super().__init__(3, kernel_size, stride)


class _UpsampleNd(Module):
    """Nearest-neighbour upsampling by an integer factor (Algorithm 2)."""

    def __init__(self, nd: int, scale_factor) -> None:
        super().__init__()
        self.nd = nd
        self.scale_factor = normalize_tuple(scale_factor, nd, "scale_factor")

    def forward(self, x: Tensor) -> Tensor:
        y = x.data
        for axis, f in zip(range(2, 2 + self.nd), self.scale_factor):
            y = np.repeat(y, f, axis=axis)
        in_shape = x.shape
        n, c = in_shape[:2]
        factors = self.scale_factor

        def backward(g: np.ndarray) -> None:
            # Sum each f-block back to its source element.
            shape: list[int] = [n, c]
            for s, f in zip(in_shape[2:], factors):
                shape.extend([s, f])
            block_axes = tuple(range(3, 3 + 2 * self.nd, 2))
            x._accumulate(g.reshape(shape).sum(axis=block_axes))

        return Tensor._make(np.ascontiguousarray(y), (x,), backward)

    def __repr__(self) -> str:
        return f"Upsample{self.nd}d(x{self.scale_factor})"


class Upsample2d(_UpsampleNd):
    """2D nearest-neighbour upsampling (Algorithm 2's upsampler)."""

    def __init__(self, scale_factor=2):
        super().__init__(2, scale_factor)


class Upsample3d(_UpsampleNd):
    """3D nearest-neighbour upsampling."""

    def __init__(self, scale_factor=2):
        super().__init__(3, scale_factor)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
