"""Post-training INT8 quantization (paper §4 future work).

The paper's conclusion lists *quantization* among the throughput
optimizations to pursue after fp16.  This module implements the standard
post-training recipe for the encoder:

* **symmetric per-channel weight quantization** — each output channel's
  kernel maps to int8 with its own scale (max-abs calibration);
* **per-tensor activation quantization** — every convolution's *input*
  scale is calibrated on representative wedges (max-abs over a calibration
  batch);
* **emulated W8A8 inference** — weights and per-conv inputs are rounded to
  their int8 grids and the convolution accumulates in fp32 (the
  int32-accumulate analogue), mirroring how :mod:`repro.nn.amp` emulates
  fp16;
* a hook for :mod:`repro.perf.roofline`: the RTX A6000's INT8 Tensor-Core
  peak (309.7 TOPS = 2× the fp16 peak) for throughput projections.

Like every substitution in this repository the *numerics* are exact (what
an int8 engine would compute) while the *speed* is modeled.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

from .layers import ConvNd
from .modules import Module
from .tensor import Tensor, no_grad

__all__ = [
    "QuantizedConvSpec",
    "QuantizationResult",
    "calibrate_int8",
    "int8_inference",
    "quantize_weights_int8",
    "int8_forward",
    "INT8_LEVELS",
]

INT8_LEVELS = 127  # symmetric int8: [-127, 127]


@dataclasses.dataclass
class QuantizedConvSpec:
    """Quantization parameters of one convolution layer."""

    name: str
    weight_scales: np.ndarray  # (out_channels,) — per-channel
    activation_scale: float  # per-tensor *input* scale

    def quantize_weight(self, w: np.ndarray) -> np.ndarray:
        """fp32 kernel → int8 grid (returned as fp32 for emulated compute)."""

        scales = self.weight_scales.reshape((-1,) + (1,) * (w.ndim - 1))
        q = np.clip(np.rint(w / scales), -INT8_LEVELS, INT8_LEVELS)
        return (q * scales).astype(np.float32)

    def quantize_activation(self, x: np.ndarray) -> np.ndarray:
        """Activations → int8 grid values (as fp32 for emulated compute)."""

        q = np.clip(np.rint(x / self.activation_scale), -INT8_LEVELS, INT8_LEVELS)
        return (q * self.activation_scale).astype(np.float32)


@dataclasses.dataclass
class QuantizationResult:
    """Everything produced by :func:`calibrate_int8`.

    ``specs`` pairs live module references with their quantization
    parameters (in-memory use; persist scales yourself if needed).
    """

    specs: list[tuple[ConvNd, QuantizedConvSpec]]

    @property
    def n_layers(self) -> int:
        """Number of quantized convolution layers."""

        return len(self.specs)

    def describe(self) -> str:
        """Human-readable per-layer scale report."""

        lines = [f"int8 quantization: {self.n_layers} conv layers"]
        for _m, spec in self.specs:
            lines.append(
                f"  {spec.name:40s} act_scale={spec.activation_scale:.4e} "
                f"w_scale(mean)={spec.weight_scales.mean():.4e}"
            )
        return "\n".join(lines)


class _CalibrationTracer:
    """Records per-conv input max-abs during calibration forwards."""

    def __init__(self) -> None:
        self.maxabs: dict[int, float] = {}

    def record(self, module, args, out) -> None:
        if isinstance(module, ConvNd) and args and isinstance(args[0], Tensor):
            prev = self.maxabs.get(id(module), 0.0)
            self.maxabs[id(module)] = max(prev, float(np.abs(args[0].data).max()))


def calibrate_int8(encoder: Module, calibration_batch: np.ndarray) -> QuantizationResult:
    """Calibrate int8 scales on representative wedges.

    Parameters
    ----------
    encoder:
        The model/encoder module whose convolutions will be quantized.
    calibration_batch:
        Network-ready inputs ``(B, C, …)`` spanning the data distribution
        (e.g. a few log-transformed, padded wedges).
    """

    names = {id(m): n for n, m in encoder.named_modules()}
    tracer = _CalibrationTracer()
    encoder.eval()
    Module._tracer = tracer
    try:
        with no_grad():
            encoder(Tensor(np.asarray(calibration_batch, dtype=np.float32)))
    finally:
        Module._tracer = None

    specs: list[tuple[ConvNd, QuantizedConvSpec]] = []
    for _name, module in encoder.named_modules():
        maxabs = tracer.maxabs.get(id(module))
        if maxabs is None or not isinstance(module, ConvNd):
            continue
        w = module.weight.data
        axes = tuple(range(1, w.ndim))
        w_scales = np.maximum(np.abs(w).max(axis=axes), 1e-12) / INT8_LEVELS
        specs.append(
            (
                module,
                QuantizedConvSpec(
                    name=names.get(id(module), "?"),
                    weight_scales=w_scales.astype(np.float64),
                    activation_scale=max(maxabs, 1e-12) / INT8_LEVELS,
                ),
            )
        )
    if not specs:
        raise ValueError("no convolution layers saw calibration data")
    return QuantizationResult(specs=specs)


def quantize_weights_int8(encoder: Module, result: QuantizationResult) -> None:
    """Overwrite conv kernels in place with their int8-grid values."""

    for module, spec in result.specs:
        module.weight.data = spec.quantize_weight(module.weight.data)


@contextlib.contextmanager
def int8_inference(result: QuantizationResult):
    """Emulate int8 execution: each conv's *input* snaps to its int8 grid.

    Implemented by shadowing the instance ``forward`` of every calibrated
    convolution with a wrapper that quantizes the incoming activation first.
    Combine with :func:`quantize_weights_int8` for full W8A8 emulation;
    accumulation stays fp32 (the int32 analogue).
    """

    originals: list[tuple[ConvNd, object]] = []

    def make_wrapper(module: ConvNd, spec: QuantizedConvSpec, original):
        def forward(x: Tensor) -> Tensor:
            return original(Tensor(spec.quantize_activation(x.data)))

        return forward

    try:
        for module, spec in result.specs:
            original = module.forward  # bound method (class attribute lookup)
            object.__setattr__(module, "forward", make_wrapper(module, spec, original))
            originals.append((module, original))
        yield
    finally:
        for module, _original in originals:
            try:
                object.__delattr__(module, "forward")
            except AttributeError:  # pragma: no cover - defensive
                pass


def int8_forward(encoder: Module, x: np.ndarray, result: QuantizationResult) -> np.ndarray:
    """Convenience: one emulated W8A8 forward pass, returning the output array."""

    encoder.eval()
    with no_grad(), int8_inference(result):
        out = encoder(Tensor(np.asarray(x, dtype=np.float32)))
    return out.data
