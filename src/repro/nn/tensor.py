"""Autograd tensor for the ``repro.nn`` mini deep-learning framework.

The paper implements its models in PyTorch 2.0; this reproduction runs in a
pure NumPy environment, so ``repro.nn`` provides the substrate: a reverse-mode
automatic-differentiation :class:`Tensor` plus the layer/optimizer stack built
on top of it.

Design notes (following the HPC-Python guidance used for this repo):

* every operation is vectorized NumPy; backward passes reuse views where
  possible and avoid Python-level element loops;
* gradients are accumulated into ``.grad`` ndarrays (not Tensors) to keep the
  tape shallow and allocation-light;
* a global no-grad switch lets inference run without building a graph, which
  is what the throughput benchmarks measure.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "as_tensor",
]

_DEFAULT_DTYPE = np.float32


class _GradMode(threading.local):
    """Thread-local autograd on/off switch."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""

    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""

    prev = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = prev


@contextlib.contextmanager
def enable_grad():
    """Context manager (re-)enabling graph construction."""

    prev = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing NumPy broadcasting."""

    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Floating point data is stored as ``float32``
        unless another float dtype is given explicitly.
    requires_grad:
        If True, gradients are accumulated in :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            arr = arr.astype(_DEFAULT_DTYPE)
        elif arr.dtype == np.float64:
            arr = arr.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""

        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""

        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""

        self.grad = None

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, wiring the tape only when grad is needed."""

        track = _grad_mode.enabled and any(p.requires_grad for p in parents)
        if not track:
            return Tensor(data)
        return Tensor(
            data,
            requires_grad=True,
            _parents=tuple(p for p in parents if p.requires_grad),
            _backward=backward,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        dtype = self.data.dtype if self.data.dtype.kind == "f" else _DEFAULT_DTYPE
        grad = np.asarray(grad, dtype=dtype)
        if self.grad is None:
            # Copy unconditionally: closures may hand the same upstream array
            # to several parents (e.g. passthrough adds), and later in-place
            # accumulation must never corrupt a sibling's gradient.
            self.grad = np.array(grad, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (must be scalar output then).
        """

        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            nid = id(node)
            if nid in visited:
                continue
            visited.add(nid)
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free interior gradients/topology once consumed so big
                # training graphs do not hold every activation alive.
                node._backward = None
                node._parents = ()
                if node is not self:
                    node.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data * other.data), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim >= 2:
                    ga = g @ np.swapaxes(other.data, -1, -2)
                else:
                    ga = np.outer(g, other.data) if self.data.ndim == 2 else g * other.data
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                if self.data.ndim >= 2:
                    gb = np.swapaxes(self.data, -1, -2) @ g
                else:
                    gb = np.outer(self.data, g) if other.data.ndim == 2 else g * self.data
                other._accumulate(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise e^x."""

        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""

        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""

        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient sign(x) at 0)."""

        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, lo: float | None = None, hi: float | None = None) -> "Tensor":
        """Clamp values; gradient is passed only where values were in range."""

        out_data = np.clip(self.data, lo, hi)
        mask = np.ones_like(self.data, dtype=bool)
        if lo is not None:
            mask &= self.data >= lo
        if hi is not None:
            mask &= self.data <= hi

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Numerically stable logistic function."""

        # Numerically stable logistic.
        x = self.data
        out_data = np.empty_like(x)
        pos = x >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out_data[~pos] = ex / (1.0 + ex)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""

        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""

        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Leaky rectifier with the given negative-side slope."""

        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype)
        out_data = self.data * scale

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * scale)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""

        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            gg = np.asarray(g)
            if axis is not None and not keepdims:
                gg = np.expand_dims(gg, axis)
            self._accumulate(np.broadcast_to(gg, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when None)."""

        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        denom = self.data.size / max(out_data.size, 1)

        def backward(g: np.ndarray) -> None:
            gg = np.asarray(g) / denom
            if axis is not None and not keepdims:
                gg = np.expand_dims(gg, axis)
            self._accumulate(np.broadcast_to(gg, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance over ``axis`` (composed from mean ops)."""

        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape (gradient reshaped back)."""

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed when no axes are given)."""

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=g.dtype)
            np.add.at(full, idx, g)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad(self, pad_width: Sequence[tuple[int, int]]) -> "Tensor":
        """Zero-pad; ``pad_width`` is per-axis ``(before, after)``."""

        pw = tuple((int(a), int(b)) for a, b in pad_width)
        out_data = np.pad(self.data, pw)
        slices = tuple(slice(a, a + s) for (a, _b), s in zip(pw, self.shape))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g[slices])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (produce plain ndarrays; non-differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""

    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""

    ts = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                idx = [slice(None)] * g.ndim
                idx[axis] = slice(int(lo), int(hi))
                t._accumulate(g[tuple(idx)])

    return Tensor._make(out_data, tuple(ts), backward)
