"""Optimizers.

The paper trains every BCAE variant with AdamW, ``(β1, β2) = (0.9, 0.999)``
and weight decay 0.01 (§2.5); that configuration is the default here.
"""

from __future__ import annotations

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "AdamW", "SGD"]


class Optimizer:
    """Base optimizer: hold parameters, expose ``step``/``zero_grad``/``lr``."""

    def __init__(self, params, lr: float) -> None:
        self.params: list[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Drop all parameter gradients before the next backward."""

        for p in self.params:
            p.grad = None

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (used by LR schedules)."""

        self.lr = float(lr)

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AdamW(Optimizer):
    """Decoupled-weight-decay Adam (Loshchilov & Hutter), paper §2.5 config."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One AdamW update on every parameter with a gradient."""

        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self.t
        bc2 = 1.0 - b2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            # Decoupled decay: applied directly to the weights, not the grad.
            if self.weight_decay:
                p.data *= 1.0 - self.lr * self.weight_decay
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.data -= self.lr * update


class SGD(Optimizer):
    """Plain/momentum SGD (used by tests and ablations)."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._buf = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        """One (momentum) SGD update."""

        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self._buf is not None:
                buf = self._buf[i]
                buf *= self.momentum
                buf += p.grad
                p.data -= self.lr * buf
            else:
                p.data -= self.lr * p.grad
