"""Learning-rate schedules (paper §2.5).

* BCAE++ / BCAE-HT: 1000 epochs, lr 1e-3 held constant for 100 epochs, then
  multiplied by 0.95 every 20 epochs.
* BCAE-2D: 500 epochs, lr 1e-3 held constant for 50 epochs, then multiplied
  by 0.95 every 10 epochs.
"""

from __future__ import annotations

__all__ = ["LRSchedule", "ConstantThenStepDecay", "paper_schedule_3d", "paper_schedule_2d"]


class LRSchedule:
    """Base schedule: maps epoch index -> learning rate."""

    def lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        """Learning rate at the given epoch."""

        raise NotImplementedError

    def apply(self, optimizer, epoch: int) -> float:
        """Set the optimizer lr for ``epoch`` and return it."""

        value = self.lr(epoch)
        optimizer.set_lr(value)
        return value


class ConstantThenStepDecay(LRSchedule):
    """Hold ``base_lr`` for ``warmup_epochs`` then decay by ``factor`` every
    ``step_epochs`` epochs."""

    def __init__(
        self,
        base_lr: float = 1e-3,
        warmup_epochs: int = 100,
        step_epochs: int = 20,
        factor: float = 0.95,
    ) -> None:
        self.base_lr = float(base_lr)
        self.warmup_epochs = int(warmup_epochs)
        self.step_epochs = int(step_epochs)
        self.factor = float(factor)

    def lr(self, epoch: int) -> float:
        """Constant during warmup, then stepped exponential decay."""

        if epoch < self.warmup_epochs:
            return self.base_lr
        steps = (epoch - self.warmup_epochs) // self.step_epochs + 1
        return self.base_lr * self.factor**steps

    def __repr__(self) -> str:
        return (
            f"ConstantThenStepDecay(lr={self.base_lr}, warmup={self.warmup_epochs}, "
            f"step={self.step_epochs}, factor={self.factor})"
        )


def paper_schedule_3d(base_lr: float = 1e-3) -> ConstantThenStepDecay:
    """The BCAE++/BCAE-HT schedule (constant 100, ×0.95 every 20)."""

    return ConstantThenStepDecay(base_lr, warmup_epochs=100, step_epochs=20)


def paper_schedule_2d(base_lr: float = 1e-3) -> ConstantThenStepDecay:
    """The BCAE-2D schedule (constant 50, ×0.95 every 10)."""

    return ConstantThenStepDecay(base_lr, warmup_epochs=50, step_epochs=10)
