"""Normalization layers.

BCAE++ *removes* all normalization layers (paper §2.3: "we remove all the
normalization layers in BCAE as they do not affect reconstruction performance
significantly in a sufficiently long training"), but the original-BCAE
baseline reproduced for Table 1 keeps them, so the substrate provides a
standard batch norm over channel dimensions for both 2D and 3D tensors.
"""

from __future__ import annotations

import numpy as np

from .modules import Module, Parameter
from .tensor import Tensor

__all__ = ["BatchNormNd", "BatchNorm2d", "BatchNorm3d"]


class BatchNormNd(Module):
    """Batch normalization over ``(N, C, *spatial)`` inputs.

    Normalizes per channel across batch and spatial axes, with learnable
    affine parameters and running statistics for evaluation mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        nd = x.ndim - 2
        axes = (0,) + tuple(range(2, 2 + nd))
        shape = (1, self.num_features) + (1,) * nd
        w, b = self.weight, self.bias

        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            m = self.momentum
            self.set_buffer("running_mean", (1 - m) * self.running_mean + m * mean)
            self.set_buffer("running_var", (1 - m) * self.running_var + m * var)
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
        y = x_hat * w.data.reshape(shape) + b.data.reshape(shape)

        n_elems = x.data.size // self.num_features
        training = self.training

        def backward(g: np.ndarray) -> None:
            gw = (g * x_hat).sum(axis=axes)
            gb = g.sum(axis=axes)
            if w.requires_grad:
                w._accumulate(gw)
            if b.requires_grad:
                b._accumulate(gb)
            if x.requires_grad:
                gamma_inv_std = (w.data * inv_std).reshape(shape)
                if training:
                    # Full batch-norm backward: account for the dependence of
                    # the batch statistics on the input.
                    gx = (
                        g
                        - gb.reshape(shape) / n_elems
                        - x_hat * gw.reshape(shape) / n_elems
                    ) * gamma_inv_std
                else:
                    gx = g * gamma_inv_std
                x._accumulate(gx)

        return Tensor._make(y.astype(np.float32, copy=False), (x, w, b), backward)

    def __repr__(self) -> str:
        return f"BatchNorm({self.num_features})"


class BatchNorm2d(BatchNormNd):
    """Batch norm over ``(N, C, H, W)`` inputs."""


class BatchNorm3d(BatchNormNd):
    """Batch norm over ``(N, C, D, H, W)`` inputs."""
