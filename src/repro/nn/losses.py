"""Loss functions of the bicephalous training objective (paper §2.2).

Two heads, two losses:

* the segmentation decoder is scored with the *focal loss* (Eq. 1) — a
  class-imbalance-aware cross entropy (only ~10.8% of voxels are nonzero);
  the paper uses base-2 logarithms and focusing parameter γ = 2;
* the regression decoder is scored with a *masked mean absolute error*
  (Eq. 2): the regression output is zeroed wherever the segmentation head
  predicts "zero voxel" (probability below threshold h) before the MAE is
  taken against the ground truth over *all* voxels.
"""

from __future__ import annotations

import math

import numpy as np

from .modules import Module
from .tensor import Tensor, as_tensor

__all__ = [
    "FocalLoss",
    "MaskedMAELoss",
    "focal_loss",
    "masked_mae_loss",
    "mae_loss",
    "mse_loss",
    "apply_segmentation_mask",
]

_LN2 = math.log(2.0)
_EPS = 1e-7


def focal_loss(probs: Tensor, labels, gamma: float = 2.0) -> Tensor:
    """Focal loss of Eq. (1).

    Parameters
    ----------
    probs:
        Predicted nonzero probabilities ``l̂`` (after sigmoid), any shape.
    labels:
        Binary ground truth ``l`` (1 where the voxel is nonzero).
    gamma:
        Focusing parameter γ (paper value: 2).

    Notes
    -----
    The paper's Eq. (1) uses base-2 logarithms:

    ``L = mean( -l·log2(l̂)·(1-l̂)^γ - (1-l)·log2(1-l̂)·l̂^γ )``.
    """

    labels = as_tensor(labels)
    p = probs.clip(_EPS, 1.0 - _EPS)
    one = 1.0
    pos = labels * p.log() * ((one - p) ** gamma)
    neg = (one - labels) * (one - p).log() * (p**gamma)
    return (pos + neg).mean() * (-1.0 / _LN2)


def apply_segmentation_mask(reg_output: Tensor, seg_probs: Tensor, threshold: float = 0.5) -> Tensor:
    """Masked prediction ``ṽ = v̂ · 1[l̂ > h]`` (paper §2.2).

    The indicator is treated as a constant w.r.t. gradients (it is piecewise
    constant), matching the reference implementation: gradients flow to the
    regression head only through voxels classified as nonzero.
    """

    mask = (seg_probs.data > threshold).astype(reg_output.data.dtype)
    return reg_output * Tensor(mask)


def masked_mae_loss(
    reg_output: Tensor,
    seg_probs: Tensor,
    target,
    threshold: float = 0.5,
) -> Tensor:
    """Regression loss of Eq. (2): MAE of the masked prediction over all voxels."""

    target = as_tensor(target)
    masked = apply_segmentation_mask(reg_output, seg_probs, threshold)
    return (masked - target).abs().mean()


def mae_loss(prediction: Tensor, target) -> Tensor:
    """Plain mean absolute error."""

    return (prediction - as_tensor(target)).abs().mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""

    diff = prediction - as_tensor(target)
    return (diff * diff).mean()


class FocalLoss(Module):
    """Module wrapper around :func:`focal_loss`."""

    def __init__(self, gamma: float = 2.0) -> None:
        super().__init__()
        self.gamma = float(gamma)

    def forward(self, probs: Tensor, labels) -> Tensor:
        return focal_loss(probs, labels, self.gamma)

    def __repr__(self) -> str:
        return f"FocalLoss(gamma={self.gamma})"


class MaskedMAELoss(Module):
    """Module wrapper around :func:`masked_mae_loss`."""

    def __init__(self, threshold: float = 0.5) -> None:
        super().__init__()
        self.threshold = float(threshold)

    def forward(self, reg_output: Tensor, seg_probs: Tensor, target) -> Tensor:
        return masked_mae_loss(reg_output, seg_probs, target, self.threshold)

    def __repr__(self) -> str:
        return f"MaskedMAELoss(h={self.threshold})"
