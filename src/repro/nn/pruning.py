"""Magnitude pruning (paper §4 future work).

The paper's conclusion lists *network pruning* among the throughput
optimizations worth pursuing.  This module implements the standard
magnitude-pruning recipe on ``repro.nn`` modules:

* :func:`prune_module` — zero the smallest-magnitude fraction of each
  weight tensor (per-layer, unstructured) and install persistent masks;
* :class:`PruningMask` — keeps pruned coordinates at zero through further
  fine-tuning (masks are re-applied after every optimizer step via
  :func:`apply_masks`);
* :func:`sparsity_report` — per-layer and global zero fractions;
* :func:`sparse_flops_factor` — the ideal-kernel FLOP reduction a sparse
  inference engine could realize, which :mod:`repro.perf.roofline` can fold
  into throughput estimates.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .modules import Module, Parameter

__all__ = [
    "PruningMask",
    "prune_module",
    "apply_masks",
    "sparsity_report",
    "sparse_flops_factor",
    "prunable_parameters",
]


@dataclasses.dataclass
class PruningMask:
    """A persistent zero-mask attached to one parameter."""

    name: str
    parameter: Parameter
    mask: np.ndarray  # bool, True = keep

    @property
    def sparsity(self) -> float:
        """Fraction of pruned (zeroed) weights."""

        return 1.0 - float(self.mask.mean())

    def apply(self) -> None:
        """Re-zero pruned coordinates (call after optimizer updates)."""

        self.parameter.data *= self.mask


def prunable_parameters(module: Module) -> list[tuple[str, Parameter]]:
    """Weight tensors eligible for pruning (convolution/linear kernels).

    Biases and normalization affine parameters are excluded — pruning them
    buys no FLOPs and harms calibration.
    """

    return [
        (name, p)
        for name, p in module.named_parameters()
        if name.endswith("weight") and p.data.ndim >= 2
    ]


def prune_module(
    module: Module,
    amount: float,
    per_layer: bool = True,
) -> list[PruningMask]:
    """Zero the ``amount`` fraction of smallest-magnitude weights.

    Parameters
    ----------
    module:
        Any ``repro.nn`` module (e.g. a BCAE encoder).
    amount:
        Target sparsity in [0, 1).
    per_layer:
        If True each layer is pruned to ``amount`` independently (the
        standard recipe — keeps every layer functional); otherwise one
        global magnitude threshold is used.

    Returns
    -------
    The installed :class:`PruningMask` objects (keep them alive to enforce
    sparsity during fine-tuning).
    """

    if not 0.0 <= amount < 1.0:
        raise ValueError("pruning amount must be in [0, 1)")
    params = prunable_parameters(module)
    if not params:
        raise ValueError("module has no prunable parameters")

    masks: list[PruningMask] = []
    if per_layer:
        for name, p in params:
            flat = np.abs(p.data).ravel()
            k = int(round(amount * flat.size))
            if k == 0:
                mask = np.ones_like(p.data, dtype=bool)
            else:
                threshold = np.partition(flat, k - 1)[k - 1]
                mask = np.abs(p.data) > threshold
            masks.append(PruningMask(name=name, parameter=p, mask=mask))
    else:
        flat = np.concatenate([np.abs(p.data).ravel() for _n, p in params])
        k = int(round(amount * flat.size))
        threshold = np.partition(flat, k - 1)[k - 1] if k else -np.inf
        for name, p in params:
            mask = np.abs(p.data) > threshold
            masks.append(PruningMask(name=name, parameter=p, mask=mask))

    apply_masks(masks)
    return masks


def apply_masks(masks: list[PruningMask]) -> None:
    """Re-apply every mask (after an optimizer step during fine-tuning)."""

    for m in masks:
        m.apply()


def sparsity_report(module: Module) -> dict[str, float]:
    """Zero fraction per prunable layer plus the ``"__global__"`` total."""

    report: dict[str, float] = {}
    total_zero = 0
    total = 0
    for name, p in prunable_parameters(module):
        zero = int((p.data == 0).sum())
        report[name] = zero / p.data.size
        total_zero += zero
        total += p.data.size
    report["__global__"] = total_zero / max(total, 1)
    return report


def sparse_flops_factor(module: Module) -> float:
    """FLOP fraction surviving pruning under an ideal sparse kernel.

    A perfectly sparse convolution engine skips multiplications by zero
    weights, so the remaining fraction equals the global weight density.
    """

    report = sparsity_report(module)
    return 1.0 - report["__global__"]
