"""Weight initialization utilities with explicit, reproducible seeding.

All model construction in this repository draws from a module-level
:class:`numpy.random.Generator` so experiments are bit-reproducible.  Use
:func:`seed` (or pass an explicit generator) before building a model.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "seed",
    "get_rng",
    "kaiming_normal",
    "kaiming_uniform_torch",
    "bias_uniform_torch",
    "xavier_uniform",
    "zeros",
    "calculate_gain",
]

_rng = np.random.default_rng(0)


def seed(value: int) -> None:
    """Re-seed the global initialization generator."""

    global _rng
    _rng = np.random.default_rng(value)


def get_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Return ``rng`` if given, else the module-level generator."""

    return _rng if rng is None else rng


def calculate_gain(nonlinearity: str, param: float | None = None) -> float:
    """Gain factors matching the PyTorch conventions the paper relies on."""

    if nonlinearity == "relu":
        return math.sqrt(2.0)
    if nonlinearity == "leaky_relu":
        slope = 0.01 if param is None else param
        return math.sqrt(2.0 / (1.0 + slope**2))
    if nonlinearity in ("linear", "sigmoid", "identity"):
        return 1.0
    if nonlinearity == "tanh":
        return 5.0 / 3.0
    raise ValueError(f"unknown nonlinearity {nonlinearity!r}")


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for a dense or conv kernel shape."""

    if len(shape) < 2:
        raise ValueError("fan computation needs >= 2 dimensions")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(
    shape: tuple[int, ...],
    nonlinearity: str = "leaky_relu",
    a: float = 0.01,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """He-normal initialization (fan-in mode)."""

    fan_in, _ = _fans(shape)
    gain = calculate_gain(nonlinearity, a)
    std = gain / math.sqrt(fan_in)
    return get_rng(rng).normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform_torch(
    shape: tuple[int, ...],
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """PyTorch's default conv/linear weight init: Kaiming-uniform, a=√5.

    The paper implements its models in PyTorch 2.0 without custom init, so
    this is the faithful choice.  The effective bound is ``1/sqrt(fan_in)``
    — noticeably smaller than gain-corrected He init, which keeps the deep
    identity-activation regression decoders (§2.4) in a trainable range.
    """

    fan_in, _ = _fans(shape)
    bound = 1.0 / math.sqrt(fan_in)
    return get_rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def bias_uniform_torch(
    fan_in: int,
    size: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """PyTorch's default bias init: uniform(±1/sqrt(fan_in))."""

    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return get_rng(rng).uniform(-bound, bound, size=size).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...],
    gain: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot-uniform initialization."""

    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return get_rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero-initialized float32 array (bias default)."""

    return np.zeros(shape, dtype=np.float32)
