"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The paper implements BCAE++/BCAE-HT/BCAE-2D in PyTorch 2.0; this package
re-creates the required subset (reverse-mode autograd, 2D/3D strided and
transposed convolutions, pooling/upsampling, batch norm, focal and masked-MAE
losses, AdamW, LR schedules, half-precision emulation) in vectorized NumPy so
the whole reproduction runs offline on CPU.
"""

from . import amp, init, pruning, quantization
from .activations import LeakyReLU, ReLU, RegOutputTransform, Sigmoid, Tanh
from .gradcheck import check_gradients, max_relative_error, numerical_gradient
from .layers import (
    AvgPool2d,
    AvgPool3d,
    Conv2d,
    Conv3d,
    ConvNd,
    ConvTranspose2d,
    ConvTranspose3d,
    ConvTransposeNd,
    Flatten,
    Linear,
    Upsample2d,
    Upsample3d,
)
from .losses import (
    FocalLoss,
    MaskedMAELoss,
    apply_segmentation_mask,
    focal_loss,
    mae_loss,
    masked_mae_loss,
    mse_loss,
)
from .modules import Identity, Module, ModuleList, Parameter, Sequential
from .norm import BatchNorm2d, BatchNorm3d, BatchNormNd
from .optim import SGD, AdamW, Optimizer
from .schedules import (
    ConstantThenStepDecay,
    LRSchedule,
    paper_schedule_2d,
    paper_schedule_3d,
)
from .serialize import load_checkpoint, load_state, save_checkpoint, save_state
from .tensor import Tensor, as_tensor, cat, enable_grad, is_grad_enabled, no_grad

__all__ = [
    "amp",
    "init",
    "pruning",
    "quantization",
    "Tensor",
    "as_tensor",
    "cat",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Identity",
    "Conv2d",
    "Conv3d",
    "ConvNd",
    "ConvTranspose2d",
    "ConvTranspose3d",
    "ConvTransposeNd",
    "Linear",
    "AvgPool2d",
    "AvgPool3d",
    "Upsample2d",
    "Upsample3d",
    "Flatten",
    "BatchNorm2d",
    "BatchNorm3d",
    "BatchNormNd",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "RegOutputTransform",
    "FocalLoss",
    "MaskedMAELoss",
    "focal_loss",
    "masked_mae_loss",
    "mae_loss",
    "mse_loss",
    "apply_segmentation_mask",
    "AdamW",
    "SGD",
    "Optimizer",
    "LRSchedule",
    "ConstantThenStepDecay",
    "paper_schedule_2d",
    "paper_schedule_3d",
    "save_state",
    "load_state",
    "save_checkpoint",
    "load_checkpoint",
    "check_gradients",
    "numerical_gradient",
    "max_relative_error",
]
