"""Dynamic segmentation/regression loss balancing (paper §2.5).

The combined objective is ``L = c_t · L_seg + L_reg``.  Because the focal
loss lives on a very different scale than the masked MAE, the paper adapts
the segmentation coefficient every epoch:

    c_{t+1} = 0.5 · c_t + 1.5 · (ρ_r^t / ρ_s^t),        c_0 = 2000,

where ``ρ_s^t`` and ``ρ_r^t`` are the epoch-``t`` segmentation and
regression losses.  (The paper's typesetting of the recurrence is ambiguous;
this reading has the natural fixed point ``c* = 3·ρ_r/ρ_s``, keeping the
segmentation term ~3× the regression term — classification quality gates
everything since misclassified voxels contribute full-magnitude errors.)
"""

from __future__ import annotations

__all__ = ["LossBalancer"]


class LossBalancer:
    """Tracks the adaptive coefficient ``c_t`` of the combined BCAE loss."""

    def __init__(self, c0: float = 2000.0, decay: float = 0.5, gain: float = 1.5) -> None:
        self.coefficient = float(c0)
        self.decay = float(decay)
        self.gain = float(gain)
        self.history: list[float] = [self.coefficient]

    def combined(self, seg_loss: float, reg_loss: float) -> float:
        """The scalar objective value ``c_t·L_seg + L_reg`` (for logging)."""

        return self.coefficient * seg_loss + reg_loss

    def update(self, seg_loss: float, reg_loss: float) -> float:
        """End-of-epoch update; returns the new coefficient ``c_{t+1}``.

        Parameters
        ----------
        seg_loss, reg_loss:
            Mean epoch losses ``ρ_s^t`` and ``ρ_r^t``.
        """

        if seg_loss <= 0:
            ratio = 0.0
        else:
            ratio = reg_loss / seg_loss
        self.coefficient = self.decay * self.coefficient + self.gain * ratio
        self.history.append(self.coefficient)
        return self.coefficient

    def fixed_point(self, seg_loss: float, reg_loss: float) -> float:
        """The stationary coefficient for constant losses: ``3·ρ_r/ρ_s``."""

        return self.gain / (1.0 - self.decay) * (reg_loss / seg_loss)
