"""Training loop for every BCAE variant (paper §2.5).

Paper configuration reproduced by the defaults:

* batch size 4, AdamW ``(β1, β2) = (0.9, 0.999)``, weight decay 0.01;
* BCAE++/HT: 1000 epochs, lr 1e-3 constant for 100 epochs then ×0.95
  every 20 (:func:`repro.nn.schedules.paper_schedule_3d`);
* BCAE-2D: 500 epochs, constant 50, ×0.95 every 10
  (:func:`repro.nn.schedules.paper_schedule_2d`);
* classification threshold h = 0.5 in training and testing;
* focal focusing parameter γ = 2;
* dynamic loss balancing with c₀ = 2000 (:class:`repro.train.balancer`).

The CPU reproduction runs the same loop at reduced scale; epoch counts and
dataset sizes are the only scaled-down quantities.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .. import nn
from ..metrics import ReconstructionMetrics, evaluate_reconstruction
from ..nn import Tensor
from ..tpc.dataset import DataLoader, WedgeDataset
from ..tpc.transforms import pad_horizontal, padded_length, unpad_horizontal
from .balancer import LossBalancer

__all__ = ["TrainConfig", "EpochStats", "Trainer", "evaluate_model", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (for logging).  No-op on parameters whose
    gradient is unset.
    """

    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters of a training run (defaults: paper §2.5).

    ``grad_clip`` (global-norm clipping) is an extension beyond the paper —
    disabled by default, useful at micro batch budgets where single Landau
    outliers can destabilize early epochs.
    """

    epochs: int = 10
    batch_size: int = 4
    base_lr: float = 1e-3
    warmup_epochs: int = 50
    decay_every: int = 10
    decay_factor: float = 0.95
    weight_decay: float = 0.01
    betas: tuple[float, float] = (0.9, 0.999)
    focal_gamma: float = 2.0
    threshold: float = 0.5
    balancer_c0: float = 2000.0
    grad_clip: float | None = None
    seed: int = 0

    @classmethod
    def paper_3d(cls, epochs: int = 1000) -> "TrainConfig":
        """BCAE++/BCAE-HT schedule (constant 100, ×0.95 every 20)."""

        return cls(epochs=epochs, warmup_epochs=100, decay_every=20)

    @classmethod
    def paper_2d(cls, epochs: int = 500) -> "TrainConfig":
        """BCAE-2D schedule (constant 50, ×0.95 every 10)."""

        return cls(epochs=epochs, warmup_epochs=50, decay_every=10)


@dataclasses.dataclass
class EpochStats:
    """Per-epoch record stored in :attr:`Trainer.history`."""

    epoch: int
    seg_loss: float
    reg_loss: float
    coefficient: float
    lr: float
    seconds: float


def _model_input(model, batch: np.ndarray) -> np.ndarray:
    """Pad a log-wedge batch to the horizontal size the model expects."""

    spatial = getattr(model.encoder, "spatial", None)
    if spatial is not None:  # 3D models carry their input spatial shape
        target = spatial[-1]
    else:  # 2D models need divisibility by 2^d
        target = padded_length(batch.shape[-1], 2**model.encoder.d)
    if batch.shape[-1] > target:
        return batch[..., :target]
    return pad_horizontal(batch, target)


class Trainer:
    """Drives the bicephalous training objective over a wedge dataset."""

    def __init__(self, model, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        cfg = self.config
        self.optimizer = nn.AdamW(
            model.parameters(),
            lr=cfg.base_lr,
            betas=cfg.betas,
            weight_decay=cfg.weight_decay,
        )
        self.schedule = nn.ConstantThenStepDecay(
            base_lr=cfg.base_lr,
            warmup_epochs=cfg.warmup_epochs,
            step_epochs=cfg.decay_every,
            factor=cfg.decay_factor,
        )
        self.balancer = LossBalancer(c0=cfg.balancer_c0)
        self.history: list[EpochStats] = []

    # ------------------------------------------------------------------
    def train_step(self, inputs: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One optimization step; returns (seg_loss, reg_loss) values."""

        cfg = self.config
        x = Tensor(_model_input(self.model, inputs))
        y = Tensor(_model_input(self.model, labels))

        out = self.model(x)
        seg_loss = nn.focal_loss(out.seg, y, gamma=cfg.focal_gamma)
        reg_loss = nn.masked_mae_loss(out.reg, out.seg, x, threshold=cfg.threshold)
        total = seg_loss * self.balancer.coefficient + reg_loss

        self.optimizer.zero_grad()
        total.backward()
        if cfg.grad_clip is not None:
            clip_grad_norm(self.model.parameters(), cfg.grad_clip)
        self.optimizer.step()
        return seg_loss.item(), reg_loss.item()

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: WedgeDataset,
        epochs: int | None = None,
        verbose: bool = False,
    ) -> list[EpochStats]:
        """Run the full training loop (paper §2.5 procedure)."""

        cfg = self.config
        epochs = cfg.epochs if epochs is None else int(epochs)
        loader = DataLoader(dataset, batch_size=cfg.batch_size, shuffle=True, seed=cfg.seed)

        self.model.train()
        for epoch in range(epochs):
            lr = self.schedule.apply(self.optimizer, epoch)
            seg_sum = reg_sum = 0.0
            n_batches = 0
            t0 = time.perf_counter()
            for inputs, labels in loader:
                s, r = self.train_step(inputs, labels)
                seg_sum += s
                reg_sum += r
                n_batches += 1
            seg_mean = seg_sum / max(n_batches, 1)
            reg_mean = reg_sum / max(n_batches, 1)
            coeff = self.balancer.update(seg_mean, reg_mean)
            stats = EpochStats(
                epoch=epoch,
                seg_loss=seg_mean,
                reg_loss=reg_mean,
                coefficient=coeff,
                lr=lr,
                seconds=time.perf_counter() - t0,
            )
            self.history.append(stats)
            if verbose:
                print(
                    f"epoch {epoch:4d}  seg={seg_mean:.5f}  reg={reg_mean:.5f}  "
                    f"c={coeff:9.2f}  lr={lr:.2e}  ({stats.seconds:.1f}s)"
                )
        self.model.eval()
        return self.history

    # ------------------------------------------------------------------
    def evaluate(self, dataset: WedgeDataset, half: bool = False, max_batches: int | None = None) -> ReconstructionMetrics:
        """Test-set metrics with padding clipped (paper §2.3/§3.3)."""

        return evaluate_model(
            self.model,
            dataset,
            batch_size=self.config.batch_size,
            threshold=self.config.threshold,
            half=half,
            max_batches=max_batches,
        )


def evaluate_model(
    model,
    dataset: WedgeDataset,
    batch_size: int = 4,
    threshold: float = 0.5,
    half: bool = False,
    max_batches: int | None = None,
) -> ReconstructionMetrics:
    """Evaluate a model over a dataset in full or half precision.

    Accumulates sufficient statistics (absolute/squared error sums and the
    classification confusion counts) across batches so the result is exact
    over the whole dataset, then assembles the Table-1 metric bundle.
    """

    model.eval()
    horizontal = dataset.horizontal
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)

    abs_sum = sq_sum = 0.0
    tp = pred_p = pos = 0.0
    n_vox = 0
    with nn.no_grad(), nn.amp.autocast(half):
        for i, (inputs, _labels) in enumerate(loader):
            if max_batches is not None and i >= max_batches:
                break
            x = Tensor(_model_input(model, inputs))
            out = model(x)
            seg = unpad_horizontal(out.seg.data, horizontal)
            reg = unpad_horizontal(out.reg.data, horizontal)
            truth = inputs[..., :horizontal]
            recon = reg * (seg > threshold)

            diff = recon.astype(np.float64) - truth.astype(np.float64)
            abs_sum += float(np.abs(diff).sum())
            sq_sum += float((diff * diff).sum())
            predicted = seg > threshold
            positive = truth > 6.0
            tp += float(np.count_nonzero(predicted & positive))
            pred_p += float(np.count_nonzero(predicted))
            pos += float(np.count_nonzero(positive))
            n_vox += truth.size

    from ..metrics.reconstruction import PEAK
    import math

    mse = sq_sum / max(n_vox, 1)
    return ReconstructionMetrics(
        mae=abs_sum / max(n_vox, 1),
        psnr=10.0 * math.log10(PEAK * PEAK / mse) if mse > 0 else math.inf,
        precision=tp / pred_p if pred_p else 0.0,
        recall=tp / pos if pos else 0.0,
        mse=mse,
    )
