"""``repro.train`` — the paper's training procedure (§2.5)."""

from .balancer import LossBalancer
from .trainer import EpochStats, TrainConfig, Trainer, clip_grad_norm, evaluate_model

__all__ = ["LossBalancer", "TrainConfig", "Trainer", "EpochStats", "evaluate_model", "clip_grad_norm"]
