"""``repro.perf`` — throughput accounting: analytic GPU model + CPU timing.

The paper's §3.2/§3.4 throughput study ran on an RTX A6000; offline we
replace the GPU with (a) exact per-layer FLOP/byte traces of our models and
(b) a calibrated roofline model of the A6000 that reproduces the *shape* of
Figure 6 — batch-size saturation, the 76–79% fp16 gain for BCAE-2D/BCAE++
and its absence for BCAE-HT (no Tensor-Core-eligible layers).  Measured CPU
throughput is reported alongside as ground truth for this implementation.
"""

from .devices import GPUSpec, RTX_A6000
from .flops import TC_MIN_CHANNELS, LayerStats, ModelTrace, trace_encoder, trace_model
from .roofline import (
    LayerTime,
    estimate_throughput,
    estimate_time,
    speedup_half,
    throughput_curve,
)
from .timing import (
    LatencySummary,
    ThroughputResult,
    measure_compress_throughput,
    measure_curve,
    measure_encoder_throughput,
    summarize_latencies,
    throughput_from_batches,
)

__all__ = [
    "GPUSpec",
    "RTX_A6000",
    "LayerStats",
    "ModelTrace",
    "trace_model",
    "trace_encoder",
    "TC_MIN_CHANNELS",
    "LayerTime",
    "estimate_time",
    "estimate_throughput",
    "throughput_curve",
    "speedup_half",
    "ThroughputResult",
    "LatencySummary",
    "summarize_latencies",
    "measure_encoder_throughput",
    "measure_compress_throughput",
    "measure_curve",
    "throughput_from_batches",
]
