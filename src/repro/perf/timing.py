"""Wall-clock throughput measurement on the host CPU.

Complements the GPU roofline model with *measured* numbers for this NumPy
implementation.  Matches the paper's protocol (§3.2): encoder only, inputs
pre-staged in memory (no file I/O in the timed region), throughput reported
as wedges/second.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["ThroughputResult", "measure_encoder_throughput", "measure_curve"]


@dataclasses.dataclass
class ThroughputResult:
    """One throughput measurement."""

    batch_size: int
    half: bool
    wedges_per_second: float
    seconds_per_batch: float
    repeats: int


def measure_encoder_throughput(
    model,
    input_shape: tuple[int, ...],
    batch_size: int = 1,
    half: bool = True,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 0,
) -> ThroughputResult:
    """Time ``model.encode`` on random wedges of ``input_shape``.

    ``input_shape`` excludes the batch axis (e.g. ``(16, 192, 256)``).
    """

    rng = np.random.default_rng(seed)
    x = Tensor(rng.random((batch_size,) + tuple(input_shape), dtype=np.float32))
    model.eval()
    with nn.no_grad(), nn.amp.autocast(half):
        for _ in range(warmup):
            model.encode(x)
        t0 = time.perf_counter()
        for _ in range(repeats):
            model.encode(x)
        elapsed = (time.perf_counter() - t0) / repeats
    return ThroughputResult(
        batch_size=batch_size,
        half=half,
        wedges_per_second=batch_size / elapsed,
        seconds_per_batch=elapsed,
        repeats=repeats,
    )


def measure_curve(
    model,
    input_shape: tuple[int, ...],
    batch_sizes: tuple[int, ...] = (1, 2, 4),
    half: bool = True,
    repeats: int = 2,
) -> dict[int, float]:
    """Batch-size → measured wedges/s (CPU analogue of Figure 6)."""

    return {
        b: measure_encoder_throughput(
            model, input_shape, batch_size=b, half=half, repeats=repeats
        ).wedges_per_second
        for b in batch_sizes
    }
