"""Wall-clock throughput measurement on the host CPU.

Complements the GPU roofline model with *measured* numbers for this NumPy
implementation.  Matches the paper's protocol (§3.2): encoder only, inputs
pre-staged in memory (no file I/O in the timed region), throughput reported
as wedges/second.

Timing policy: the headline number is **best-of-N**.  On a shared CPU the
mean over repeats is skewed upward by GC pauses, allocator behaviour and
scheduler noise — the *minimum* is the closest observable to the machine's
actual capability and is what keeps benchmark trajectories stable run over
run.  The mean is kept alongside for reference.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = [
    "ThroughputResult",
    "LatencySummary",
    "FaultCounters",
    "summarize_latencies",
    "measure_encoder_throughput",
    "measure_compress_throughput",
    "measure_curve",
    "throughput_from_batches",
]


@dataclasses.dataclass
class LatencySummary:
    """Percentile summary of a latency sample (seconds).

    The serving currency for tail behaviour: a wall-clock budget is a
    promise about p99, not about the mean — a DAQ link cares whether *any*
    wedge waited too long.
    """

    n: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def row(self) -> str:
        """One-line summary for logs and benches (milliseconds)."""

        return (
            f"n={self.n} mean={self.mean_s * 1e3:.2f} ms "
            f"p50/p95/p99={self.p50_s * 1e3:.2f}/{self.p95_s * 1e3:.2f}/"
            f"{self.p99_s * 1e3:.2f} ms max={self.max_s * 1e3:.2f} ms"
        )


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Summarize latency samples; an empty sample gives an all-zero row."""

    if len(samples) == 0:
        return LatencySummary(n=0, mean_s=0.0, p50_s=0.0, p95_s=0.0, p99_s=0.0, max_s=0.0)
    arr = np.asarray(samples, dtype=np.float64)
    p50, p95, p99 = (float(q) for q in np.quantile(arr, (0.5, 0.95, 0.99)))
    return LatencySummary(
        n=int(arr.size),
        mean_s=float(arr.mean()),
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        max_s=float(arr.max()),
    )


@dataclasses.dataclass
class FaultCounters:
    """Counts of serving faults and the recovery actions they triggered.

    The currency of the supervision layer in :mod:`repro.serve`: one
    instance rides on each :class:`~repro.serve.ServiceStats` (that
    stream's faults) and the service accumulates lifetime totals for
    :meth:`~repro.serve.ModelPoolService.health`.  All zeros means the
    stream ran fault-free.

    Attributes
    ----------
    crashes:
        Worker deaths observed (a broken pool, or an in-worker
        ``WorkerCrashError``).
    timeouts:
        Units that exceeded ``ServiceConfig.unit_timeout_s``.
    retries:
        Attempts re-submitted after a charged failure (bounded by
        ``ServiceConfig.max_retries`` per unit).
    rebuilds:
        Executor teardown-and-rebuild cycles.
    ring_rebuilds:
        Shared-memory slab rings quarantined and recreated (a dead writer
        may leave a slab mid-write, so the whole segment is replaced).
    degraded:
        Circuit-breaker backend step-downs (process → thread → inline).
    failures:
        Units whose error ultimately surfaced to the caller (retry budget
        exhausted or retry not legal).
    shm_fallbacks:
        Units that silently degraded from the shared-memory slab transport
        to per-unit pickling (payload larger than its slab, in either
        direction).  Not a fault — the unit still succeeds — but a
        throughput signal: a nonzero count under adaptive slab sizing
        means the sizing arithmetic under-provisioned the ring.
    """

    crashes: int = 0
    timeouts: int = 0
    retries: int = 0
    rebuilds: int = 0
    ring_rebuilds: int = 0
    degraded: int = 0
    failures: int = 0
    shm_fallbacks: int = 0

    def merge(self, other: "FaultCounters") -> None:
        """Accumulate ``other``'s counts into this instance (in place)."""

        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))

    def to_dict(self) -> dict:
        """Plain-dict form (the health endpoint's JSON currency)."""

        return dataclasses.asdict(self)

    @property
    def total(self) -> int:
        """Total fault events (crashes + timeouts + surfaced failures)."""

        return self.crashes + self.timeouts + self.failures

    def row(self) -> str:
        """One-line summary for logs and benches."""

        line = (
            f"crashes={self.crashes} timeouts={self.timeouts} "
            f"retries={self.retries} rebuilds={self.rebuilds} "
            f"ring_rebuilds={self.ring_rebuilds} degraded={self.degraded} "
            f"failures={self.failures}"
        )
        if self.shm_fallbacks:
            line += f" shm_fallbacks={self.shm_fallbacks}"
        return line


@dataclasses.dataclass
class ThroughputResult:
    """One throughput measurement.

    ``wedges_per_second`` / ``seconds_per_batch`` are best-of-N; the
    ``*_mean`` fields keep the noisier mean for reference.
    """

    batch_size: int
    half: bool
    wedges_per_second: float
    seconds_per_batch: float
    repeats: int
    seconds_per_batch_mean: float = 0.0

    @property
    def wedges_per_second_mean(self) -> float:
        """Mean-based throughput (kept for reference; noisier than best)."""

        if self.seconds_per_batch_mean <= 0.0:
            return self.wedges_per_second
        return self.batch_size / self.seconds_per_batch_mean


def measure_encoder_throughput(
    model,
    input_shape: tuple[int, ...],
    batch_size: int = 1,
    half: bool = True,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 0,
) -> ThroughputResult:
    """Time ``model.encode`` on random wedges of ``input_shape``.

    ``input_shape`` excludes the batch axis (e.g. ``(16, 192, 256)``).
    Each repeat is timed individually; the headline throughput uses the
    best repeat (see module docstring), the mean is reported alongside.
    """

    rng = np.random.default_rng(seed)
    x = Tensor(rng.random((batch_size,) + tuple(input_shape), dtype=np.float32))
    model.eval()
    times: list[float] = []
    with nn.no_grad(), nn.amp.autocast(half):
        for _ in range(warmup):
            model.encode(x)
        for _ in range(repeats):
            t0 = time.perf_counter()
            model.encode(x)
            times.append(time.perf_counter() - t0)
    best = min(times)
    return ThroughputResult(
        batch_size=batch_size,
        half=half,
        wedges_per_second=batch_size / best,
        seconds_per_batch=best,
        repeats=repeats,
        seconds_per_batch_mean=float(np.mean(times)),
    )


def measure_compress_throughput(
    model,
    wedge_shape: tuple[int, ...],
    batch_size: int = 1,
    half: bool = True,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 0,
) -> ThroughputResult:
    """Time ``BCAECompressor.compress_into`` on raw wedges of ``wedge_shape``.

    Unlike :func:`measure_encoder_throughput` (module graph only), this
    measures the *deployable* serving operation: log transform, padding and
    encode through the compiled fast path wherever the model has one —
    every zoo variant in eval mode, the original BCAE's BatchNorm stacks
    included — with the module-graph fallback otherwise, so cross-model
    comparisons are like-for-like engines.  ``wedge_shape`` excludes the
    batch axis (raw ADC, e.g. ``(16, 192, 249)``).
    """

    from ..core.compressor import BCAECompressor  # deferred: perf ← core cycle

    rng = np.random.default_rng(seed)
    wedges = rng.integers(
        0, 1024, size=(batch_size,) + tuple(wedge_shape)
    ).astype(np.uint16)
    wedges[wedges < 700] = 0  # zero-suppressed occupancy, §2.1
    # Inference mode: BatchNorm models (the original BCAE) must encode
    # from running statistics, or the timed op would mutate model state
    # and depend on batch composition.
    model.eval()
    compressor = BCAECompressor(model, half=half)
    times: list[float] = []
    for _ in range(warmup):
        compressor.compress_into(wedges)
    for _ in range(repeats):
        t0 = time.perf_counter()
        compressor.compress_into(wedges)
        times.append(time.perf_counter() - t0)
    best = min(times)
    return ThroughputResult(
        batch_size=batch_size,
        half=half,
        wedges_per_second=batch_size / best,
        seconds_per_batch=best,
        repeats=repeats,
        seconds_per_batch_mean=float(np.mean(times)),
    )


def measure_curve(
    model,
    input_shape: tuple[int, ...],
    batch_sizes: tuple[int, ...] = (1, 2, 4),
    half: bool = True,
    repeats: int = 2,
) -> dict[int, float]:
    """Batch-size → measured wedges/s (CPU analogue of Figure 6)."""

    return {
        b: measure_encoder_throughput(
            model, input_shape, batch_size=b, half=half, repeats=repeats
        ).wedges_per_second
        for b in batch_sizes
    }


def throughput_from_batches(
    batch_sizes: Sequence[int],
    batch_seconds: Sequence[float],
    elapsed_s: float,
    half: bool = True,
) -> ThroughputResult:
    """Service-level throughput from per-batch compress timings.

    Summarizes a served stream (e.g. one
    :class:`repro.serve.StreamingCompressionService` run) in the same
    :class:`ThroughputResult` currency as the encoder microbenchmarks:
    ``wedges_per_second`` is end-to-end (total wedges over wall elapsed,
    which includes batching and hand-off overhead), ``seconds_per_batch``
    is the best observed batch, and the mean is kept alongside.
    """

    if len(batch_sizes) != len(batch_seconds) or not batch_sizes:
        raise ValueError("need matching, non-empty batch_sizes/batch_seconds")
    if elapsed_s <= 0:
        raise ValueError(f"elapsed_s must be positive, got {elapsed_s}")
    total = int(np.sum(batch_sizes))
    return ThroughputResult(
        batch_size=int(max(batch_sizes)),
        half=half,
        wedges_per_second=total / elapsed_s,
        seconds_per_batch=float(np.min(batch_seconds)),
        repeats=len(batch_seconds),
        seconds_per_batch_mean=float(np.mean(batch_seconds)),
    )
