"""GPU device specifications and calibration constants.

The paper measures throughput on a single NVIDIA RTX A6000 (driver 535,
PyTorch 2.0 + CUDA 12.2).  Hardware peaks below come from the A6000
datasheet; the *efficiency* constants are the only free parameters of the
roofline model and were calibrated once against the operating points the
paper reports (Table 1 throughput column), then held fixed for every other
prediction (batch sweeps, Figure 6E model ladder) — see EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GPUSpec", "RTX_A6000"]


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Roofline parameters of a GPU.

    Attributes
    ----------
    fp32_tflops:
        Peak FP32 vector throughput [TFLOP/s].
    fp16_tc_tflops:
        Peak FP16 Tensor-Core throughput with FP32 accumulate [TFLOP/s].
    fp16_vector_tflops:
        FP16 throughput *without* Tensor Cores (what BCAE-HT's small-channel
        kernels fall back to) [TFLOP/s].
    mem_bw_gbs:
        Device memory bandwidth [GB/s].
    launch_overhead_us:
        Fixed per-kernel launch/scheduling cost [µs].
    conv_efficiency_fp32 / conv_efficiency_fp16:
        Achieved-vs-peak fraction for dense 2D-convolution GEMMs at full
        channel utilization (calibration constants).
    conv3d_factor:
        Extra efficiency penalty for 3D convolutions (cuDNN's 3D paths are
        markedly slower than 2D — the mechanism behind BCAE-2D's 3×
        speedup over BCAE++).
    util_exponent:
        Exponent applied to the raw channel-utilization ratio; shapes how
        hard small-channel kernels (BCAE-HT) are penalized.
    """

    name: str
    fp32_tflops: float
    fp16_tc_tflops: float
    fp16_vector_tflops: float
    mem_bw_gbs: float
    launch_overhead_us: float
    conv_efficiency_fp32: float
    conv_efficiency_fp16: float
    conv3d_factor: float
    util_exponent: float


#: NVIDIA RTX A6000 (Ampere GA102): 38.7 TFLOP/s FP32, 154.8 TFLOP/s FP16
#: Tensor Core, 768 GB/s GDDR6.  Efficiencies calibrated on Table 1
#: (BCAE-2D 6.9k, BCAE++ 2.6k, BCAE-HT 4.6k wedges/s in half precision);
#: the per-op overhead reflects PyTorch-2.0-eager launch costs.
RTX_A6000 = GPUSpec(
    name="RTX A6000",
    fp32_tflops=38.7,
    fp16_tc_tflops=154.8,
    fp16_vector_tflops=38.7,
    mem_bw_gbs=768.0,
    launch_overhead_us=8.0,
    conv_efficiency_fp32=0.56,
    conv_efficiency_fp16=0.28,
    conv3d_factor=1.0,  # the channel-utilization term already separates 2D/3D
    util_exponent=0.50,
)
