"""Analytic GPU throughput model (substitute for the paper's RTX A6000).

For every leaf layer the execution time is modeled as

    t = max(compute, memory) + launch

with

* ``compute = batch · flops / (peak(precision, tc_eligible) · eff · util)``,
* ``memory  = batch · bytes(precision) / bandwidth``,
* ``launch  = per-kernel overhead`` (independent of batch — the term that
  makes small batches slow and produces the saturating curves of Fig. 6A-C).

Peak selection encodes the Figure 6D diagnosis: fp16 reaches the Tensor-Core
peak only for layers whose channel counts qualify (``tc_eligible``); other
layers fall back to the fp32-rate vector pipeline, so BCAE-HT sees almost no
half-precision speedup while BCAE-2D and BCAE++ gain ~76–79%.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .devices import GPUSpec, RTX_A6000
from .flops import LayerStats, ModelTrace

__all__ = ["LayerTime", "estimate_time", "estimate_throughput", "throughput_curve", "speedup_half"]


@dataclasses.dataclass
class LayerTime:
    """Per-layer timing breakdown [seconds]."""

    name: str
    kind: str
    compute: float
    memory: float
    launch: float

    @property
    def total(self) -> float:
        """max(compute, memory) + launch — the modeled layer time."""

        return max(self.compute, self.memory) + self.launch


def _layer_time(layer: LayerStats, batch: int, half: bool, gpu: GPUSpec) -> LayerTime:
    is_gemm = layer.kind.startswith(("Conv", "ConvT", "Linear"))
    if is_gemm:
        if half and layer.tc_eligible:
            peak = gpu.fp16_tc_tflops * 1e12 * gpu.conv_efficiency_fp16
        elif half:
            peak = gpu.fp16_vector_tflops * 1e12 * gpu.conv_efficiency_fp32
        else:
            peak = gpu.fp32_tflops * 1e12 * gpu.conv_efficiency_fp32
        if "3d" in layer.kind:
            peak *= gpu.conv3d_factor
        peak *= max(layer.channel_utilization, 1e-4) ** gpu.util_exponent
    else:
        # Elementwise/pool layers are bandwidth-bound; give them the full
        # vector rate so the max() below lands on the memory term.
        peak = gpu.fp32_tflops * 1e12

    bytes_scale = 0.5 if half else 1.0
    compute = batch * layer.flops / peak
    memory = batch * layer.bytes_moved * bytes_scale / (gpu.mem_bw_gbs * 1e9)
    launch = layer.kernels * gpu.launch_overhead_us * 1e-6
    return LayerTime(
        name=layer.name, kind=layer.kind, compute=compute, memory=memory, launch=launch
    )


def estimate_time(
    trace: ModelTrace, batch: int, half: bool = True, gpu: GPUSpec = RTX_A6000
) -> tuple[float, list[LayerTime]]:
    """Model the wall time [s] of one batch; returns (total, per-layer)."""

    layers = [_layer_time(l, batch, half, gpu) for l in trace.layers]
    return sum(l.total for l in layers), layers


def estimate_throughput(
    trace: ModelTrace, batch: int, half: bool = True, gpu: GPUSpec = RTX_A6000
) -> float:
    """Modeled throughput [wedges/s] at a given batch size."""

    total, _ = estimate_time(trace, batch, half, gpu)
    return batch / total


def throughput_curve(
    trace: ModelTrace,
    batch_sizes: list[int] | np.ndarray = (1, 2, 4, 8, 16, 32, 48, 64, 80, 96),
    half: bool = True,
    gpu: GPUSpec = RTX_A6000,
) -> dict[int, float]:
    """Figure-6 style curve: batch size → modeled wedges/s."""

    return {int(b): estimate_throughput(trace, int(b), half, gpu) for b in batch_sizes}


def speedup_half(trace: ModelTrace, batch: int = 64, gpu: GPUSpec = RTX_A6000) -> float:
    """Half-over-full precision speedup at a batch size (paper: 76–79%
    for BCAE-2D/BCAE++, near zero for BCAE-HT)."""

    return estimate_throughput(trace, batch, True, gpu) / estimate_throughput(
        trace, batch, False, gpu
    )
